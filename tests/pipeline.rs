//! End-to-end pipeline tests: language → analyses → codegen → runtime,
//! exercised through the public facade.

use petal::prelude::*;
use petal_apps::all_benchmarks;
use petal_core::codegen;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use std::sync::Arc;

#[test]
fn all_benchmarks_verify_under_default_configs() {
    for bench in all_benchmarks() {
        let small = bench.resized(bench.input_size().min(2048)).unwrap_or(bench);
        for machine in MachineProfile::all() {
            let r = small.run_default(&machine);
            assert!(r.is_ok(), "{} on {}: {:?}", small.name(), machine.codename, r.err());
        }
    }
}

#[test]
fn generated_opencl_sources_are_stable_golden() {
    // The compile cache keys on source text, so codegen must be
    // deterministic. Pin structural landmarks of both variants.
    let rule = petal_apps::convolution::SeparableConvolution::rule_rows(7);
    let plain = codegen::generate_source(&rule, false);
    let local = codegen::generate_source(&rule, true);
    assert_eq!(plain, codegen::generate_source(&rule, false), "codegen is deterministic");
    for needle in [
        "__kernel void convolve_rows(",
        "__global const double* in0",
        "int x = get_global_id(0);",
        "out[y * out_w + x] = result;",
    ] {
        assert!(plain.contains(needle), "missing {needle:?} in:\n{plain}");
    }
    for needle in [
        "__kernel void convolve_rows_localmem(",
        "__local double tile0[",
        "barrier(CLK_LOCAL_MEM_FENCE);",
        "cooperative load phase",
    ] {
        assert!(local.contains(needle), "missing {needle:?} in:\n{local}");
    }
}

#[test]
fn wavefront_rules_are_rejected_like_the_paper_says() {
    let rule = StencilRule {
        name: "wavefront".into(),
        inputs: vec![StencilInput { index: 0, access: AccessPattern::Wavefront }],
        flops_per_output: 1.0,
        body_c: String::new(),
        elem: Arc::new(|_, _, _| 0.0),
        native_only_body: false,
    };
    assert!(rule.opencl_verdict().is_err());
    assert!(!rule.has_local_memory_variant());
}

#[test]
fn executor_reports_are_deterministic() {
    let bench = petal_apps::sort::Sort::new(20_000);
    let machine = MachineProfile::server();
    let cfg = bench.program(&machine).default_config(&machine);
    let a = bench.run_with_config(&machine, &cfg).unwrap();
    let b = bench.run_with_config(&machine, &cfg).unwrap();
    assert_eq!(a.rt.makespan, b.rt.makespan);
    assert_eq!(a.rt.steals, b.rt.steals);
    assert_eq!(a.rt.cpu_tasks, b.rt.cpu_tasks);
}

#[test]
fn machines_disagree_on_the_best_configuration() {
    // The thesis of the paper in one assertion: the same pinned
    // configuration ranks differently across machines.
    let bench = petal_apps::convolution::SeparableConvolution::new(192, 7);
    let ranked: Vec<Vec<&str>> = MachineProfile::all()
        .iter()
        .map(|m| {
            let mut times: Vec<(&str, f64)> = petal_apps::convolution::ConvMapping::all()
                .into_iter()
                .map(|mp| {
                    let cfg = bench.mapping_config(m, mp);
                    let t =
                        bench.run_with_config(m, &cfg).expect("mapping runs").virtual_time_secs();
                    (mp.label(), t)
                })
                .collect();
            times.sort_by(|a, b| a.1.total_cmp(&b.1));
            times.into_iter().map(|(l, _)| l).collect()
        })
        .collect();
    assert!(
        ranked.windows(2).any(|w| w[0] != w[1]),
        "at least two machines must rank the mappings differently: {ranked:?}"
    );
}

//! End-to-end served-registry loop: one `petal-farmd` process hosts both
//! the tuned-config registry and the evaluation pool. A client whose GET
//! misses warm-starts a tune *on that same pool*, publishes the repaired
//! config back through the same service, and the next client exact-hits
//! — the fleet-shared deployment story of `docs/registry.md` in one
//! test. The registry read happens client-side before any job is
//! dispatched, so the warm trajectory is bit-identical to the same tune
//! against a `dir:` store at any thread count.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::Benchmark;
use petal_farm::net::Endpoint;
use petal_farm::FarmSettings;
use petal_farmd::{Farmd, FarmdOptions};
use petal_gpu::profile::MachineProfile;
use petal_registry::{ConfigStore, DirStore, MatchTier, PutOutcome, RemoteStore, StoredEntry};
use petal_shard::remote::{serve_remote, RemoteOptions};
use petal_tuner::{Autotuner, Tuned, TunerSettings, WarmStart};
use std::time::Duration;

/// Everything the search decided must agree; only the farm-shaped
/// accounting (worker counts) legitimately differs between modes.
fn assert_trajectory_eq(got: &Tuned, want: &Tuned, label: &str) {
    assert_eq!(got.config, want.config, "{label}: config diverged");
    assert_eq!(got.time_secs, want.time_secs, "{label}: best time diverged");
    assert_eq!(got.stats.trials, want.stats.trials, "{label}");
    assert_eq!(got.stats.rejected, want.stats.rejected, "{label}");
    assert_eq!(got.stats.tuning_secs, want.stats.tuning_secs, "{label}");
    assert_eq!(got.stats.compile_secs, want.stats.compile_secs, "{label}");
    assert_eq!(got.stats.kicks, want.stats.kicks, "{label}");
    assert_eq!(got.stats.round_best, want.stats.round_best, "{label}");
    assert_eq!(got.stats.warm_source, want.stats.warm_source, "{label}");
}

fn warm_settings(farm: FarmSettings, warm_start: Option<WarmStart>) -> TunerSettings {
    TunerSettings { seed: 0x5eed, farm, warm_start, ..TunerSettings::smoke() }
}

#[test]
fn a_cold_miss_warm_tunes_on_the_pool_and_publishes_back() {
    let desktop = MachineProfile::desktop();
    let laptop = MachineProfile::laptop();
    let bench = BlackScholes::new(4_096);

    // One dispatcher hosting both halves: the registry and the job pool.
    let reg_dir =
        std::env::temp_dir().join(format!("petal-served-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reg_dir);
    let farmd = Farmd::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
        FarmdOptions { registry: Some(reg_dir.clone()), ..FarmdOptions::default() },
    )
    .expect("bind dispatcher");
    let ep = farmd.endpoints()[0].clone();

    // Two in-process workers join the pool before any client shows up.
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let opts = RemoteOptions {
                name: format!("e2e-worker-{i}"),
                ..RemoteOptions::new(ep.to_string())
            };
            std::thread::spawn(move || {
                let _ = serve_remote(&opts);
            })
        })
        .collect();
    assert!(farmd.wait_workers(2, Duration::from_secs(10)), "workers registered");

    // The fleet's past: a Desktop tune, published through the service.
    let donor_tune =
        Autotuner::new(&bench, &desktop, warm_settings(FarmSettings::sequential(), None)).run();
    let publisher = RemoteStore::connect(&ep).expect("publisher connects");
    let outcome = publisher
        .put(
            &StoredEntry {
                machine: desktop.clone(),
                bench_spec: bench.spec(),
                size: bench.input_size(),
                config: donor_tune.config.clone(),
                time_secs: donor_tune.time_secs,
                source: "e2e-desktop".to_owned(),
            },
            false,
        )
        .expect("donor publishes");
    assert_eq!(outcome, PutOutcome::Inserted);
    drop(publisher);

    // A Laptop client: the exact GET misses cold, the nearest-key GET
    // finds the same-family Desktop donor over the socket.
    let client = RemoteStore::connect(&ep).expect("client connects");
    assert!(
        client
            .lookup(&laptop, &bench.spec(), bench.input_size(), true)
            .expect("exact lookup runs")
            .is_none(),
        "the laptop's first visit is a cold exact miss"
    );
    let hit = client
        .lookup(&laptop, &bench.spec(), bench.input_size(), false)
        .expect("nearest-key lookup runs")
        .expect("family donor found");
    assert_eq!(hit.tier, MatchTier::Family);
    assert_eq!(hit.entry.machine.codename, "Desktop");
    assert_eq!(hit.entry.config, donor_tune.config, "the donor travels unmodified");

    // The dir-backed store over the *served* directory answers the same
    // query identically — local and remote are one store semantically.
    let dir_store = DirStore::open(&reg_dir).expect("dir store opens");
    let local_hit =
        ConfigStore::lookup(&dir_store, &laptop, &bench.spec(), bench.input_size(), false)
            .expect("local lookup runs")
            .expect("same donor found");
    assert_eq!(local_hit.tier, hit.tier);
    assert_eq!(local_hit.entry.config, hit.entry.config);
    assert_eq!(local_hit.distance, hit.distance);

    // The miss schedules a warm-started tune on the very pool that
    // serves the registry.
    let warm_start = Some(WarmStart {
        config: hit.entry.config.clone(),
        source: format!("registry:{}:{}", hit.tier, hit.entry.machine.codename),
    });
    let pool_tuned = Autotuner::new(
        &bench,
        &laptop,
        warm_settings(FarmSettings::remote(ep.to_string()), warm_start.clone()),
    )
    .run();

    // Determinism contract: the same warm tune against the `dir:` store
    // is bit-identical at 1 and 8 local threads.
    for threads in [1usize, 8] {
        let local = Autotuner::new(
            &bench,
            &laptop,
            warm_settings(
                FarmSettings { threads, ..FarmSettings::sequential() },
                warm_start.clone(),
            ),
        )
        .run();
        assert_trajectory_eq(&local, &pool_tuned, &format!("dir-store control, {threads} threads"));
    }

    // Publish the repaired config back in the same client session.
    let outcome = client
        .put(
            &StoredEntry {
                machine: laptop.clone(),
                bench_spec: bench.spec(),
                size: bench.input_size(),
                config: pool_tuned.config.clone(),
                time_secs: pool_tuned.time_secs,
                source: "e2e-repair".to_owned(),
            },
            false,
        )
        .expect("repair publishes");
    assert_eq!(outcome, PutOutcome::Inserted);
    drop(client);

    // A second client's exact GET now hits: the loop is closed.
    let second = RemoteStore::connect(&ep).expect("second client connects");
    let hit = second
        .lookup(&laptop, &bench.spec(), bench.input_size(), true)
        .expect("exact lookup runs")
        .expect("exact hit after publish-back");
    assert_eq!(hit.tier, MatchTier::Exact);
    assert_eq!(hit.entry.config, pool_tuned.config);
    assert_eq!(hit.entry.source, "e2e-repair");
    drop(second);

    drop(farmd);
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&reg_dir);
}

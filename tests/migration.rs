//! Cross-crate integration tests for the paper's headline results (§6.3):
//! configurations tuned for one machine lose when migrated to another, and
//! each machine's winner differs in the way the paper describes.

use petal::prelude::*;
use petal_apps::blackscholes::BlackScholes;
use petal_apps::strassen::Strassen;
use petal_tuner::{Autotuner, TunerSettings};

fn settings(seed: u64) -> TunerSettings {
    TunerSettings {
        seed,
        trials_per_round: 24,
        population: 4,
        size_schedule: vec![0.125, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: false,
        // Farm/kick knobs at their defaults (sequential, kicks enabled).
        ..TunerSettings::smoke()
    }
}

#[test]
fn strassen_laptop_style_config_hurts_desktop() {
    // Fig. 7(e): the Laptop's tuned configuration is a direct LAPACK call
    // (Fig. 6); migrated to the Desktop it loses badly to the natively
    // tuned configuration (the paper reports 16.5x; the shape — a large
    // penalty — is what we reproduce).
    let bench = Strassen::new(256);
    let desktop = MachineProfile::desktop();
    let laptop_style = {
        let mut cfg = bench.program(&desktop).default_config(&desktop);
        cfg.set_selector("matmul", Selector::constant(0, 7)); // direct LAPACK
        cfg
    };
    let desktop_tuned = Autotuner::new(&bench, &desktop, settings(1)).run();
    let native = bench
        .run_with_config(&desktop, &desktop_tuned.config)
        .expect("native runs")
        .virtual_time_secs();
    let migrated =
        bench.run_with_config(&desktop, &laptop_style).expect("migrated runs").virtual_time_secs();
    let penalty = migrated / native;
    assert!(penalty > 1.5, "laptop-style config on desktop should be slow: {penalty:.2}x");

    // And the reverse direction: a pinned all-GPU config must not beat the
    // laptop's own tuned configuration on the laptop.
    let laptop = MachineProfile::laptop();
    let mut gpu_cfg = bench.program(&laptop).default_config(&laptop);
    gpu_cfg.set_selector("matmul", Selector::constant(6, 7));
    let laptop_tuned = Autotuner::new(&bench, &laptop, settings(2)).run();
    let native = bench
        .run_with_config(&laptop, &laptop_tuned.config)
        .expect("native runs")
        .virtual_time_secs();
    let gpu = bench.run_with_config(&laptop, &gpu_cfg).expect("gpu runs").virtual_time_secs();
    assert!(gpu >= native * 0.99, "all-GPU must not beat laptop tuning: {gpu} vs {native}");
}

#[test]
fn blackscholes_tuned_configs_match_paper_placements() {
    // Fig. 6: Desktop runs Black-Scholes entirely on the GPU; the Laptop
    // divides the work, putting only part of it on the device.
    let bench = BlackScholes::new(200_000);
    let desktop = MachineProfile::desktop();
    let tuned = Autotuner::new(&bench, &desktop, settings(3)).run();
    let alg = tuned.config.select("blackscholes", bench.input_size());
    let ratio = tuned.config.tunable_or("blackscholes.gpu_ratio", 8);
    assert_eq!(alg, 1, "desktop must choose the OpenCL backend");
    assert!(ratio >= 7, "desktop should run (almost) everything on the GPU, got {ratio}/8");

    let laptop = MachineProfile::laptop();
    let tuned = Autotuner::new(&bench, &laptop, settings(4)).run();
    let alg = tuned.config.select("blackscholes", bench.input_size());
    let ratio = tuned.config.tunable_or("blackscholes.gpu_ratio", 8);
    assert_eq!(alg, 1, "laptop also uses the device...");
    assert!(
        (1..8).contains(&ratio),
        "...but splits the work fractionally (Fig. 6: 25%/75%), got {ratio}/8"
    );
}

#[test]
fn config_files_roundtrip_through_text() {
    // The choice configuration file (§3): tuned configs survive
    // serialization, and the reparsed config reproduces the same run.
    let bench = BlackScholes::new(50_000);
    let machine = MachineProfile::desktop();
    let tuned = Autotuner::new(&bench, &machine, settings(5)).run();
    let text = tuned.config.to_string();
    let parsed: Config = text.parse().expect("config file parses");
    assert_eq!(parsed, tuned.config);
    let a = bench.run_with_config(&machine, &tuned.config).unwrap().virtual_time_secs();
    let b = bench.run_with_config(&machine, &parsed).unwrap().virtual_time_secs();
    assert_eq!(a, b, "identical configs give identical deterministic times");
}

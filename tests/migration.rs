//! Cross-crate integration tests for the paper's headline results (§6.3):
//! configurations tuned for one machine lose when migrated to another, and
//! each machine's winner differs in the way the paper describes.

use petal::prelude::*;
use petal_apps::blackscholes::BlackScholes;
use petal_apps::strassen::Strassen;
use petal_registry::{DirStore, MatchTier, PutOutcome, StoredEntry};
use petal_tuner::{Autotuner, TunerSettings, WarmStart};

fn settings(seed: u64) -> TunerSettings {
    TunerSettings {
        seed,
        trials_per_round: 24,
        population: 4,
        size_schedule: vec![0.125, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: false,
        // Farm/kick knobs at their defaults (sequential, kicks enabled).
        ..TunerSettings::smoke()
    }
}

#[test]
fn strassen_laptop_style_config_hurts_desktop() {
    // Fig. 7(e): the Laptop's tuned configuration is a direct LAPACK call
    // (Fig. 6); migrated to the Desktop it loses badly to the natively
    // tuned configuration (the paper reports 16.5x; the shape — a large
    // penalty — is what we reproduce).
    let bench = Strassen::new(256);
    let desktop = MachineProfile::desktop();
    let laptop_style = {
        let mut cfg = bench.program(&desktop).default_config(&desktop);
        cfg.set_selector("matmul", Selector::constant(0, 7)); // direct LAPACK
        cfg
    };
    let desktop_tuned = Autotuner::new(&bench, &desktop, settings(1)).run();
    let native = bench
        .run_with_config(&desktop, &desktop_tuned.config)
        .expect("native runs")
        .virtual_time_secs();
    let migrated =
        bench.run_with_config(&desktop, &laptop_style).expect("migrated runs").virtual_time_secs();
    let penalty = migrated / native;
    assert!(penalty > 1.5, "laptop-style config on desktop should be slow: {penalty:.2}x");

    // And the reverse direction: a pinned all-GPU config must not beat the
    // laptop's own tuned configuration on the laptop.
    let laptop = MachineProfile::laptop();
    let mut gpu_cfg = bench.program(&laptop).default_config(&laptop);
    gpu_cfg.set_selector("matmul", Selector::constant(6, 7));
    let laptop_tuned = Autotuner::new(&bench, &laptop, settings(2)).run();
    let native = bench
        .run_with_config(&laptop, &laptop_tuned.config)
        .expect("native runs")
        .virtual_time_secs();
    let gpu = bench.run_with_config(&laptop, &gpu_cfg).expect("gpu runs").virtual_time_secs();
    assert!(gpu >= native * 0.99, "all-GPU must not beat laptop tuning: {gpu} vs {native}");
}

#[test]
fn blackscholes_tuned_configs_match_paper_placements() {
    // Fig. 6: Desktop runs Black-Scholes entirely on the GPU; the Laptop
    // divides the work, putting only part of it on the device.
    let bench = BlackScholes::new(200_000);
    let desktop = MachineProfile::desktop();
    let tuned = Autotuner::new(&bench, &desktop, settings(3)).run();
    let alg = tuned.config.select("blackscholes", bench.input_size());
    let ratio = tuned.config.tunable_or("blackscholes.gpu_ratio", 8);
    assert_eq!(alg, 1, "desktop must choose the OpenCL backend");
    assert!(ratio >= 7, "desktop should run (almost) everything on the GPU, got {ratio}/8");

    let laptop = MachineProfile::laptop();
    let tuned = Autotuner::new(&bench, &laptop, settings(4)).run();
    let alg = tuned.config.select("blackscholes", bench.input_size());
    let ratio = tuned.config.tunable_or("blackscholes.gpu_ratio", 8);
    assert_eq!(alg, 1, "laptop also uses the device...");
    assert!(
        (1..8).contains(&ratio),
        "...but splits the work fractionally (Fig. 6: 25%/75%), got {ratio}/8"
    );
}

#[test]
fn registry_warm_start_repairs_a_migration_faster_than_scratch() {
    // The registry's whole pitch in one deployment story: tune on the
    // Desktop, publish to the registry, land the same benchmark on the
    // Laptop. The nearest-key lookup falls back to the same-family
    // Desktop donor, the warm-started re-tune starts from its migrated
    // (penalized) config, and the repair curve must close the gap in
    // strictly fewer generations than tuning the Laptop from scratch.
    let bench = BlackScholes::new(150_000);
    let desktop = MachineProfile::desktop();
    let laptop = MachineProfile::laptop();
    let dir = std::env::temp_dir().join(format!("petal-migration-reg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reg = DirStore::open(&dir).expect("registry opens");

    // Deployment 1: native Desktop tune, published.
    let src = Autotuner::new(&bench, &desktop, settings(6)).run();
    let stored = StoredEntry {
        machine: desktop.clone(),
        bench_spec: bench.spec(),
        size: bench.input_size(),
        config: src.config.clone(),
        time_secs: src.time_secs,
        source: "migration-test".to_owned(),
    };
    assert!(matches!(reg.put(&stored).expect("put succeeds"), PutOutcome::Inserted));

    // Deployment 2: no Laptop entry exists, so the lookup must land on
    // the same-family (discrete-GPU) Desktop donor.
    let hit = reg
        .lookup(&laptop, &bench.spec(), bench.input_size())
        .expect("lookup succeeds")
        .expect("family donor found");
    assert_eq!(hit.tier, MatchTier::Family);
    assert_eq!(hit.entry.machine.codename, "Desktop");
    assert!(hit.distance > 0.0, "cross-machine hit has positive distance");

    let migrated = bench
        .run_with_config(&laptop, &hit.entry.config)
        .expect("migrated config runs")
        .virtual_time_secs();

    // Same seed for both searches: the only difference is the seeding.
    let warm = Autotuner::new(
        &bench,
        &laptop,
        TunerSettings {
            warm_start: Some(WarmStart {
                config: hit.entry.config.clone(),
                source: format!("registry:{}:{}", hit.tier, hit.entry.machine.codename),
            }),
            ..settings(7)
        },
    )
    .run();
    let scratch = Autotuner::new(&bench, &laptop, settings(7)).run();

    // Zero-regression: the warm winner never loses to the donor it was
    // seeded with, so a registry hit can only help.
    assert!(
        warm.time_secs <= migrated,
        "warm tune {} regressed past the migrated donor {migrated}",
        warm.time_secs
    );
    assert_eq!(warm.stats.warm_source.as_deref(), Some("registry:family:Desktop"));

    // The repair curve shrinks the migration penalty monotonically
    // within every round (best-so-far tracking), and `round_secs`
    // prices every generation.
    assert_eq!(warm.stats.round_best.len(), warm.stats.round_secs.len());
    for round in &warm.stats.round_best {
        for w in round.windows(2) {
            assert!(w[1] <= w[0], "penalty must shrink monotonically: {round:?}");
        }
    }

    // Parity: within 5% of the natively tuned (scratch) Laptop time.
    // Warm must get there in strictly fewer generations — and within a
    // pinned budget of the final (full-size) round — than scratch.
    let target = scratch.time_secs * 1.05;
    let (warm_gen, warm_secs) =
        warm.stats.parity_point(target).expect("warm search reaches parity with scratch");
    let (scratch_gen, scratch_secs) =
        scratch.stats.parity_point(target).expect("scratch reaches its own 5% band");
    assert!(
        warm_gen < scratch_gen,
        "warm start must repair strictly faster: warm parity@gen {warm_gen} \
         vs scratch parity@gen {scratch_gen}"
    );
    let earlier_gens: usize =
        warm.stats.round_best[..warm.stats.round_best.len() - 1].iter().map(Vec::len).sum();
    assert!(
        warm_gen <= earlier_gens + 2,
        "warm parity must land within 2 full-size generations, got gen {warm_gen} \
         ({earlier_gens} earlier)"
    );
    assert!(
        warm_secs <= scratch_secs,
        "warm parity must also be cheaper in virtual seconds: {warm_secs} vs {scratch_secs}"
    );

    // Close the loop: offer the repaired result back, then a Laptop
    // lookup must upgrade from the family donor to an exact hit.
    let repaired = StoredEntry {
        machine: laptop.clone(),
        bench_spec: bench.spec(),
        size: bench.input_size(),
        config: warm.config.clone(),
        time_secs: warm.time_secs,
        source: "migration-test-repair".to_owned(),
    };
    assert!(matches!(reg.put(&repaired).expect("put succeeds"), PutOutcome::Inserted));
    let hit = reg
        .lookup(&laptop, &bench.spec(), bench.input_size())
        .expect("lookup succeeds")
        .expect("exact hit found");
    assert_eq!(hit.tier, MatchTier::Exact);
    assert_eq!(hit.entry.config, warm.config);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_files_roundtrip_through_text() {
    // The choice configuration file (§3): tuned configs survive
    // serialization, and the reparsed config reproduces the same run.
    let bench = BlackScholes::new(50_000);
    let machine = MachineProfile::desktop();
    let tuned = Autotuner::new(&bench, &machine, settings(5)).run();
    let text = tuned.config.to_string();
    let parsed: Config = text.parse().expect("config file parses");
    assert_eq!(parsed, tuned.config);
    let a = bench.run_with_config(&machine, &tuned.config).unwrap().virtual_time_secs();
    let b = bench.run_with_config(&machine, &parsed).unwrap().virtual_time_secs();
    assert_eq!(a, b, "identical configs give identical deterministic times");
}

//! Smoke test: every example must build and exit 0 on a smoke-sized input.
//!
//! Each test shells back into cargo (`cargo run --example <name>`) with
//! `PETAL_SMOKE=1`, which the examples honor by shrinking their inputs.
//! The example binaries are already compiled by the time `cargo test`
//! executes this file, so the nested invocation only links/runs; the
//! `--offline` flag keeps the nested cargo from ever touching the network.

use std::process::Command;

fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--offline", "--example", name])
        .env("PETAL_SMOKE", "1")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(!output.stdout.is_empty(), "example {name} succeeded but printed nothing");
}

#[test]
fn quickstart_builds_and_runs() {
    run_example("quickstart");
}

#[test]
fn image_blur_builds_and_runs() {
    run_example("image_blur");
}

#[test]
fn option_pricing_builds_and_runs() {
    run_example("option_pricing");
}

#[test]
fn polyalgorithm_sort_builds_and_runs() {
    run_example("polyalgorithm_sort");
}

#!/usr/bin/env bash
# Tier-1 gate, exactly as every PR must pass it. Networking is assumed
# absent: all dependencies are workspace-internal (see shims/), and
# --offline turns any accidental registry dependency into a hard error
# instead of a hung fetch — a missing-manifest regression can never land.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --all-targets -- -D warnings (offline)"
cargo clippy --offline --all-targets -- -D warnings

echo "== cargo build --release (offline)"
cargo build --release --offline

echo "== cargo test -q (offline)"
cargo test -q --offline

echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings: docs can never rot)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline
# The Registry -> DirStore rename ships a deprecated alias so external
# callers migrate on their own schedule; the docs must keep carrying it
# (and flagging it deprecated) until it is removed for real.
test -f target/doc/petal_registry/type.Registry.html \
  || { echo "doc gate: the deprecated Registry alias fell out of the docs"; exit 1; }
grep -qi 'deprecated' target/doc/petal_registry/type.Registry.html \
  || { echo "doc gate: the Registry alias is no longer marked deprecated"; exit 1; }

echo "== petal-verify --all --deny (static plan/choice-space verification, smoke budget)"
PETAL_SMOKE=1 cargo run --release --offline -p petal_analysis --bin petal-verify -- --all --deny

echo "== smoke-mode criterion suites (PETAL_SMOKE=1, reduced sizes/samples)"
PETAL_SMOKE=1 cargo bench --offline

echo "== bench_baseline --check-virtual (bit-exact virtual-time reference numbers)"
cargo run --release --offline -p petal_bench --bin bench_baseline -- --check-virtual

echo "== bench_hotpath --check (scheduler speedup regression floor, smoke reps)"
PETAL_SMOKE=1 cargo run --release --offline -p petal_bench --bin bench_hotpath -- --check

echo "== farmd loopback smoke (dispatcher + 2 workers on a unix socket, one injected kill)"
# fig2 (smoke sweep) and fig7 (Black-Scholes) run against a live
# petal-farmd pool via PETAL_FARMD; worker ci-a kills itself mid-run
# (--fail-after) so the re-queue path is exercised in every CI run. The
# figures' own asserts prove results match the in-process farm.
FARMD_SOCK="$(mktemp -u /tmp/petal-farmd-ci.XXXXXX.sock)"
./target/release/petal-farmd --listen "unix:$FARMD_SOCK" &
FARMD_PID=$!
./target/release/petal-shard --connect "unix:$FARMD_SOCK" --name ci-a --fail-after 60 &
./target/release/petal-shard --connect "unix:$FARMD_SOCK" --name ci-b &
WORKER_B_PID=$!
trap 'kill "$FARMD_PID" "$WORKER_B_PID" 2>/dev/null || true; rm -f "$FARMD_SOCK"' EXIT
PETAL_SMOKE=1 PETAL_FARMD="unix:$FARMD_SOCK" ./target/release/fig2_convolution >/dev/null
PETAL_FARMD="unix:$FARMD_SOCK" ./target/release/fig7_migration scholes >/dev/null
kill "$FARMD_PID" 2>/dev/null || true
wait "$FARMD_PID" 2>/dev/null || true

echo "== farmd bounce smoke (SIGKILL the journaled dispatcher mid-fig2, restart, same config)"
# Crash recovery end-to-end on the release binaries: fig2 tunes against
# a --journal dispatcher that is killed with SIGKILL mid-run and
# restarted on the same socket over the same journal. The workers
# reconnect, the client resumes its session by token, and fig2's own
# asserts prove the Tuned.config is bit-identical to the in-process
# farm. (Outputs go to files — pipes would SIGPIPE under pipefail.)
BOUNCE_SOCK="$(mktemp -u /tmp/petal-bounce-ci.XXXXXX.sock)"
BOUNCE_DIR="$(mktemp -d /tmp/petal-bounce-ci.XXXXXX)"
./target/release/petal-farmd --listen "unix:$BOUNCE_SOCK" --journal "$BOUNCE_DIR/journal" \
  2>"$BOUNCE_DIR/farmd-1.log" &
BOUNCE_PID=$!
./target/release/petal-shard --connect "unix:$BOUNCE_SOCK" --name bounce-a 2>/dev/null &
BOUNCE_A_PID=$!
./target/release/petal-shard --connect "unix:$BOUNCE_SOCK" --name bounce-b 2>/dev/null &
BOUNCE_B_PID=$!
trap 'kill -9 "$FIG2_PID" 2>/dev/null || true; kill "$BOUNCE_PID" "$BOUNCE_A_PID" "$BOUNCE_B_PID" "$FARMD_PID" "$WORKER_B_PID" 2>/dev/null || true; rm -rf "$BOUNCE_DIR"; rm -f "$BOUNCE_SOCK" "$FARMD_SOCK"' EXIT
PETAL_SMOKE=1 PETAL_FARMD="unix:$BOUNCE_SOCK" \
  ./target/release/fig2_convolution >"$BOUNCE_DIR/fig2.out" &
FIG2_PID=$!
sleep 1
kill -9 "$BOUNCE_PID" 2>/dev/null || true
wait "$BOUNCE_PID" 2>/dev/null || true
./target/release/petal-farmd --listen "unix:$BOUNCE_SOCK" --journal "$BOUNCE_DIR/journal" \
  2>"$BOUNCE_DIR/farmd-2.log" &
BOUNCE_PID=$!
wait "$FIG2_PID" \
  || { echo "bounce smoke: fig2 failed across the dispatcher bounce"; cat "$BOUNCE_DIR"/farmd-*.log; exit 1; }
kill "$BOUNCE_PID" "$BOUNCE_A_PID" "$BOUNCE_B_PID" 2>/dev/null || true
wait "$BOUNCE_PID" 2>/dev/null || true
rm -rf "$BOUNCE_DIR"
rm -f "$BOUNCE_SOCK"
trap 'kill "$FARMD_PID" "$WORKER_B_PID" 2>/dev/null || true; rm -f "$FARMD_SOCK"' EXIT

echo "== registry smoke (tune -> put -> migrate -> warm-start get -> repair curve)"
# fig7 with --registry stores every native tune and prints the
# repair-curve table; the parity@gen cells only appear when a
# warm-started re-tune actually closed the migration gap. Then the CLI
# round-trip: ls must list the stored machines and get must hand back a
# config file a warm start could consume.
REG_DIR="$(mktemp -d /tmp/petal-registry-ci.XXXXXX)"
trap 'rm -rf "$REG_DIR"; kill "$FARMD_PID" "$WORKER_B_PID" 2>/dev/null || true; rm -f "$FARMD_SOCK"' EXIT
# (Pipelines into early-exiting greps would SIGPIPE the binaries under
# pipefail, so every step writes to a file first.)
PETAL_SMOKE=1 ./target/release/fig7_migration scholes --registry "$REG_DIR" >"$REG_DIR/fig7.out"
grep -q 'parity@gen' "$REG_DIR/fig7.out" \
  || { echo "registry smoke: no parity@gen cell in the repair table"; exit 1; }
./target/release/petal-registry ls --registry "$REG_DIR" >"$REG_DIR/ls.out"
grep -q 'machine=Desktop' "$REG_DIR/ls.out" \
  || { echo "registry smoke: Desktop entry missing from ls"; exit 1; }
REG_SPEC="$(sed -n 's/.*spec="\([^"]*\)".*/\1/p' "$REG_DIR/ls.out" | sort -u)"
./target/release/petal-registry get --registry "$REG_DIR" \
  --machine desktop --spec "$REG_SPEC" >"$REG_DIR/got.cfg" 2>"$REG_DIR/got.meta"
grep -q 'selector' "$REG_DIR/got.cfg" \
  || { echo "registry smoke: get did not return a config file"; exit 1; }
grep -q 'tier=exact' "$REG_DIR/got.meta" \
  || { echo "registry smoke: desktop get was not an exact hit"; exit 1; }
rm -rf "$REG_DIR"

echo "== served-registry smoke (one dispatcher hosting the pool AND the registry)"
# The fleet-shared loop end-to-end on release binaries: a first client's
# GET over the socket misses cold; fig7 then evaluates its tunes on the
# same dispatcher's two workers (PETAL_FARMD) while publishing every
# native tune through the served registry (PETAL_REGISTRY, same
# endpoint) and warm re-tuning the repair table on the pool; a second
# client's exact GET hits what the fleet just published.
REGD_DIR="$(mktemp -d /tmp/petal-regd-ci.XXXXXX)"
REGD_SOCK="$(mktemp -u /tmp/petal-regd-ci.XXXXXX.sock)"
./target/release/petal-farmd --listen "unix:$REGD_SOCK" --registry "$REGD_DIR" &
REGD_PID=$!
./target/release/petal-shard --connect "unix:$REGD_SOCK" --name regd-a &
REGD_A_PID=$!
./target/release/petal-shard --connect "unix:$REGD_SOCK" --name regd-b &
REGD_B_PID=$!
trap 'rm -rf "$REG_DIR" "$REGD_DIR"; kill "$FARMD_PID" "$WORKER_B_PID" "$REGD_PID" "$REGD_A_PID" "$REGD_B_PID" 2>/dev/null || true; rm -f "$FARMD_SOCK" "$REGD_SOCK"' EXIT
if ./target/release/petal-registry get --registry "unix:$REGD_SOCK" \
    --machine laptop --spec "blackscholes n=4096" >/dev/null 2>"$REGD_DIR/miss.meta"; then
  echo "served-registry smoke: expected the first GET to miss cold"; exit 1
fi
grep -q 'no match' "$REGD_DIR/miss.meta" \
  || { echo "served-registry smoke: the cold miss was not a clean miss"; cat "$REGD_DIR/miss.meta"; exit 1; }
PETAL_SMOKE=1 PETAL_FARMD="unix:$REGD_SOCK" PETAL_REGISTRY="unix:$REGD_SOCK" \
  ./target/release/fig7_migration scholes >"$REGD_DIR/fig7.out"
grep -q 'parity@gen' "$REGD_DIR/fig7.out" \
  || { echo "served-registry smoke: no parity@gen cell in the repair table"; exit 1; }
./target/release/petal-registry ls --registry "unix:$REGD_SOCK" >"$REGD_DIR/ls.out"
grep -q 'machine=Desktop' "$REGD_DIR/ls.out" \
  || { echo "served-registry smoke: Desktop entry missing from the served ls"; exit 1; }
REGD_SPEC="$(sed -n 's/.*spec="\([^"]*\)".*/\1/p' "$REGD_DIR/ls.out" | sort -u)"
./target/release/petal-registry get --registry "unix:$REGD_SOCK" \
  --machine desktop --spec "$REGD_SPEC" >"$REGD_DIR/got.cfg" 2>"$REGD_DIR/got.meta"
grep -q 'selector' "$REGD_DIR/got.cfg" \
  || { echo "served-registry smoke: the served get did not return a config file"; exit 1; }
grep -q 'tier=exact' "$REGD_DIR/got.meta" \
  || { echo "served-registry smoke: the second client's get was not an exact hit"; exit 1; }
kill "$REGD_PID" "$REGD_A_PID" "$REGD_B_PID" 2>/dev/null || true
wait "$REGD_PID" 2>/dev/null || true
rm -rf "$REGD_DIR"
rm -f "$REGD_SOCK"

echo "== farmd soak (PETAL_SOAK=1 opt-in: thousands of jobs, worker churn + a dispatcher bounce)"
if [[ "${PETAL_SOAK:-0}" == "1" ]]; then
  PETAL_SOAK=1 cargo test -q --offline -p petal_shard --test farmd_soak
else
  echo "   skipped (set PETAL_SOAK=1 to run)"
fi

echo "CI green"

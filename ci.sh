#!/usr/bin/env bash
# Tier-1 gate, exactly as every PR must pass it. Networking is assumed
# absent: all dependencies are workspace-internal (see shims/), and
# --offline turns any accidental registry dependency into a hard error
# instead of a hung fetch — a missing-manifest regression can never land.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --all-targets -- -D warnings (offline)"
cargo clippy --offline --all-targets -- -D warnings

echo "== cargo build --release (offline)"
cargo build --release --offline

echo "== cargo test -q (offline)"
cargo test -q --offline

echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings: docs can never rot)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "== petal-verify --all --deny (static plan/choice-space verification, smoke budget)"
PETAL_SMOKE=1 cargo run --release --offline -p petal_analysis --bin petal-verify -- --all --deny

echo "== smoke-mode criterion suites (PETAL_SMOKE=1, reduced sizes/samples)"
PETAL_SMOKE=1 cargo bench --offline

echo "== bench_baseline --check-virtual (bit-exact virtual-time reference numbers)"
cargo run --release --offline -p petal_bench --bin bench_baseline -- --check-virtual

echo "== bench_hotpath --check (scheduler speedup regression floor, smoke reps)"
PETAL_SMOKE=1 cargo run --release --offline -p petal_bench --bin bench_hotpath -- --check

echo "CI green"

#!/usr/bin/env bash
# Tier-1 gate, exactly as every PR must pass it. Networking is assumed
# absent: all dependencies are workspace-internal (see shims/), and
# --offline turns any accidental registry dependency into a hard error
# instead of a hung fetch — a missing-manifest regression can never land.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release (offline)"
cargo build --release --offline

echo "== cargo test -q (offline)"
cargo test -q --offline

echo "== cargo bench --no-run (offline, benches must keep compiling)"
cargo bench --offline --no-run

echo "CI green"

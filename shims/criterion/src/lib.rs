//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{default,
//! sample_size, benchmark_group, bench_function}`, benchmark groups with
//! `bench_function`/`bench_with_input`/`finish`, `BenchmarkId`, and
//! `Bencher::iter` — backed by a minimal wall-clock harness: one warm-up
//! iteration, then `sample_size` timed iterations, reporting the mean per
//! iteration on stdout. No statistics, plots, or baseline files.

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness state; carries the default sample size.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifier `function_name/parameter`, as in the real crate.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to the closure given to `bench_function`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed run (also forces lazy init in the routine).
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { iterations: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / sample_size as f64;
    println!("bench {label:<50} {:>12.3} µs/iter ({sample_size} iters)", mean * 1e6);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_all_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("unit/counter", |b| b.iter(|| calls += 1));
        // 1 warm-up + 5 timed.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("gemm", 96).to_string(), "gemm/96");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("unit");
        let data = vec![1, 2, 3];
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum());
        });
        g.finish();
        assert_eq!(seen, 6);
    }
}

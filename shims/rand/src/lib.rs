//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace crate
//! provides the exact API subset the tree uses: `rand::rngs::StdRng`,
//! `rand::SeedableRng::seed_from_u64`, and `rand::Rng::{gen, gen_range,
//! gen_bool}`. The generator is xoshiro256++ seeded through SplitMix64;
//! every sequence is a pure function of the seed, which is what keeps the
//! discrete-event simulation reproducible across runs and machines.
//!
//! Distribution details (modulo-based integer ranges, 53-bit float
//! mantissa fill) intentionally favor simplicity over the bias guarantees
//! of the real crate; callers here only need determinism and coarse
//! uniformity.

pub mod rngs;

pub use rngs::StdRng;

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit resolution).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to a uniform `f32` in `[0, 1)`. Built from 24 bits
/// so the product is exact in f32 — casting `unit_f64` down would round
/// values near 1 up to exactly 1.0 and break the half-open contract.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Closed-interval variants for `RangeInclusive` sampling: dividing by
/// `2^n - 1` makes the upper endpoint reachable.
#[inline]
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

#[inline]
fn unit_f32_inclusive(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty, $uwide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement subtraction yields the true unsigned
                // span even when it exceeds the signed type's max; widen
                // only after reinterpreting as unsigned so no sign
                // extension sneaks in.
                let span =
                    ((self.end as $wide).wrapping_sub(self.start as $wide) as $uwide) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as $wide;
                (self.start as $wide).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as $uwide) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as $wide;
                (lo as $wide).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u64, u16 => u64, u64, u32 => u64, u64, u64 => u64, u64, usize => u64, u64,
    i8 => i64, u64, i16 => i64, u64, i32 => i64, u64, i64 => i64, u64, isize => i64, u64
);

macro_rules! impl_sample_range_float {
    ($($t:ty => $unit:ident, $unit_incl:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = $unit(rng.next_u64());
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = $unit_incl(rng.next_u64());
                // The closed-interval unit makes `hi` reachable; clamp
                // guards the float rounding of lo + (hi-lo)*1.0.
                (lo + (hi - lo) * unit).clamp(lo, hi)
            }
        }
    )*};
}

impl_sample_range_float!(f32 => unit_f32, unit_f32_inclusive, f64 => unit_f64, unit_f64_inclusive);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors the real crate's `Rng` extension trait).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // SplitMix64 expansion must never hand xoshiro an all-zero state.
        let mut r = StdRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn gen_range_respects_integer_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0u64..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_handles_extreme_signed_spans() {
        let mut r = StdRng::seed_from_u64(17);
        for _ in 0..2000 {
            // Spans wider than i64::MAX must not sign-extend into junk.
            let a = r.gen_range(-1i64..i64::MAX);
            assert!((-1..i64::MAX).contains(&a));
            // The full inclusive domain must not overflow.
            let _ = r.gen_range(i64::MIN..=i64::MAX);
            let b = r.gen_range(i64::MIN..=i64::MIN + 3);
            assert!((i64::MIN..=i64::MIN + 3).contains(&b));
        }
    }

    #[test]
    fn inclusive_float_ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(23);
        for _ in 0..2000 {
            let x = r.gen_range(-1.0f64..=2.0);
            assert!((-1.0..=2.0).contains(&x));
            // Degenerate interval returns its single point exactly.
            assert_eq!(r.gen_range(0.75f64..=0.75), 0.75);
        }
        // The closed-interval unit makes the endpoint reachable in
        // principle (unit == 1.0 when all 53 mantissa bits are set).
        assert_eq!(super::unit_f64_inclusive(u64::MAX), 1.0);
        assert_eq!(super::unit_f32_inclusive(u64::MAX), 1.0);
    }

    #[test]
    fn gen_range_hits_both_inclusive_endpoints() {
        let mut r = StdRng::seed_from_u64(11);
        let draws: Vec<i64> = (0..500).map(|_| r.gen_range(0i64..=3)).collect();
        for v in 0..=3 {
            assert!(draws.contains(&v), "endpoint {v} never drawn");
        }
    }

    #[test]
    fn gen_range_respects_float_bounds() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..2000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        let mut r = StdRng::seed_from_u64(5);
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        let mut r = StdRng::seed_from_u64(5);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn gen_produces_plausible_uniforms() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "unit mean {mean}");
    }
}

//! Case scheduling: per-test, per-case deterministic seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Subset of proptest's config: only the case count is honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; tests that need fewer cases say so.
        ProptestConfig { cases: 256 }
    }
}

/// Seed for case `case` of the test named `name`: FNV-1a over the name,
/// mixed with the case index so consecutive cases are uncorrelated.
#[must_use]
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Build the per-case generator (used by the `proptest!` expansion).
#[must_use]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        assert_eq!(case_seed("t", 0), case_seed("t", 0));
        assert_ne!(case_seed("t", 0), case_seed("t", 1));
        assert_ne!(case_seed("t", 0), case_seed("u", 0));
    }
}

//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy producing a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0usize..10, 2..5);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0usize..10, 7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}

//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces a value from an `StdRng`.
//! Unlike real proptest there is no value tree and no simplification; a
//! strategy is just a seeded generator, which is all the workspace's
//! property tests rely on.

use rand::rngs::StdRng;
use rand::{Rng, Standard};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding any value of `T` (uniform over the representation).
pub struct Any<T>(PhantomData<T>);

#[must_use]
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F)(
    A, B, C, D, E, F, G
)(A, B, C, D, E, F, G, H));

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| (0usize..n, Just(n)).prop_map(|(i, n)| (i, n)));
        for _ in 0..200 {
            let (i, n) = s.generate(&mut r);
            assert!(i < n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1_000_000).prop_map(|x| x * 2);
        let a: Vec<u64> = (0..32).map(|_| s.generate(&mut rng())).collect();
        let b: Vec<u64> = (0..32).map(|_| s.generate(&mut rng())).collect();
        assert_eq!(a, b);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset the property tests in this workspace use:
//! the `proptest!` macro (with an optional `#![proptest_config(..)]` inner
//! attribute), `ProptestConfig::with_cases`, range and tuple strategies,
//! `any::<T>()`, `prop_map`/`prop_flat_map`, `collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **Deterministic case generation.** Inputs for case `i` of test `t`
//!   are a pure function of `(t, i)` — no OS entropy, no persistence
//!   files — so failures reproduce exactly across runs and machines.
//! * **No shrinking.** On failure the harness reports the case index and
//!   seed, then re-raises the original panic. With deterministic cases
//!   that is enough to replay under a debugger.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `prop_assert!` — in this shim a plain `assert!`; the surrounding
/// harness attributes the panic to a case index.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The `proptest!` test-harness macro.
///
/// Each contained `#[test] fn name(arg in strategy, ..) { .. }` expands to
/// an ordinary test that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm (must precede the catch-all).
    (@harness ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut runner_rng = $crate::test_runner::rng_from_seed(seed);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {case}/{} (seed {seed:#018x}); \
                             no shrinking — replay is deterministic",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @harness ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @harness (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

//! `petal-verify` — static plan/DAG verifier, determinism auditor, and
//! choice-space linter.
//!
//! ```text
//! petal-verify --all [--deny]            # full benchmark × machine matrix
//! petal-verify --bench Sort [--deny]     # one benchmark, all machines
//! petal-verify --machine desktop --all   # restrict the machine axis
//! ```
//!
//! `--deny` exits non-zero on any error or non-allowlisted warning — the
//! mode CI runs. `PETAL_SMOKE=1` switches to the fast probing budget and
//! skips the autotuned-config sweep.

use petal_analysis::verify::{verify_benchmark, VerifyOptions};
use petal_analysis::VerifyReport;
use petal_apps::all_benchmarks;
use petal_gpu::profile::MachineProfile;
use std::process::ExitCode;

struct Args {
    all: bool,
    deny: bool,
    bench: Option<String>,
    machine: Option<String>,
}

const USAGE: &str = "usage: petal-verify (--all | --bench NAME) [--machine CODENAME] [--deny]
  --all               verify every benchmark
  --bench NAME        verify one benchmark (e.g. Sort, Strassen)
  --machine CODENAME  restrict to one machine profile (default: all extended profiles)
  --deny              exit non-zero on any denied finding (CI mode)
environment: PETAL_SMOKE=1 selects the fast probing budget";

fn parse_args() -> Result<Args, String> {
    let mut args = Args { all: false, deny: false, bench: None, machine: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => args.all = true,
            "--deny" => args.deny = true,
            "--bench" => {
                args.bench = Some(it.next().ok_or("--bench needs a benchmark name")?);
            }
            "--machine" => {
                args.machine = Some(it.next().ok_or("--machine needs a codename")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.all == args.bench.is_some() {
        return Err("pass exactly one of --all or --bench NAME".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("petal-verify: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let smoke = std::env::var("PETAL_SMOKE").is_ok_and(|v| v == "1");
    let options = if smoke { VerifyOptions::smoke() } else { VerifyOptions::full() };

    let benchmarks: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| args.bench.as_deref().map_or(true, |want| b.name().eq_ignore_ascii_case(want)))
        .collect();
    if benchmarks.is_empty() {
        eprintln!(
            "petal-verify: no benchmark named `{}` (have: {})",
            args.bench.as_deref().unwrap_or(""),
            all_benchmarks().iter().map(|b| b.name().to_owned()).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::from(2);
    }
    let machines: Vec<_> = MachineProfile::extended()
        .into_iter()
        .filter(|m| args.machine.as_deref().map_or(true, |want| m.codename == want))
        .collect();
    if machines.is_empty() {
        eprintln!(
            "petal-verify: no machine profile `{}` (have: {})",
            args.machine.as_deref().unwrap_or(""),
            MachineProfile::extended()
                .iter()
                .map(|m| m.codename.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    }

    let mut report = VerifyReport::default();
    for benchmark in &benchmarks {
        for machine in &machines {
            report.merge(verify_benchmark(benchmark.as_ref(), machine, &options));
        }
    }

    print!("{}", report.render());
    if args.deny && !report.deny_clean() {
        eprintln!("petal-verify: --deny: failing on the finding(s) above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `petal_analysis` — the static-analysis layer over the lowered [`Plan`]
//! IR and the tuner's choice space, run *before* execution.
//!
//! Three passes (see `docs/verify.md` for the full contract):
//!
//! 1. **Hazard/race detection** ([`legality::check_hazards`]) — every pair
//!    of steps touching the same matrix with at least one write must be
//!    ordered by the dependence DAG, or the plan's result depends on the
//!    scheduler.
//! 2. **Placement/movement legality** ([`legality::check_placements`],
//!    [`legality::check_movement`]) — placements must be realizable on the
//!    target machine, and the §3.2 copy-out classification must match an
//!    order-independent replay over the dependence graph: no GPU-produced
//!    value may reach a host consumer without a transfer on every path.
//! 3. **Choice-space linting** ([`lint::lint_config`],
//!    [`lint::lint_choice_space`]) — shadowed selector arms, out-of-range
//!    values, and dead tunables/selectors that never change the lowered
//!    plan (probed by structural fingerprinting, [`fingerprint`]).
//!
//! Errors are never allowlistable; warnings fail a `--deny` run unless a
//! committed [`allowlist`] entry with a written justification covers them.
//!
//! [`Plan`]: petal_core::plan::Plan

#![warn(missing_docs)]

pub mod allowlist;
pub mod fingerprint;
pub mod legality;
pub mod lint;
pub mod report;
pub mod verify;

pub use report::{Finding, Pass, Severity, VerifyReport};
pub use verify::{verify_all, verify_benchmark, VerifyOptions};

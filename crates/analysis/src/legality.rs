//! Pass 1 (hazards) and pass 2 (placement/movement legality).
//!
//! Pass 2 replays the §3.2 copy-out classification *independently of
//! schedule order*: `analyze_movement` scans steps in creation order, which
//! is only a valid linearization of the dependence DAG when the plan is
//! hazard-free — so the movement cross-check is meaningful (and is run)
//! only after pass 1 comes back clean.

use crate::report::{Finding, Pass, Severity};
use petal_core::plan::{
    analyze_movement, hazards, reachability, CopyOutPolicy, Placement, Plan, StepKind,
};
use petal_gpu::profile::MachineProfile;

/// Pass 1: report every unordered read-write / write-write step pair.
#[must_use]
pub fn check_hazards(plan: &Plan) -> Vec<Finding> {
    hazards(plan)
        .into_iter()
        .map(|h| {
            let (a, b) = h.steps;
            let steps = plan.steps();
            Finding {
                pass: Pass::Hazard,
                severity: Severity::Error,
                benchmark: String::new(),
                machine: String::new(),
                key: format!("hazard:{}:{}-{}", h.kind, a.index(), b.index()),
                message: format!(
                    "{} hazard on m{}: step {} (`{}`) and step {} (`{}`) are \
                     unordered in the dependence DAG — the result depends on \
                     scheduling",
                    h.kind,
                    h.matrix.index(),
                    a.index(),
                    steps[a.index()].describe(),
                    b.index(),
                    steps[b.index()].describe(),
                ),
                allowed: None,
            }
        })
        .collect()
}

/// Pass 2a: every placement must be realizable on `machine` and legal for
/// its rule.
#[must_use]
pub fn check_placements(plan: &Plan, machine: &MachineProfile) -> Vec<Finding> {
    let mut out = Vec::new();
    let max_wg = machine.gpu.as_ref().map_or(0, |g| g.max_work_group);
    let mut emit = |key: String, message: String| {
        out.push(Finding {
            pass: Pass::Legality,
            severity: Severity::Error,
            benchmark: String::new(),
            machine: machine.codename.clone(),
            key,
            message,
            allowed: None,
        });
    };
    for (i, step) in plan.steps().iter().enumerate() {
        let StepKind::Stencil(s) = &step.kind else { continue };
        let name = &s.rule.name;
        match s.placement {
            Placement::Cpu { chunks } => {
                if chunks == 0 {
                    emit(
                        format!("placement:zero-chunks:{i}"),
                        format!("step {i} (`{name}`): CPU placement with zero chunks"),
                    );
                }
            }
            Placement::OpenCl { local_memory, local_size }
            | Placement::Split { local_memory, local_size, .. } => {
                if !machine.has_opencl() {
                    emit(
                        format!("placement:no-device:{i}"),
                        format!(
                            "step {i} (`{name}`): OpenCL placement on `{}`, which has \
                             no OpenCL device",
                            machine.codename
                        ),
                    );
                } else {
                    if let Err(reject) = s.rule.opencl_verdict() {
                        emit(
                            format!("placement:unmappable:{i}"),
                            format!(
                                "step {i} (`{name}`): placed on OpenCL but the rule is \
                                 not mappable: {reject}"
                            ),
                        );
                    }
                    if local_size == 0 || local_size > max_wg {
                        emit(
                            format!("placement:local-size:{i}"),
                            format!(
                                "step {i} (`{name}`): local_size {local_size} outside \
                                 1..={max_wg} for `{}`",
                                machine.codename
                            ),
                        );
                    }
                }
                if local_memory && !s.rule.has_local_memory_variant() {
                    emit(
                        format!("placement:no-local-variant:{i}"),
                        format!(
                            "step {i} (`{name}`): local-memory placement but the rule \
                             has no scratchpad variant"
                        ),
                    );
                }
                if let Placement::Split { gpu_eighths, cpu_chunks, .. } = s.placement {
                    if !(1..=7).contains(&gpu_eighths) {
                        emit(
                            format!("placement:split-ratio:{i}"),
                            format!(
                                "step {i} (`{name}`): split placement with gpu_eighths \
                                 {gpu_eighths} outside 1..=7"
                            ),
                        );
                    }
                    if cpu_chunks == 0 {
                        emit(
                            format!("placement:zero-chunks:{i}"),
                            format!("step {i} (`{name}`): split placement with zero CPU chunks"),
                        );
                    }
                }
            }
        }
    }
    out
}

/// The copy-out level a consumer set demands, replayed from the dependence
/// DAG instead of schedule order.
fn required_policy(plan: &Plan, reach: &petal_rt::Reachability, producer: usize) -> CopyOutPolicy {
    let steps = plan.steps();
    let StepKind::Stencil(s) = &steps[producer].kind else {
        unreachable!("caller filters to stencil steps")
    };
    let m = s.output;
    // §3.2's analysis treats any producer of a program output conservatively
    // as host-consumed (the executor copies outputs eagerly); replicate.
    let mut cpu = plan.outputs().contains(&m);
    let mut gpu = false;
    let mut dynamic = false;
    for (j, t) in steps.iter().enumerate() {
        if j == producer || !t.reads().contains(&m) || !reach.depends_on(j, producer) {
            continue;
        }
        // An intermediate writer kills the value before `j` reads it.
        let overwritten = steps.iter().enumerate().any(|(k, w)| {
            k != producer
                && k != j
                && w.writes().contains(&m)
                && reach.depends_on(k, producer)
                && reach.depends_on(j, k)
        });
        if overwritten {
            continue;
        }
        match &t.kind {
            StepKind::Stencil(u) => {
                if u.placement.uses_opencl() {
                    gpu = true;
                } else {
                    cpu = true;
                }
            }
            StepKind::Native(_) => dynamic = true,
        }
    }
    if cpu {
        CopyOutPolicy::Eager
    } else if dynamic {
        CopyOutPolicy::Lazy
    } else if gpu {
        CopyOutPolicy::Reused
    } else {
        CopyOutPolicy::Eager // dead value: copy for safety
    }
}

/// Pass 2b: cross-check a copy-out classification against the
/// dependence-graph replay. `policies` is normally
/// [`analyze_movement`]`(plan)` — the executor's own input — but hostile
/// tests may inject a doctored classification.
///
/// Only meaningful on hazard-free plans (see module docs).
#[must_use]
pub fn check_movement(plan: &Plan, policies: &[Option<CopyOutPolicy>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let reach = reachability(plan);
    for (i, step) in plan.steps().iter().enumerate() {
        let StepKind::Stencil(s) = &step.kind else { continue };
        if !s.placement.uses_opencl() {
            continue;
        }
        let name = &s.rule.name;
        let actual = policies.get(i).copied().flatten();
        // A fractional split leaves part of the matrix host-computed; the
        // device part must always consolidate eagerly.
        let required = if matches!(s.placement, Placement::Split { .. }) {
            CopyOutPolicy::Eager
        } else {
            required_policy(plan, &reach, i)
        };
        let Some(actual) = actual else {
            out.push(Finding {
                pass: Pass::Legality,
                severity: Severity::Error,
                benchmark: String::new(),
                machine: String::new(),
                key: format!("movement:missing-policy:{i}"),
                message: format!(
                    "step {i} (`{name}`): OpenCL-placed output m{} has no copy-out \
                     policy",
                    s.output.index()
                ),
                allowed: None,
            });
            continue;
        };
        if actual != required {
            let detail = match (actual, required) {
                (CopyOutPolicy::Reused, CopyOutPolicy::Eager) => {
                    "a host consumer (or program output) reads it with no transfer \
                     on any path"
                }
                (CopyOutPolicy::Reused, CopyOutPolicy::Lazy) => {
                    "dynamic control flow reads it on the host with no transfer and \
                     no deferred-copy entry"
                }
                (CopyOutPolicy::Lazy, CopyOutPolicy::Eager) => {
                    "a host consumer relies on a deferred copy-out the executor \
                     never forces"
                }
                _ => "the classification does not match the dependence-graph replay",
            };
            out.push(Finding {
                pass: Pass::Legality,
                severity: Severity::Error,
                benchmark: String::new(),
                machine: String::new(),
                key: format!("movement:{i}"),
                message: format!(
                    "step {i} (`{name}`): output m{} classified {actual:?} but the \
                     dependence DAG requires {required:?} — {detail}",
                    s.output.index()
                ),
                allowed: None,
            });
        }
    }
    out
}

/// Run pass 1 and pass 2 on one lowered plan. The movement cross-check is
/// skipped when hazards exist (its precondition fails).
#[must_use]
pub fn check_plan(plan: &Plan, machine: &MachineProfile) -> Vec<Finding> {
    let mut findings = check_hazards(plan);
    let hazard_free = findings.is_empty();
    findings.extend(check_placements(plan, machine));
    if hazard_free {
        findings.extend(check_movement(plan, &analyze_movement(plan)));
    }
    findings
}

//! Pass 3: the choice-space linter.
//!
//! Works on a benchmark's [`Program`] metadata and its lowered plans:
//!
//! * **structural config lint** ([`lint_config`]) — cutoff-shadowed
//!   selector arms, redundant levels, tunable values outside their declared
//!   range, extra-tunable defaults outside their declared range;
//! * **dead-choice probing** ([`lint_choice_space`]) — instantiate the
//!   benchmark under systematically varied configurations and flag every
//!   selector and tunable whose variation never changes the lowered plan's
//!   structural fingerprint.
//!
//! Probing quantifies over *reachable* configurations, not just the
//! default: each knob is varied on top of every single-site selector
//! assignment, every pair of selector assignments (for cross-site gating
//! like SeparableConvolution's `separable` → `convolve_rows` dependency),
//! and "augmented" bases that pin every `*.gpu_ratio` to a fractional
//! split and `sequential_cutoff` to its minimum (for knobs that only
//! matter once a split or chunking is active). Knobs reachable only
//! through *deeper* joint assignments must be allowlisted with a written
//! justification (see [`crate::allowlist`]).
//!
//! Keys consulted by dynamic control flow inside native steps
//! ([`petal_apps::Benchmark::dynamic_config_keys`]) are exempt: their
//! effect is invisible to plan structure by construction.

use crate::fingerprint::plan_fingerprint;
use crate::legality::check_plan;
use crate::report::{Finding, Pass, Severity, VerifyReport};
use petal_apps::Benchmark;
use petal_core::program::Program;
use petal_core::{Config, Selector, Tunable};
use petal_gpu::profile::MachineProfile;
use std::collections::{BTreeMap, BTreeSet};

/// Effort knobs for the probing linter.
#[derive(Debug, Clone)]
pub struct LintBudget {
    /// Probe at a single reduced input size so the CI gate stays fast.
    pub smoke: bool,
}

impl LintBudget {
    /// Full probing (CLI default).
    #[must_use]
    pub fn full() -> Self {
        LintBudget { smoke: false }
    }

    /// Fast probing for the CI gate.
    #[must_use]
    pub fn smoke() -> Self {
        LintBudget { smoke: true }
    }
}

/// Structural lint of one configuration against its program metadata and
/// the benchmark's input-size range. Cheap — runs on every config the
/// verifier sees, including tuned ones.
#[must_use]
pub fn lint_config(
    program: &Program,
    machine: &MachineProfile,
    cfg: &Config,
    input_size: u64,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut emit = |severity: Severity, key: String, message: String| {
        out.push(Finding {
            pass: Pass::ChoiceSpace,
            severity,
            benchmark: program.name.clone(),
            machine: machine.codename.clone(),
            key,
            message,
            allowed: None,
        });
    };
    for (name, sel) in cfg.selectors() {
        // Arm `i+1` covers input sizes >= cutoffs[i]; the benchmark never
        // presents a size above its declared input size.
        for (i, &cutoff) in sel.cutoffs().iter().enumerate() {
            if cutoff > input_size {
                emit(
                    Severity::Warning,
                    format!("shadowed-arm:{name}:{}", i + 1),
                    format!(
                        "selector `{name}` arm {} (alg {}) starts at cutoff {cutoff}, \
                         beyond the benchmark's input size {input_size} — the arm is \
                         unreachable",
                        i + 1,
                        sel.algs()[i + 1],
                    ),
                );
            }
        }
        for (i, pair) in sel.algs().windows(2).enumerate() {
            if pair[0] == pair[1] {
                emit(
                    Severity::Warning,
                    format!("redundant-level:{name}:{i}"),
                    format!(
                        "selector `{name}` arms {i} and {} both pick alg {} — the \
                         cutoff between them is a wasted level (max {} levels)",
                        i + 1,
                        pair[0],
                        petal_core::config::MAX_SELECTOR_LEVELS,
                    ),
                );
            }
        }
    }
    for (name, t) in cfg.tunables() {
        if t.value < t.min || t.value > t.max {
            emit(
                Severity::Error,
                format!("tunable-range:{name}"),
                format!(
                    "tunable `{name}` value {} outside its declared range {}..={}",
                    t.value, t.min, t.max
                ),
            );
        }
    }
    for (name, default, min, max) in &program.extra_tunables {
        if default < min || default > max {
            emit(
                Severity::Error,
                format!("default-range:{name}"),
                format!(
                    "extra tunable `{name}` declares default {default} outside its \
                     range {min}..={max}"
                ),
            );
        }
    }
    out
}

/// A selector assignment on top of the default config, plus the optional
/// "augmentation" (gpu_ratio → 1, sequential_cutoff → min) that exposes
/// split-/chunking-gated knobs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Base {
    assign: BTreeMap<String, usize>,
    aug: bool,
}

fn base_config(program: &Program, machine: &MachineProfile, base: &Base) -> Config {
    let mut cfg = program.default_config(machine);
    for site in &program.sites {
        if let Some(&v) = base.assign.get(&site.name) {
            cfg.set_selector(&site.name, Selector::constant(v, program.site_algs(site, machine)));
        }
    }
    if base.aug {
        let pins: Vec<(String, Tunable)> = cfg
            .tunables()
            .filter(|(name, _)| name.ends_with(".gpu_ratio") || *name == "sequential_cutoff")
            .map(|(name, t)| {
                let pinned = if name.ends_with(".gpu_ratio") { 1 } else { t.min };
                (name.to_owned(), Tunable::new(pinned, t.min, t.max))
            })
            .collect();
        for (name, t) in pins {
            cfg.set_tunable(&name, t);
        }
    }
    cfg
}

/// Memo key for one probe: (selector base, tunable override, input size).
type ProbeKey = (Base, Option<(String, i64)>, u64);

/// The probing engine: fingerprints plans across configuration variants
/// and sizes, memoizing by [`ProbeKey`].
struct Prober<'a> {
    program: &'a Program,
    machine: &'a MachineProfile,
    /// (size, benchmark at that size), largest first.
    sized: Vec<(u64, Box<dyn Benchmark>)>,
    cache: BTreeMap<ProbeKey, u64>,
    /// Plan-level (hazard/legality) findings discovered while probing,
    /// deduplicated by key.
    plan_findings: BTreeMap<String, Finding>,
    probes: usize,
}

impl Prober<'_> {
    /// Fingerprints of `base` (+ optional single-tunable override) at every
    /// probe size.
    fn fingerprints(&mut self, base: &Base, tweak: Option<(&str, i64)>) -> Vec<u64> {
        let mut fps = Vec::with_capacity(self.sized.len());
        for idx in 0..self.sized.len() {
            let size = self.sized[idx].0;
            let cache_key = (base.clone(), tweak.map(|(n, v)| (n.to_owned(), v)), size);
            if let Some(&fp) = self.cache.get(&cache_key) {
                fps.push(fp);
                continue;
            }
            let mut cfg = base_config(self.program, self.machine, base);
            if let Some((name, value)) = tweak {
                if let Some(t) = cfg.tunable(name).copied() {
                    cfg.set_tunable(name, Tunable::new(value, t.min, t.max));
                }
            }
            let instance = self.sized[idx].1.instantiate(self.machine, &cfg);
            self.probes += 1;
            let fp = plan_fingerprint(&instance.plan);
            for mut f in check_plan(&instance.plan, self.machine) {
                f.benchmark = self.program.name.clone();
                f.machine = self.machine.codename.clone();
                self.plan_findings.entry(f.key.clone()).or_insert(f);
            }
            self.cache.insert(cache_key, fp);
            fps.push(fp);
        }
        fps
    }
}

/// Probe the benchmark's whole choice space on one machine and report dead
/// selectors and dead tunables (plus any hazard/legality finding surfaced
/// by the probed plans).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lint_choice_space(
    benchmark: &dyn Benchmark,
    machine: &MachineProfile,
    budget: &LintBudget,
) -> VerifyReport {
    let program = benchmark.program(machine);
    let full = benchmark.input_size();
    let mut sized: Vec<(u64, Box<dyn Benchmark>)> = Vec::new();
    if budget.smoke {
        // One reduced size keeps the CI gate fast; fall back to the full
        // size for benchmarks that cannot shrink that far. A quarter of the
        // declared size stays above small-size degradation guards (e.g.
        // Strassen's MIN_RECURSE) that would mask device paths entirely.
        let target = (full / 4).max(2);
        match benchmark.resized(target) {
            Some(b) => sized.push((target, b)),
            None => {
                if let Some(b) = benchmark.resized(full) {
                    sized.push((full, b));
                }
            }
        }
    } else {
        for size in [full, full / 8, full / 64] {
            if sized.iter().any(|(s, _)| *s == size) {
                continue;
            }
            if let Some(b) = benchmark.resized(size) {
                sized.push((size, b));
            }
        }
    }
    if sized.is_empty() {
        // `resized` unsupported: probe at the declared size only.
        if let Some(b) = benchmark.resized(full) {
            sized.push((full, b));
        }
    }
    if sized.is_empty() {
        // No way to re-instantiate the benchmark — better a loud finding
        // than a silently clean report.
        return VerifyReport {
            findings: vec![Finding {
                pass: Pass::ChoiceSpace,
                severity: Severity::Warning,
                benchmark: program.name,
                machine: machine.codename.clone(),
                key: "probe-unsupported".into(),
                message: "benchmark does not support `resized`; choice-space \
                          probing skipped"
                    .into(),
                allowed: None,
            }],
            ..VerifyReport::default()
        };
    }
    let dynamic: BTreeSet<String> = benchmark.dynamic_config_keys().into_iter().collect();
    let mut prober = Prober {
        program: &program,
        machine,
        sized,
        cache: BTreeMap::new(),
        plan_findings: BTreeMap::new(),
        probes: 0,
    };
    let default_base = Base { assign: BTreeMap::new(), aug: false };

    // Enumerate selector bases: default, singles, (non-smoke) pairs.
    let site_algs: Vec<(String, usize)> =
        program.sites.iter().map(|s| (s.name.clone(), program.site_algs(s, machine))).collect();
    let mut singles: Vec<Base> = Vec::new();
    for (name, algs) in &site_algs {
        for v in 1..*algs {
            let mut assign = BTreeMap::new();
            assign.insert(name.clone(), v);
            singles.push(Base { assign, aug: false });
        }
    }
    // Pairwise bases are kept even in smoke mode: cross-site gating (e.g.
    // SeparableConvolution's `separable` choice enabling the two-pass
    // sites) otherwise produces false dead-choice findings, and the smoke
    // budget already saves its time through the single reduced input size.
    let mut pairs: Vec<Base> = Vec::new();
    for (i, (ni, ai)) in site_algs.iter().enumerate() {
        for (nj, aj) in site_algs.iter().skip(i + 1) {
            for vi in 1..*ai {
                for vj in 1..*aj {
                    let mut assign = BTreeMap::new();
                    assign.insert(ni.clone(), vi);
                    assign.insert(nj.clone(), vj);
                    pairs.push(Base { assign, aug: false });
                }
            }
        }
    }

    let mut findings = Vec::new();

    // Dead selectors: a selector is alive when some pair of bases differing
    // only in its value fingerprints differently.
    let default_fp = prober.fingerprints(&default_base, None);
    for (name, algs) in &site_algs {
        if dynamic.contains(name) || *algs <= 1 {
            continue;
        }
        let mut alive = false;
        for v in 1..*algs {
            let mut assign = BTreeMap::new();
            assign.insert(name.clone(), v);
            if prober.fingerprints(&Base { assign, aug: false }, None) != default_fp {
                alive = true;
                break;
            }
        }
        if !alive {
            // Pairs: the selector may only matter under another site's
            // non-default choice (cross-site gating).
            'outer: for other in pairs.iter().filter(|b| b.assign.contains_key(name)) {
                let mut without = other.clone();
                without.assign.remove(name);
                if prober.fingerprints(other, None) != prober.fingerprints(&without, None) {
                    alive = true;
                    break 'outer;
                }
            }
        }
        if !alive {
            findings.push(Finding {
                pass: Pass::ChoiceSpace,
                severity: Severity::Warning,
                benchmark: program.name.clone(),
                machine: machine.codename.clone(),
                key: format!("dead-selector:{name}"),
                message: format!(
                    "selector `{name}` ({algs} algs): no probed value changes the \
                     lowered plan at any probed input size — dead choice \
                     dimension",
                ),
                allowed: None,
            });
        }
    }

    // Dead tunables: probe {min, mid, max} on top of the relevant bases.
    let tunable_names: Vec<(String, Tunable)> = {
        let cfg = program.default_config(machine);
        cfg.tunables().map(|(n, t)| (n.to_owned(), *t)).collect()
    };
    for (name, t) in &tunable_names {
        if dynamic.contains(name) || t.min == t.max {
            continue;
        }
        let site = name.split('.').next().filter(|_| name.contains('.'));
        let mut bases: Vec<Base> = vec![default_base.clone()];
        let relevant = |b: &Base| match site {
            Some(s) => b.assign.contains_key(s),
            None => true,
        };
        bases.extend(singles.iter().filter(|b| relevant(b)).cloned());
        bases.extend(pairs.iter().filter(|b| relevant(b)).cloned());
        // Augmented twins expose split-/chunk-gated knobs.
        let augmented: Vec<Base> = bases
            .iter()
            .filter(|b| !b.aug)
            .map(|b| Base { assign: b.assign.clone(), aug: true })
            .collect();
        bases.extend(augmented);
        let values: Vec<i64> = [t.min, (t.min + t.max) / 2, t.max]
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut alive = false;
        'probe: for base in &bases {
            let baseline = prober.fingerprints(base, None);
            for &v in &values {
                if prober.fingerprints(base, Some((name, v))) != baseline {
                    alive = true;
                    break 'probe;
                }
            }
        }
        if !alive {
            findings.push(Finding {
                pass: Pass::ChoiceSpace,
                severity: Severity::Warning,
                benchmark: program.name.clone(),
                machine: machine.codename.clone(),
                key: format!("dead-tunable:{name}"),
                message: format!(
                    "tunable `{name}` ({}..={}): no probed value changes the lowered \
                     plan under any probed selector assignment — dead search \
                     dimension",
                    t.min, t.max
                ),
                allowed: None,
            });
        }
    }

    let mut report = VerifyReport {
        findings: prober.plan_findings.into_values().collect(),
        plans_checked: prober.probes,
        configs_probed: prober.probes,
    };
    report.findings.extend(findings);
    report
}

//! The warning allowlist: accepted findings with written justifications.
//!
//! Only [`Severity::Warning`] findings
//! may be allowlisted — an entry matching an error is ignored (errors are
//! correctness violations, and silencing one would defeat the verifier).
//! Each entry must say *why* the finding is acceptable; the justification
//! is printed with the finding so a reader of the report never has to
//! hunt for it.

use crate::report::{Finding, Severity};

/// One accepted warning.
#[derive(Debug, Clone, Copy)]
pub struct AllowEntry {
    /// Benchmark display name the entry applies to (matches
    /// [`Finding::benchmark`]).
    pub benchmark: &'static str,
    /// Finding key the entry applies to (matches [`Finding::key`]).
    pub key: &'static str,
    /// Written justification — required, printed verbatim in reports.
    pub why: &'static str,
}

/// The committed allowlist. Keep this SHORT: every entry is a known wart.
pub const ALLOWLIST: &[AllowEntry] = &[
    AllowEntry {
        benchmark: "sort",
        key: "dead-tunable:sequential_cutoff",
        why: "sort lowers to either one opaque native step (recursive merge \
              sort, whose own cutoff `merge_parallel_cutoff` is declared \
              dynamic) or a fixed whole-device bitonic chain; no CPU stencil \
              chunking exists for the global cutoff to steer",
    },
    AllowEntry {
        benchmark: "sort",
        key: "dead-tunable:split_rows",
        why: "sort's buffers are 1-row vectors, so row splitting can never \
              produce more than one chunk; the workspace-standard \
              `split_rows` knob is structurally inert here",
    },
    AllowEntry {
        benchmark: "strassen",
        key: "dead-tunable:sequential_cutoff",
        why: "live on every machine with an OpenCL device (the blocked \
              stencil fallback chunks via `cpu_chunks`); on no-device \
              profiles every multiply lowers to native leaf/recursive steps \
              that manage their own blocking, so the stencil chunking knob \
              has nothing to steer there",
    },
    AllowEntry {
        benchmark: "strassen",
        key: "dead-tunable:split_rows",
        why: "same machine-conditional liveness as strassen's \
              `sequential_cutoff`: only the device-capable stencil fallback \
              consults the stencil chunking knobs",
    },
    AllowEntry {
        benchmark: "tridiagonal",
        key: "dead-tunable:sequential_cutoff",
        why: "tridiagonal's CPU algorithms (Thomas, two-way) are native \
              closures with fixed structure; the stencil chain only exists \
              for the cyclic-reduction choice, which pins its kernels to the \
              device — so on no-device profiles no CPU stencil chunking \
              exists",
    },
    AllowEntry {
        benchmark: "tridiagonal",
        key: "dead-tunable:split_rows",
        why: "same as tridiagonal's `sequential_cutoff`: no CPU-placed \
              stencil step exists on no-device profiles",
    },
    AllowEntry {
        benchmark: "svd",
        key: "dead-selector:matmul_svd",
        why: "the nested multiply selector is live only through a piecewise \
              cutoff descent beneath the device multiply (choice 6), which \
              requires an OpenCL device and `svd_rank` = n (square A·Vk); \
              the prober's constant-selector bases cannot reach that joint \
              assignment, and on no-device profiles choice 6 does not exist \
              so the A·Vk product always runs as a BLAS leaf",
    },
    AllowEntry {
        benchmark: "svd",
        key: "dead-tunable:matmul_svd.gpu_ratio",
        why: "consulted only inside the choice-6 device multiply, reachable \
              only under the joint assignment `matmul_svd` = 6 and \
              `svd_rank` = n — one knob deeper than the prober's pairwise + \
              augmented bases probe (documented limitation in \
              docs/verify.md)",
    },
    AllowEntry {
        benchmark: "svd",
        key: "dead-tunable:matmul_svd.local_size",
        why: "same joint-reachability gap as `matmul_svd.gpu_ratio`: live \
              only when the choice-6 device multiply is actually lowered",
    },
];

/// Stamp `allowed` on every warning covered by the committed allowlist.
pub fn apply(findings: &mut [Finding]) {
    apply_entries(findings, ALLOWLIST);
}

/// Stamp `allowed` using an explicit entry set (tests use this to check
/// matching semantics without depending on the committed list).
pub fn apply_entries(findings: &mut [Finding], entries: &[AllowEntry]) {
    for f in findings {
        if f.severity != Severity::Warning {
            continue;
        }
        if let Some(e) = entries.iter().find(|e| e.benchmark == f.benchmark && e.key == f.key) {
            f.allowed = Some(e.why);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Pass, Severity};

    fn finding(severity: Severity, benchmark: &str, key: &str) -> Finding {
        Finding {
            pass: Pass::ChoiceSpace,
            severity,
            benchmark: benchmark.into(),
            machine: "desktop".into(),
            key: key.into(),
            message: String::new(),
            allowed: None,
        }
    }

    #[test]
    fn warnings_match_on_benchmark_and_key() {
        let entries = [AllowEntry { benchmark: "Sort", key: "dead-tunable:x", why: "test" }];
        let mut fs = vec![
            finding(Severity::Warning, "Sort", "dead-tunable:x"),
            finding(Severity::Warning, "Sort", "dead-tunable:y"),
            finding(Severity::Warning, "Strassen", "dead-tunable:x"),
        ];
        apply_entries(&mut fs, &entries);
        assert_eq!(fs[0].allowed, Some("test"));
        assert!(fs[1].allowed.is_none(), "key must match");
        assert!(fs[2].allowed.is_none(), "benchmark must match");
    }

    #[test]
    fn errors_are_never_allowlisted() {
        let entries = [AllowEntry { benchmark: "Sort", key: "hazard:ww:0-1", why: "nope" }];
        let mut fs = vec![finding(Severity::Error, "Sort", "hazard:ww:0-1")];
        apply_entries(&mut fs, &entries);
        assert!(fs[0].allowed.is_none());
        assert!(fs[0].denied(), "an error always fails --deny");
    }
}

//! The sweep driver behind `petal-verify`: run all three passes over a
//! (benchmark × machine) matrix, on both the seed (default) configuration
//! and — optionally — a freshly autotuned one.

use crate::allowlist;
use crate::legality::check_plan;
use crate::lint::{lint_choice_space, lint_config, LintBudget};
use crate::report::VerifyReport;
use petal_apps::{all_benchmarks, Benchmark};
use petal_core::Config;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, TunerSettings};

/// What `verify_benchmark` should sweep.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Probing effort for the choice-space linter.
    pub budget: LintBudget,
    /// Also autotune (smoke effort) and verify the tuned configuration —
    /// this is how the verifier covers configs the search actually visits,
    /// not just the seed.
    pub tuned: bool,
}

impl VerifyOptions {
    /// Full sweep (CLI default).
    #[must_use]
    pub fn full() -> Self {
        VerifyOptions { budget: LintBudget::full(), tuned: true }
    }

    /// Fast sweep for the CI gate (`PETAL_SMOKE=1`).
    #[must_use]
    pub fn smoke() -> Self {
        VerifyOptions { budget: LintBudget::smoke(), tuned: false }
    }
}

/// Verify one concrete configuration: structural config lint plus
/// hazard/legality passes on the plan it lowers to.
fn verify_config(
    benchmark: &dyn Benchmark,
    machine: &MachineProfile,
    cfg: &Config,
) -> VerifyReport {
    let program = benchmark.program(machine);
    let mut findings = lint_config(&program, machine, cfg, benchmark.input_size());
    let instance = benchmark.instantiate(machine, cfg);
    for mut f in check_plan(&instance.plan, machine) {
        f.benchmark = program.name.clone();
        f.machine = machine.codename.clone();
        findings.push(f);
    }
    VerifyReport { findings, plans_checked: 1, configs_probed: 0 }
}

/// Run all three passes for one (benchmark, machine) pair.
#[must_use]
pub fn verify_benchmark(
    benchmark: &dyn Benchmark,
    machine: &MachineProfile,
    options: &VerifyOptions,
) -> VerifyReport {
    let program = benchmark.program(machine);
    let mut report = verify_config(benchmark, machine, &program.default_config(machine));
    report.merge(lint_choice_space(benchmark, machine, &options.budget));
    if options.tuned {
        let tuned = Autotuner::new(benchmark, machine, TunerSettings::smoke()).run();
        report.merge(verify_config(benchmark, machine, &tuned.config));
    }
    allowlist::apply(&mut report.findings);
    report
}

/// The full committed matrix: every benchmark × every extended machine
/// profile. This is what `petal-verify --all` (and the CI gate) runs.
#[must_use]
pub fn verify_all(options: &VerifyOptions) -> VerifyReport {
    let mut report = VerifyReport::default();
    for benchmark in all_benchmarks() {
        for machine in MachineProfile::extended() {
            report.merge(verify_benchmark(benchmark.as_ref(), &machine, options));
        }
    }
    report
}

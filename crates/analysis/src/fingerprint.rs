//! Structural plan fingerprints for dead-choice probing.
//!
//! Two plans with the same fingerprint lower to the same task structure:
//! same step kinds in the same order, same placements, same buffer wiring,
//! same dependence edges. The linter varies one configuration knob at a
//! time and declares the knob *dead* when no probed variation ever changes
//! the fingerprint — the knob provably cannot affect what the executor
//! does (closures inside native steps excepted; see
//! `Benchmark::dynamic_config_keys`).

use petal_core::plan::{Plan, Step, StepKind};

/// FNV-1a, 64-bit. A hand-rolled hash keeps fingerprints stable across
/// processes (so reports are reproducible verbatim), which `DefaultHasher`
/// does not guarantee.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }
}

fn hash_step(h: &mut Fnv, step: &Step) {
    match &step.kind {
        StepKind::Stencil(s) => {
            h.write(&[1]);
            h.write_str(&s.rule.name);
            // Placement debug form covers the variant and every knob
            // (chunks, local_size, local_memory, gpu_eighths).
            h.write_str(&format!("{:?}", s.placement));
            h.write_usize(s.out_dims.0);
            h.write_usize(s.out_dims.1);
            for sc in &s.user_scalars {
                h.write(&sc.to_bits().to_le_bytes());
            }
        }
        StepKind::Native(n) => {
            h.write(&[2]);
            h.write_str(&n.label);
        }
    }
    for m in step.reads() {
        h.write_usize(m.index());
    }
    h.write(&[0xfe]);
    for m in step.writes() {
        h.write_usize(m.index());
    }
    h.write(&[0xfd]);
    for d in &step.deps {
        h.write_usize(d.index());
    }
}

/// Structural fingerprint of a lowered plan.
#[must_use]
pub fn plan_fingerprint(plan: &Plan) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(plan.steps().len());
    for step in plan.steps() {
        hash_step(&mut h, step);
    }
    for m in plan.outputs() {
        h.write_usize(m.index());
    }
    h.0
}

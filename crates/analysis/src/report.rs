//! Finding and report types shared by the three verifier passes.

use std::fmt;

/// Which verifier pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Hazard/race detection over the dependence DAG.
    Hazard,
    /// Placement and data-movement legality.
    Legality,
    /// Choice-space linting (dead tunables, shadowed selector arms).
    ChoiceSpace,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Hazard => write!(f, "hazard"),
            Pass::Legality => write!(f, "legality"),
            Pass::ChoiceSpace => write!(f, "choice-space"),
        }
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Search-space waste or suspicious-but-safe structure. Fails a
    /// `--deny` run unless allowlisted.
    Warning,
    /// A correctness invariant is violated; never allowlistable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Producing pass.
    pub pass: Pass,
    /// Severity.
    pub severity: Severity,
    /// Benchmark display name (empty for plan-only checks not yet
    /// attributed to a benchmark).
    pub benchmark: String,
    /// Machine codename (empty when machine-independent).
    pub machine: String,
    /// Stable key identifying the finding class and subject, e.g.
    /// `dead-tunable:split_rows` — what the allowlist matches on.
    pub key: String,
    /// Human-readable, step/tunable-precise diagnostic.
    pub message: String,
    /// `Some(justification)` when an allowlist entry covers this finding.
    pub allowed: Option<&'static str>,
}

impl Finding {
    /// True when this finding fails a `--deny` run: every error, plus any
    /// warning not covered by the allowlist.
    #[must_use]
    pub fn denied(&self) -> bool {
        self.severity == Severity::Error || self.allowed.is_none()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}]", self.pass, self.severity)?;
        if !self.benchmark.is_empty() {
            write!(f, " {}", self.benchmark)?;
        }
        if !self.machine.is_empty() {
            write!(f, " on {}", self.machine)?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(why) = self.allowed {
            write!(f, " [allowed: {why}]")?;
        }
        Ok(())
    }
}

/// Aggregated result of a verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Plans inspected by the hazard/legality passes.
    pub plans_checked: usize,
    /// Configurations instantiated by the choice-space linter.
    pub configs_probed: usize,
}

impl VerifyReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.findings.extend(other.findings);
        self.plans_checked += other.plans_checked;
        self.configs_probed += other.configs_probed;
    }

    /// Findings that fail a `--deny` run.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.denied())
    }

    /// True when a `--deny` run passes.
    #[must_use]
    pub fn deny_clean(&self) -> bool {
        self.denied().next().is_none()
    }

    /// Multi-line human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        let denied = self.denied().count();
        let allowed = self.findings.iter().filter(|f| f.allowed.is_some()).count();
        let _ = writeln!(
            out,
            "petal-verify: {} plans checked, {} configs probed, {} finding(s) \
             ({denied} denied, {allowed} allowlisted)",
            self.plans_checked,
            self.configs_probed,
            self.findings.len(),
        );
        out
    }
}

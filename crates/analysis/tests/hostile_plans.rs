//! Hostile-plan fixtures: every class of defect the verifier exists to
//! catch, injected deliberately, with exact step/tunable assertions on the
//! diagnostics — plus the determinism audit: verifier-clean random DAG
//! plans must execute bit-identically under both scheduler policies.

use petal_analysis::legality::{check_hazards, check_movement, check_placements, check_plan};
use petal_analysis::lint::lint_config;
use petal_analysis::{Pass, Severity};
use petal_blas::Matrix;
use petal_core::plan::{
    analyze_movement, CopyOutPolicy, NativeStep, Placement, PlanBuilder, StencilStep,
};
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, Executor, MatrixId, Program, Selector, Tunable, World};
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, SchedPolicy};
use proptest::prelude::*;
use std::sync::Arc;

const GPU: Placement = Placement::OpenCl { local_memory: false, local_size: 16 };
const CPU: Placement = Placement::Cpu { chunks: 2 };

/// out[y][x] = 2 * in[y][x] — trivially OpenCL-mappable.
fn double_rule() -> Arc<StencilRule> {
    Arc::new(StencilRule {
        name: "dbl".into(),
        inputs: vec![StencilInput { index: 0, access: AccessPattern::Point }],
        flops_per_output: 1.0,
        body_c: "result = 2.0 * IN0(x, y);".into(),
        elem: Arc::new(|env, x, y| 2.0 * env.inputs[0].at(x, y)),
        native_only_body: false,
    })
}

fn stencil(input: MatrixId, output: MatrixId, n: usize, placement: Placement) -> StencilStep {
    StencilStep {
        rule: double_rule(),
        inputs: vec![input],
        output,
        out_dims: (n, n),
        user_scalars: vec![],
        placement,
    }
}

/// A do-nothing native step with declared read/write sets.
fn native(label: &str, reads: Vec<MatrixId>, writes: Vec<MatrixId>) -> NativeStep {
    NativeStep {
        label: label.into(),
        reads,
        writes,
        run: Box::new(|_w: &mut World, _ctx| Charge::Secs(1.0e-6)),
    }
}

fn alloc_n(world: &mut World, count: usize, n: usize) -> Vec<MatrixId> {
    (0..count).map(|_| world.alloc(Matrix::zeros(n, n))).collect()
}

// ---------------------------------------------------------------------------
// Pass 1: injected hazards
// ---------------------------------------------------------------------------

#[test]
fn injected_ww_hazard_is_reported_with_exact_steps() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    p.native(native("writer_a", vec![], vec![m[0]]), &[]);
    p.native(native("writer_b", vec![], vec![m[0]]), &[]); // unordered!
    let findings = check_hazards(&p.build());
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.pass, Pass::Hazard);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.key, "hazard:write-write:0-1", "step-precise key");
    assert!(f.message.contains("`writer_a`") && f.message.contains("`writer_b`"), "{}", f.message);
    assert!(f.denied(), "hazards always fail --deny");
}

#[test]
fn injected_rw_hazard_is_reported_with_exact_steps() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 3, 4);
    let mut p = PlanBuilder::new();
    let s0 = p.native(native("writer", vec![], vec![m[0]]), &[]);
    // Reader of m0 ordered only against an unrelated step — unordered
    // against the writer.
    let s1 = p.native(native("unrelated", vec![], vec![m[1]]), &[]);
    let _ = s0;
    p.native(native("reader", vec![m[0]], vec![m[2]]), &[s1]);
    let findings = check_hazards(&p.build());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "hazard:read-write:0-2");
    assert!(findings[0].message.contains("`reader`"), "{}", findings[0].message);
}

#[test]
fn dag_ordering_suppresses_the_same_access_pattern() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 3, 4);
    let mut p = PlanBuilder::new();
    let s0 = p.native(native("writer", vec![], vec![m[0]]), &[]);
    let s1 = p.native(native("mid", vec![m[0]], vec![m[1]]), &[s0]);
    p.native(native("reader", vec![m[0]], vec![m[2]]), &[s1]); // transitive order
    assert!(check_hazards(&p.build()).is_empty());
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "unordered data hazard")]
fn executor_debug_asserts_on_hazardous_plans() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 1, 4);
    let mut p = PlanBuilder::new();
    p.native(native("a", vec![], vec![m[0]]), &[]);
    p.native(native("b", vec![], vec![m[0]]), &[]);
    let _ = Executor::new(&MachineProfile::desktop()).run(p.build(), &mut w);
}

// ---------------------------------------------------------------------------
// Pass 2: placement and movement legality
// ---------------------------------------------------------------------------

#[test]
fn opencl_placement_on_gpuless_machine_is_an_error() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    p.stencil(stencil(m[0], m[1], 4, GPU), &[]);
    let manycore = MachineProfile::extended()
        .into_iter()
        .find(|mp| !mp.has_opencl())
        .expect("a no-device profile exists");
    let findings = check_placements(&p.build(), &manycore);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "placement:no-device:0");
    assert_eq!(findings[0].severity, Severity::Error);
}

#[test]
fn oversized_local_size_is_an_error() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    let desktop = MachineProfile::desktop();
    let too_big = desktop.gpu.as_ref().expect("desktop has a GPU").max_work_group + 1;
    p.stencil(
        stencil(m[0], m[1], 4, Placement::OpenCl { local_memory: false, local_size: too_big }),
        &[],
    );
    let findings = check_placements(&p.build(), &desktop);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "placement:local-size:0");
}

#[test]
fn zero_chunk_cpu_placement_is_an_error() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    p.stencil(stencil(m[0], m[1], 4, Placement::Cpu { chunks: 0 }), &[]);
    let findings = check_placements(&p.build(), &MachineProfile::desktop());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "placement:zero-chunks:0");
}

#[test]
fn missing_transfer_to_host_consumer_is_caught() {
    // GPU producer feeding a CPU consumer: the §3.2 analysis must classify
    // the producer Eager. A doctored Reused classification (the "missing
    // transfer" defect) must be rejected with the producer's step index.
    let mut w = World::new();
    let m = alloc_n(&mut w, 3, 4);
    let mut p = PlanBuilder::new();
    let s0 = p.stencil(stencil(m[0], m[1], 4, GPU), &[]);
    p.stencil(stencil(m[1], m[2], 4, CPU), &[s0]);
    let plan = p.build();

    // The executor's own classification is sound ...
    assert!(check_movement(&plan, &analyze_movement(&plan)).is_empty());

    // ... and the doctored one is rejected.
    let doctored = vec![Some(CopyOutPolicy::Reused), None];
    let findings = check_movement(&plan, &doctored);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.key, "movement:0", "the GPU producer, not the consumer");
    assert!(f.message.contains("no transfer on any path"), "{}", f.message);
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn missing_policy_on_gpu_step_is_caught() {
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    p.stencil(stencil(m[0], m[1], 4, GPU), &[]);
    p.mark_output(m[1]);
    let findings = check_movement(&p.build(), &[None]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "movement:missing-policy:0");
}

#[test]
fn lazy_where_host_needs_eager_is_caught() {
    // Program output produced on the GPU: §3.2 demands Eager. A Lazy
    // classification relies on a pull the executor never forces for plain
    // stencil consumers.
    let mut w = World::new();
    let m = alloc_n(&mut w, 2, 4);
    let mut p = PlanBuilder::new();
    p.stencil(stencil(m[0], m[1], 4, GPU), &[]);
    p.mark_output(m[1]);
    let findings = check_movement(&p.build(), &[Some(CopyOutPolicy::Lazy)]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "movement:0");
    assert!(findings[0].message.contains("deferred copy-out"), "{}", findings[0].message);
}

// ---------------------------------------------------------------------------
// Pass 3: structural config lint
// ---------------------------------------------------------------------------

fn one_site_program() -> Program {
    let mut p = Program::new("hostile");
    p.add_site(petal_core::ChoiceSite {
        name: "site".into(),
        num_algs: 3,
        opencl: false,
        local_memory_variant: false,
        fractional: false,
    });
    p
}

#[test]
fn cutoff_shadowed_selector_arm_is_reported() {
    let program = one_site_program();
    let machine = MachineProfile::desktop();
    let mut cfg = program.default_config(&machine);
    // Arm 1 (alg 2) starts at 5000, but the input is only 1024 elements:
    // the arm can never fire.
    cfg.set_selector("site", Selector::new(vec![5000], vec![1, 2], 3));
    let findings = lint_config(&program, &machine, &cfg, 1024);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.key, "shadowed-arm:site:1", "tunable-precise key");
    assert!(f.message.contains("alg 2") && f.message.contains("5000"), "{}", f.message);
    assert_eq!(f.severity, Severity::Warning);
}

#[test]
fn reachable_piecewise_selector_is_clean() {
    let program = one_site_program();
    let machine = MachineProfile::desktop();
    let mut cfg = program.default_config(&machine);
    cfg.set_selector("site", Selector::new(vec![512], vec![1, 2], 3));
    assert!(lint_config(&program, &machine, &cfg, 1024).is_empty());
}

#[test]
fn redundant_selector_level_is_reported() {
    let program = one_site_program();
    let machine = MachineProfile::desktop();
    let mut cfg = program.default_config(&machine);
    cfg.set_selector("site", Selector::new(vec![256], vec![1, 1], 3));
    let findings = lint_config(&program, &machine, &cfg, 1024);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "redundant-level:site:0");
}

#[test]
fn out_of_range_tunable_value_is_an_error() {
    let program = one_site_program();
    let machine = MachineProfile::desktop();
    let mut cfg = program.default_config(&machine);
    // `Tunable::new` clamps, so forge the struct directly — this models a
    // hand-edited or corrupted stored config.
    cfg.set_tunable("rogue", Tunable { value: 99, min: 1, max: 8 });
    let findings = lint_config(&program, &machine, &cfg, 1024);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].key, "tunable-range:rogue");
    assert_eq!(findings[0].severity, Severity::Error);
    assert!(findings[0].denied());
}

#[test]
fn out_of_range_extra_tunable_default_is_an_error() {
    let mut program = one_site_program();
    program.add_tunable("bad_default", 500, 1, 64);
    let machine = MachineProfile::desktop();
    let cfg = Config::new();
    let findings = lint_config(&program, &machine, &cfg, 1024);
    assert!(findings.iter().any(|f| f.key == "default-range:bad_default"), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Determinism audit: verifier-clean random plans are policy-independent
// ---------------------------------------------------------------------------

/// One random step: which earlier value it reads and how it is placed.
#[derive(Debug, Clone)]
struct StepSpec {
    /// Index into the pool of already-produced matrices (modulo its size).
    src: usize,
    /// 0 = CPU, 1 = OpenCL, 2 = split.
    place: u8,
    /// Extra dependencies on earlier steps (indices modulo position).
    extra_deps: Vec<usize>,
}

fn plan_strategy() -> impl Strategy<Value = (Vec<StepSpec>, u64)> {
    let step = (any::<usize>(), 0u8..3, proptest::collection::vec(any::<usize>(), 0..3))
        .prop_map(|(src, place, extra_deps)| StepSpec { src, place, extra_deps });
    (proptest::collection::vec(step, 1..10), any::<u64>())
}

/// Build the spec's plan: step `i` reads one existing matrix and writes a
/// fresh one, depending on the producer of its input (hazard-free by
/// construction) plus arbitrary extra earlier steps.
fn build_plan(specs: &[StepSpec], n: usize) -> (World, petal_core::plan::Plan, Vec<MatrixId>) {
    let mut world = World::new();
    let a0 = world.alloc(Matrix::from_fn(n, n, |r, c| (r * n + c + 1) as f64));
    // produced[k] = (matrix, Some(step that wrote it))
    let mut produced: Vec<(MatrixId, Option<petal_core::plan::StepId>)> = vec![(a0, None)];
    let mut p = PlanBuilder::new();
    let mut outputs = Vec::new();
    let mut sids: Vec<petal_core::plan::StepId> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (src, producer) = produced[spec.src % produced.len()];
        let out = world.alloc(Matrix::zeros(n, n));
        let mut deps: Vec<petal_core::plan::StepId> = producer.into_iter().collect();
        for &d in &spec.extra_deps {
            if i > 0 {
                let id = sids[d % i];
                if !deps.contains(&id) {
                    deps.push(id);
                }
            }
        }
        let placement = match spec.place {
            0 => CPU,
            1 => GPU,
            _ => Placement::Split {
                gpu_eighths: 4,
                local_memory: false,
                local_size: 16,
                cpu_chunks: 2,
            },
        };
        let sid = p.stencil(stencil(src, out, n, placement), &deps);
        produced.push((out, Some(sid)));
        sids.push(sid);
        outputs.push(out);
    }
    let last = outputs.last().copied().expect("at least one step");
    p.mark_output(last);
    (world, p.build(), outputs)
}

fn run_policy(
    specs: &[StepSpec],
    n: usize,
    seed: u64,
    policy: SchedPolicy,
) -> (Vec<Matrix>, petal_core::ExecReport) {
    let (mut world, plan, outputs) = build_plan(specs, n);
    let mut ex = Executor::new(&MachineProfile::desktop());
    ex.set_seed(seed).set_sched_policy(policy);
    let report = ex.run(plan, &mut world).expect("clean plans execute");
    let mats = outputs.iter().map(|&m| world.get(m).clone()).collect();
    (mats, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random hazard-free DAG plans: (a) the verifier agrees they are
    /// clean, (b) execution is bit-identical under both scheduler
    /// policies — results, makespan, steal counters, everything.
    #[test]
    fn verifier_clean_plans_run_identically_under_both_policies(
        (specs, seed) in plan_strategy()
    ) {
        let n = 4;
        let machine = MachineProfile::desktop();
        let (_, plan, _) = build_plan(&specs, n);
        let findings = check_plan(&plan, &machine);
        prop_assert!(findings.is_empty(), "construction is hazard-free: {findings:?}");

        let (mats_a, rep_a) = run_policy(&specs, n, seed, SchedPolicy::Incremental);
        let (mats_b, rep_b) = run_policy(&specs, n, seed, SchedPolicy::NaiveScan);
        prop_assert_eq!(rep_a, rep_b, "reports must be bit-identical");
        for (i, (a, b)) in mats_a.iter().zip(&mats_b).enumerate() {
            prop_assert!(a.approx_eq(b, 0.0), "output {i} diverged between policies");
        }
    }
}

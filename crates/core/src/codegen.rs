//! OpenCL kernel generation (§3.1 phases 2 and 3).
//!
//! For every mappable [`StencilRule`] this module produces:
//!
//! * **OpenCL C source text** for the plain (global-memory) variant and,
//!   when the bounding-box analysis allows, the **local-memory variant**
//!   with a generated cooperative load phase and a barrier — the
//!   "traditionally hand-written scratchpad memory optimization that
//!   requires significant memory access rewriting and the generation of
//!   multi-phase cooperative loads and stores" (§1.1). Rule bodies are
//!   written against `INk(x, y)` macros; the two variants bind the macros
//!   to global or staged-local storage respectively.
//! * A **work descriptor** ([`KernelWork`]) for the cost model: the two
//!   variants differ exactly in where their stencil reuse traffic lands
//!   (redundant global reads vs. staged local reads).
//! * A **functional body** that executes the kernel semantics on host data
//!   — including real tile staging for the local variant, so bounding-box
//!   violations are caught by the tile views.

use crate::stencil::{AccessPattern, StencilEnv, StencilRule, View};
use petal_gpu::buffer::BufferTable;
use petal_gpu::cost::{CpuWork, KernelWork};
use petal_gpu::device::{KernelBody, KernelLaunch};
use petal_gpu::source::{kernel_signature, SourceBuilder};
use petal_gpu::GpuError;
use std::sync::Arc;

/// Geometry of one stencil launch: the output region and input shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    /// Output matrix width (columns).
    pub out_w: usize,
    /// Output matrix height (rows).
    pub out_h: usize,
    /// First output row computed by this launch (ratio splits compute
    /// `[row0, row1)`; the full matrix is `[0, out_h)`).
    pub row0: usize,
    /// One past the last output row computed by this launch.
    pub row1: usize,
    /// `(cols, rows)` of each input matrix, in declaration order.
    pub in_dims: Vec<(usize, usize)>,
    /// Work-items per work-group (the local-work-size tunable).
    pub local_size: usize,
}

impl Geometry {
    /// Output cells computed by this launch.
    #[must_use]
    pub fn items(&self) -> usize {
        self.out_w * (self.row1 - self.row0)
    }

    /// 2D work-group tile `(w, h)` derived from the local size: 16-wide
    /// rows of work-items when possible (coalesced accesses), otherwise a
    /// single row.
    #[must_use]
    pub fn tile(&self) -> (usize, usize) {
        let ls = self.local_size.max(1);
        if ls >= 16 && ls % 16 == 0 {
            (16, ls / 16)
        } else {
            (ls, 1)
        }
    }

    /// Number of work-groups covering the output region.
    #[must_use]
    pub fn groups(&self) -> usize {
        let (tw, th) = self.tile();
        self.out_w.div_ceil(tw) * (self.row1 - self.row0).div_ceil(th)
    }
}

/// Vectorization efficiency a CPU-backed OpenCL runtime achieves on this
/// rule's body (see [`KernelWork::vector_efficiency`]).
#[must_use]
fn vector_efficiency(rule: &StencilRule) -> f64 {
    let worst = rule
        .inputs
        .iter()
        .map(|i| match i.access {
            AccessPattern::Point | AccessPattern::All => 1.0,
            AccessPattern::Row | AccessPattern::Column => 0.4,
            AccessPattern::Gather => 0.5,
            AccessPattern::Stencil { .. } => 0.2,
            AccessPattern::Sequential | AccessPattern::Wavefront => 0.1,
        })
        .fold(1.0, f64::min);
    worst
}

/// Redundant (non-compulsory) global reads per output for one input.
///
/// Stencil overlap is charged in full (the device cache factor discounts
/// it); whole-row/column reuse is capped because real matmul-style kernels
/// tile those accesses through caches; broadcast inputs are tiny and stay
/// cached after one read.
fn redundant_reads(access: AccessPattern, rpo: f64) -> f64 {
    let raw = (rpo - 1.0).max(0.0);
    match access {
        // Broadcast inputs are tiny and stay cached after one read.
        AccessPattern::All => raw.min(1.0),
        // Row/Column reuse is charged in full: the generated kernel reads
        // whole rows/columns through global memory (the paper notes its
        // matmul lacks the hand-written local-memory accumulation, §6.2),
        // so it is memory-bound — which is what makes the mobile GPU lose.
        _ => raw,
    }
}

/// Build the cost-model descriptor for one launch of `rule`.
#[must_use]
pub fn kernel_work(rule: &StencilRule, geom: &Geometry, local_memory: bool) -> KernelWork {
    let items = geom.items() as f64;
    let mut compulsory = 0.0;
    let mut redundant = 0.0;
    let mut local_fill = 0.0;
    let mut local_traffic = 0.0;
    let (tw, th) = geom.tile();
    let groups = geom.groups() as f64;
    for inp in &rule.inputs {
        let (in_w, in_h) = geom.in_dims[inp.index];
        let rpo = inp.access.reads_per_output(in_w, in_h);
        if local_memory {
            match inp.access.bounding_box() {
                Some((bw, bh)) if bw * bh > 1 => {
                    // Cooperative load: each group stages its output tile
                    // plus halo, once.
                    let tile_in = ((tw + bw - 1) * (th + bh - 1)) as f64;
                    local_fill += groups * tile_in * 8.0;
                    local_traffic += items * rpo * 8.0;
                }
                _ => {
                    if matches!(inp.access, AccessPattern::All) {
                        // Broadcast input staged wholesale per group.
                        local_fill += groups * (in_w * in_h) as f64 * 8.0;
                        local_traffic += items * rpo * 8.0;
                    } else {
                        compulsory += items * 8.0;
                        redundant += items * redundant_reads(inp.access, rpo) * 8.0;
                    }
                }
            }
        } else {
            compulsory += items * 8.0;
            redundant += items * redundant_reads(inp.access, rpo) * 8.0;
        }
    }
    KernelWork {
        work_items: items,
        flops_per_item: rule.flops_per_output,
        global_read_bytes: compulsory,
        redundant_read_bytes: redundant,
        global_write_bytes: items * 8.0,
        local_fill_bytes: local_fill,
        local_traffic_bytes: local_traffic,
        groups,
        local_size: geom.local_size,
        uses_local_memory: local_memory,
        vector_efficiency: vector_efficiency(rule),
    }
}

/// CPU-backend cost of computing rows `[row0, row1)` of the output on one
/// worker: scalar flops plus compulsory memory traffic (hardware caches
/// absorb most stencil reuse on the CPU).
#[must_use]
pub fn cpu_work(rule: &StencilRule, geom: &Geometry, rows: usize) -> CpuWork {
    let items = (geom.out_w * rows) as f64;
    let mut bytes = items * 8.0; // output writes
    for inp in &rule.inputs {
        let (in_w, in_h) = geom.in_dims[inp.index];
        let rpo = inp.access.reads_per_output(in_w, in_h);
        bytes += items * 8.0 * (1.0 + 0.05 * (rpo - 1.0).max(0.0));
    }
    CpuWork::new(items * rule.flops_per_output, bytes)
}

// ---------------------------------------------------------------------------
// Source generation
// ---------------------------------------------------------------------------

/// Generate the OpenCL C source for `rule`.
///
/// The `local_memory` variant prefixes the body with a cooperative load of
/// each bounded input's tile (plus halo) into `__local` storage, separated
/// from the compute phase by `barrier(CLK_LOCAL_MEM_FENCE)`, and rebinds the
/// `INk` macros to the staged tiles.
#[must_use]
pub fn generate_source(rule: &StencilRule, local_memory: bool) -> String {
    let mut buffers: Vec<(String, String)> = rule
        .inputs
        .iter()
        .map(|i| ("__global const double*".to_owned(), format!("in{}", i.index)))
        .collect();
    buffers.push(("__global double*".to_owned(), "out".to_owned()));
    let buf_refs: Vec<(&str, &str)> =
        buffers.iter().map(|(q, n)| (q.as_str(), n.as_str())).collect();
    let mut scalars: Vec<(String, String)> = vec![
        ("int".into(), "out_w".into()),
        ("int".into(), "out_h".into()),
        ("int".into(), "row0".into()),
        ("int".into(), "row1".into()),
    ];
    for i in &rule.inputs {
        scalars.push(("int".into(), format!("in{}_w", i.index)));
        scalars.push(("int".into(), format!("in{}_h", i.index)));
    }
    scalars.push(("int".into(), "n_user_scalars".into()));
    scalars.push(("__global const double*".into(), "user_scalars".into()));
    let scalar_refs: Vec<(&str, &str)> =
        scalars.iter().map(|(t, n)| (t.as_str(), n.as_str())).collect();

    let suffix = if local_memory { "_localmem" } else { "" };
    let name = format!("{}{}", rule.name, suffix);
    let mut b = SourceBuilder::new();
    b.line("// Generated by petal-core; do not edit.");
    b.line("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
    if local_memory {
        // Conservative static scratchpad bound: the widest tile the runtime
        // ever launches (16x64 work-items) plus this rule's halo.
        for i in &rule.inputs {
            if stage_in_local(i.access) {
                let (bw, bh) = i.access.bounding_box().unwrap_or((64, 64));
                b.line(&format!(
                    "#define PETAL_TILE{}_ELEMS ({})",
                    i.index,
                    (16 + bw - 1) * (64 + bh - 1)
                ));
            }
        }
    }
    for i in &rule.inputs {
        let k = i.index;
        if local_memory && stage_in_local(i.access) {
            b.line(&format!(
                "#define IN{k}(x, y) tile{k}[((y) - tile{k}_y0) * tile{k}_w + ((x) - tile{k}_x0)]"
            ));
        } else {
            b.line(&format!("#define IN{k}(x, y) in{k}[(y) * in{k}_w + (x)]"));
        }
    }
    b.blank();
    b.open(&kernel_signature(&name, &buf_refs, &scalar_refs));
    b.line("int x = get_global_id(0);");
    b.line("int y = get_global_id(1) + row0;");
    if local_memory {
        emit_cooperative_loads(&mut b, rule);
    }
    b.line("if (x >= out_w || y >= row1) return;");
    b.line("double result = 0.0;");
    b.open("");
    for line in rule.body_c.lines() {
        b.line(line.trim_end());
    }
    b.close();
    b.line("out[y * out_w + x] = result;");
    b.close();
    b.build()
}

fn stage_in_local(access: AccessPattern) -> bool {
    match access.bounding_box() {
        Some((w, h)) => w * h > 1,
        None => matches!(access, AccessPattern::All),
    }
}

fn emit_cooperative_loads(b: &mut SourceBuilder, rule: &StencilRule) {
    b.line("// --- cooperative load phase (generated) ---");
    for i in &rule.inputs {
        if !stage_in_local(i.access) {
            continue;
        }
        let k = i.index;
        match i.access {
            AccessPattern::All => {
                b.line(&format!("__local double tile{k}[PETAL_TILE{k}_ELEMS];"));
                b.line(&format!("const int tile{k}_x0 = 0, tile{k}_y0 = 0;"));
                b.line(&format!("const int tile{k}_w = in{k}_w;"));
                b.open(&format!(
                    "for (int i = get_local_id(1) * get_local_size(0) + get_local_id(0); \
                     i < in{k}_w * in{k}_h; i += get_local_size(0) * get_local_size(1))"
                ));
                b.line(&format!("tile{k}[i] = in{k}[i];"));
                b.close();
            }
            _ => {
                let (bw, bh) = i.access.bounding_box().expect("staged inputs have a box");
                b.line(&format!("__local double tile{k}[PETAL_TILE{k}_ELEMS];"));
                b.line(&format!("const int tile{k}_x0 = get_group_id(0) * get_local_size(0);"));
                b.line(&format!(
                    "const int tile{k}_y0 = get_group_id(1) * get_local_size(1) + row0;"
                ));
                b.line(&format!("const int tile{k}_w = get_local_size(0) + {};", bw - 1));
                b.line(&format!("const int tile{k}_h = get_local_size(1) + {};", bh - 1));
                b.open(&format!(
                    "for (int i = get_local_id(1) * get_local_size(0) + get_local_id(0); \
                     i < tile{k}_w * tile{k}_h; i += get_local_size(0) * get_local_size(1))"
                ));
                b.line(&format!("int gx = tile{k}_x0 + i % tile{k}_w;"));
                b.line(&format!("int gy = tile{k}_y0 + i / tile{k}_w;"));
                b.line(&format!(
                    "tile{k}[i] = (gx < in{k}_w && gy < in{k}_h) ? in{k}[gy * in{k}_w + gx] : 0.0;"
                ));
                b.close();
            }
        }
    }
    b.line("barrier(CLK_LOCAL_MEM_FENCE);");
    b.line("// --- compute phase ---");
}

// ---------------------------------------------------------------------------
// Functional execution
// ---------------------------------------------------------------------------

/// Raw borrowed input: `(row-major data, cols, rows)`.
pub type RawInput<'a> = (&'a [f64], usize, usize);

/// Execute the plain (global-memory) variant on host slices: compute output
/// rows `[row0, row1)`.
///
/// # Panics
/// Panics if the output slice does not cover the full matrix or a body read
/// escapes its input.
pub fn run_global(
    rule: &StencilRule,
    inputs: &[RawInput<'_>],
    scalars: &[f64],
    out: &mut [f64],
    geom: &Geometry,
) {
    assert_eq!(out.len(), geom.out_w * geom.out_h, "output slice covers the whole matrix");
    let views: Vec<View<'_>> = rule
        .inputs
        .iter()
        .map(|i| {
            let (data, cols, rows) = inputs[i.index];
            View::Full { data, cols, rows }
        })
        .collect();
    let env = StencilEnv { inputs: &views, scalars };
    for y in geom.row0..geom.row1 {
        for x in 0..geom.out_w {
            out[y * geom.out_w + x] = (rule.elem)(&env, x, y);
        }
    }
}

/// Execute the local-memory variant on host slices: iterate work-groups,
/// stage each bounded input's tile (plus halo) and every broadcast input,
/// then compute from the staged views only.
///
/// # Panics
/// Panics if a body read escapes the staged tile — the executable
/// equivalent of writing past the cooperative load in real OpenCL.
pub fn run_tiled(
    rule: &StencilRule,
    inputs: &[RawInput<'_>],
    scalars: &[f64],
    out: &mut [f64],
    geom: &Geometry,
) {
    assert_eq!(out.len(), geom.out_w * geom.out_h, "output slice covers the whole matrix");
    let (tw, th) = geom.tile();
    let mut ty = geom.row0;
    while ty < geom.row1 {
        let mut tx = 0;
        while tx < geom.out_w {
            let tile_w_out = tw.min(geom.out_w - tx);
            let tile_h_out = th.min(geom.row1 - ty);
            // Cooperative load phase: build tile views.
            let views: Vec<View<'_>> = rule
                .inputs
                .iter()
                .map(|i| {
                    let (data, cols, rows) = inputs[i.index];
                    if !stage_in_local(i.access) {
                        return View::Full { data, cols, rows };
                    }
                    let (x0, y0, tcols, trows) = match i.access {
                        AccessPattern::All => (0, 0, cols, rows),
                        _ => {
                            let (bw, bh) = i.access.bounding_box().expect("staged => bounded");
                            (
                                tx.min(cols.saturating_sub(1)),
                                ty.min(rows.saturating_sub(1)),
                                (tile_w_out + bw - 1).min(cols - tx.min(cols - 1)),
                                (tile_h_out + bh - 1).min(rows - ty.min(rows - 1)),
                            )
                        }
                    };
                    let mut staged = vec![0.0; tcols * trows];
                    for r in 0..trows {
                        let src = (y0 + r) * cols + x0;
                        staged[r * tcols..(r + 1) * tcols].copy_from_slice(&data[src..src + tcols]);
                    }
                    View::Tile { data: staged, x0, y0, cols: tcols, rows: trows }
                })
                .collect();
            // Compute phase, reading only staged data.
            let env = StencilEnv { inputs: &views, scalars };
            for dy in 0..tile_h_out {
                for dx in 0..tile_w_out {
                    let (x, y) = (tx + dx, ty + dy);
                    out[y * geom.out_w + x] = (rule.elem)(&env, x, y);
                }
            }
            tx += tw;
        }
        ty += th;
    }
}

/// Encode a launch geometry plus user scalars into the flat scalar vector
/// carried by [`KernelLaunch`].
#[must_use]
pub fn encode_scalars(geom: &Geometry, user: &[f64]) -> Vec<f64> {
    let mut v = vec![
        geom.out_w as f64,
        geom.out_h as f64,
        geom.row0 as f64,
        geom.row1 as f64,
        geom.local_size as f64,
        geom.in_dims.len() as f64,
    ];
    for &(w, h) in &geom.in_dims {
        v.push(w as f64);
        v.push(h as f64);
    }
    v.extend_from_slice(user);
    v
}

/// Decode [`encode_scalars`] output back into a geometry and user scalars.
///
/// # Panics
/// Panics on malformed encodings (an internal invariant).
#[must_use]
pub fn decode_scalars(scalars: &[f64]) -> (Geometry, Vec<f64>) {
    let n_inputs = scalars[5] as usize;
    let mut in_dims = Vec::with_capacity(n_inputs);
    for i in 0..n_inputs {
        in_dims.push((scalars[6 + 2 * i] as usize, scalars[7 + 2 * i] as usize));
    }
    let geom = Geometry {
        out_w: scalars[0] as usize,
        out_h: scalars[1] as usize,
        row0: scalars[2] as usize,
        row1: scalars[3] as usize,
        in_dims,
        local_size: scalars[4] as usize,
    };
    let user = scalars[6 + 2 * n_inputs..].to_vec();
    (geom, user)
}

/// Wrap a rule as a device [`KernelBody`]. Buffer convention: one buffer
/// per input in declaration order, then the output buffer **sized to the
/// launch's `[row0, row1)` row range**.
#[must_use]
pub fn make_kernel_body(rule: Arc<StencilRule>, local_memory: bool) -> Arc<dyn KernelBody> {
    Arc::new(move |bufs: &mut BufferTable, launch: &KernelLaunch| -> Result<(), GpuError> {
        let (geom, user) = decode_scalars(&launch.scalars);
        let n = rule.inputs.len();
        // Copy inputs out of the table (kernels read all inputs, write out).
        let mut staged: Vec<(Vec<f64>, usize, usize)> = Vec::with_capacity(n);
        for (k, &(w, h)) in geom.in_dims.iter().enumerate() {
            let data = bufs.get(launch.buffers[k])?.data().to_vec();
            if data.len() != w * h {
                return Err(GpuError::SizeMismatch { expected: w * h, actual: data.len() });
            }
            staged.push((data, w, h));
        }
        let inputs: Vec<RawInput<'_>> =
            staged.iter().map(|(d, w, h)| (d.as_slice(), *w, *h)).collect();
        // Compute into a full-size scratch output, then copy the launch's
        // row range into the (range-sized) output buffer.
        let mut full = vec![0.0; geom.out_w * geom.out_h];
        if local_memory {
            run_tiled(&rule, &inputs, &user, &mut full, &geom);
        } else {
            run_global(&rule, &inputs, &user, &mut full, &geom);
        }
        // The output buffer follows the *matrix* arguments (a rule may
        // declare several reads of the same matrix).
        let out_buf = bufs.get_mut(launch.buffers[geom.in_dims.len()])?;
        let want = geom.out_w * (geom.row1 - geom.row0);
        if out_buf.len() != want {
            return Err(GpuError::SizeMismatch { expected: want, actual: out_buf.len() });
        }
        out_buf.data_mut().copy_from_slice(&full[geom.row0 * geom.out_w..geom.row1 * geom.out_w]);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::StencilInput;

    /// 1D horizontal box blur of width `k` (scalar 0), kernel-free.
    fn blur_rule(k: usize) -> StencilRule {
        StencilRule {
            name: "blur_rows".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Stencil { w: k, h: 1 } }],
            flops_per_output: 2.0 * k as f64,
            body_c: "int k = (int)user_scalars[0];\nfor (int i = 0; i < k; i++) result += IN0(x + i, y);".into(),
            elem: Arc::new(|env, x, y| {
                let k = env.scalars[0] as usize;
                (0..k).map(|i| env.inputs[0].at(x + i, y)).sum()
            }),
            native_only_body: false,
        }
    }

    fn geom(out_w: usize, out_h: usize, in_w: usize, in_h: usize, ls: usize) -> Geometry {
        Geometry { out_w, out_h, row0: 0, row1: out_h, in_dims: vec![(in_w, in_h)], local_size: ls }
    }

    #[test]
    fn global_and_tiled_execution_agree() {
        let rule = blur_rule(3);
        let in_w = 10;
        let in_h = 6;
        let input: Vec<f64> = (0..in_w * in_h).map(|i| i as f64).collect();
        let g = geom(in_w - 2, in_h, in_w, in_h, 32);
        let mut a = vec![0.0; g.out_w * g.out_h];
        let mut b = vec![0.0; g.out_w * g.out_h];
        run_global(&rule, &[(&input, in_w, in_h)], &[3.0], &mut a, &g);
        run_tiled(&rule, &[(&input, in_w, in_h)], &[3.0], &mut b, &g);
        assert_eq!(a, b, "scratchpad staging must not change results");
        // Spot check: out[0,0] = in[0]+in[1]+in[2].
        assert_eq!(a[0], 0.0 + 1.0 + 2.0);
    }

    #[test]
    fn row_range_restricts_computation() {
        let rule = blur_rule(3);
        let in_w = 8;
        let in_h = 4;
        let input = vec![1.0; in_w * in_h];
        let mut g = geom(in_w - 2, in_h, in_w, in_h, 16);
        g.row0 = 1;
        g.row1 = 3;
        let mut out = vec![0.0; g.out_w * g.out_h];
        run_global(&rule, &[(&input, in_w, in_h)], &[3.0], &mut out, &g);
        assert_eq!(out[0], 0.0, "row 0 untouched");
        assert_eq!(out[g.out_w], 3.0, "row 1 computed");
        assert_eq!(out[3 * g.out_w], 0.0, "row 3 untouched");
    }

    #[test]
    fn generated_source_has_expected_structure() {
        let rule = blur_rule(5);
        let plain = generate_source(&rule, false);
        assert!(plain.contains("__kernel void blur_rows("));
        assert!(plain.contains("#define IN0(x, y) in0[(y) * in0_w + (x)]"));
        assert!(!plain.contains("__local"), "plain variant has no scratchpad");
        let local = generate_source(&rule, true);
        assert!(local.contains("__kernel void blur_rows_localmem("));
        assert!(local.contains("__local double tile0["));
        assert!(local.contains("barrier(CLK_LOCAL_MEM_FENCE);"));
        assert!(local.contains("#define IN0(x, y) tile0["));
        assert_ne!(plain, local);
    }

    #[test]
    fn work_descriptor_moves_reuse_traffic_to_local() {
        let rule = blur_rule(9);
        let g = geom(100, 100, 108, 100, 64);
        let plain = kernel_work(&rule, &g, false);
        let local = kernel_work(&rule, &g, true);
        assert!(plain.redundant_read_bytes > 0.0);
        assert_eq!(local.redundant_read_bytes, 0.0);
        assert!(local.local_traffic_bytes > 0.0);
        assert!(local.local_fill_bytes > 0.0);
        assert!(local.uses_local_memory);
        assert_eq!(plain.work_items, 10_000.0);
        // Staged fill is far below the naive reuse traffic.
        assert!(local.local_fill_bytes < plain.redundant_read_bytes);
    }

    #[test]
    fn scalar_encoding_roundtrip() {
        let g = Geometry {
            out_w: 33,
            out_h: 17,
            row0: 2,
            row1: 9,
            in_dims: vec![(40, 17), (5, 1)],
            local_size: 128,
        };
        let enc = encode_scalars(&g, &[7.5, -1.0]);
        let (back, user) = decode_scalars(&enc);
        assert_eq!(back, g);
        assert_eq!(user, vec![7.5, -1.0]);
    }

    #[test]
    fn kernel_body_executes_against_buffers() {
        let rule = Arc::new(blur_rule(3));
        let body = make_kernel_body(Arc::clone(&rule), false);
        let mut bufs = BufferTable::new();
        let in_w = 6;
        let in_h = 2;
        let input: Vec<f64> = (0..in_w * in_h).map(|i| i as f64).collect();
        let in_id = bufs.alloc(in_w * in_h);
        bufs.write(in_id, &input).unwrap();
        let g = geom(in_w - 2, in_h, in_w, in_h, 8);
        let out_id = bufs.alloc(g.out_w * g.out_h);
        let launch = KernelLaunch {
            kernel: petal_gpu::compile::KernelHandle::from_raw(0),
            buffers: vec![in_id, out_id],
            scalars: encode_scalars(&g, &[3.0]),
            work: kernel_work(&rule, &g, false),
        };
        body.execute(&mut bufs, &launch).unwrap();
        let out = bufs.get(out_id).unwrap().data().to_vec();
        assert_eq!(out[0], 3.0); // 0+1+2
        assert_eq!(out[g.out_w], 21.0); // 6+7+8
    }

    #[test]
    fn tile_geometry_prefers_16_wide_rows() {
        let g = geom(100, 50, 100, 50, 128);
        assert_eq!(g.tile(), (16, 8));
        let g = geom(100, 50, 100, 50, 7);
        assert_eq!(g.tile(), (7, 1));
        let g = geom(100, 50, 100, 50, 128);
        assert_eq!(g.groups(), 7 * 7);
    }
}

//! Data-parallel rules and the static analyses that map them to OpenCL.
//!
//! A [`StencilRule`] is the paper's elementwise rule (`Out.cell(x,y) from
//! (In.region(...))`): for every output cell it reads declared regions of
//! its inputs and computes one value. The declared [`AccessPattern`] drives
//! the three compiler phases of §3.1:
//!
//! 1. **dependency analysis** — [`opencl_mappability`]: sequential and
//!    data-parallel patterns map to OpenCL kernels; wavefront and
//!    loop-carried patterns are rejected (as in the paper's implementation);
//! 2. **code conversion** — `petal_core::codegen` turns accepted rules into
//!    kernel source + functional bodies;
//! 3. **local-memory synthesis** — [`local_memory_applicable`]: when the
//!    bounding box is a constant region larger than one cell, a scratchpad
//!    variant with a cooperative load phase is generated as an additional
//!    choice.

use std::fmt;
use std::sync::Arc;

/// How a rule's output cell depends on an input matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// `out[y][x]` reads `in[y][x]` only (bounding box 1×1).
    Point,
    /// `out[y][x]` reads the `w × h` box anchored at `(x, y)`
    /// (e.g. convolution; bounding box constant and > 1).
    Stencil {
        /// Box width (columns).
        w: usize,
        /// Box height (rows).
        h: usize,
    },
    /// `out[y][x]` reads all of row `y` (e.g. the A operand of matmul).
    Row,
    /// `out[y][x]` reads all of column `x` (e.g. the B operand of matmul).
    Column,
    /// Arbitrary affine gathers (e.g. the XOR-partner reads of bitonic
    /// sort). Mappable to OpenCL, but no local-memory variant.
    Gather,
    /// Every output cell reads the whole (small) input — broadcast data
    /// such as convolution coefficients. Staged wholesale into local memory
    /// when another input triggers the scratchpad variant.
    All,
    /// Whole-input access with a loop-carried dependency (e.g. a forward
    /// sweep). Not data parallel.
    Sequential,
    /// Diagonal wavefront dependencies — "more complex parallel patterns,
    /// such as wavefront parallelism, can not be \[mapped\] in our current
    /// implementation" (§3.1).
    Wavefront,
}

impl AccessPattern {
    /// Input elements read per output cell, given the input width `in_w`
    /// and height `in_h` (for whole-row/column patterns).
    #[must_use]
    pub fn reads_per_output(&self, in_w: usize, in_h: usize) -> f64 {
        match self {
            AccessPattern::Point => 1.0,
            AccessPattern::Stencil { w, h } => (w * h) as f64,
            AccessPattern::Row => in_w as f64,
            AccessPattern::Column => in_h as f64,
            AccessPattern::Gather => 2.0,
            AccessPattern::All => (in_w * in_h) as f64,
            AccessPattern::Sequential | AccessPattern::Wavefront => (in_w * in_h) as f64,
        }
    }

    /// The constant bounding box `(w, h)` of this access, when one exists.
    #[must_use]
    pub fn bounding_box(&self) -> Option<(usize, usize)> {
        match self {
            AccessPattern::Point => Some((1, 1)),
            AccessPattern::Stencil { w, h } => Some((*w, *h)),
            _ => None,
        }
    }
}

/// Why a rule cannot be converted to an OpenCL kernel (phase 1/2 rejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenClReject {
    /// The dependency analysis found a loop-carried (sequential-within-rule)
    /// dependency.
    SequentialDependency,
    /// Wavefront parallelism is not supported by the current conversion.
    WavefrontDependency,
    /// The rule body contains constructs with no OpenCL equivalent (inline
    /// native code, external library calls — §3.1 phase 2).
    NativeConstruct,
}

impl fmt::Display for OpenClReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenClReject::SequentialDependency => write!(f, "loop-carried dependency"),
            OpenClReject::WavefrontDependency => write!(f, "wavefront parallelism unsupported"),
            OpenClReject::NativeConstruct => write!(f, "body contains native-only constructs"),
        }
    }
}

/// Phase-1 dependency analysis: can this rule's iteration pattern execute
/// under the OpenCL model?
///
/// # Errors
/// The reason for rejection, mirroring §3.1.
pub fn opencl_mappability(inputs: &[StencilInput]) -> Result<(), OpenClReject> {
    for i in inputs {
        match i.access {
            AccessPattern::Sequential => return Err(OpenClReject::SequentialDependency),
            AccessPattern::Wavefront => return Err(OpenClReject::WavefrontDependency),
            _ => {}
        }
    }
    Ok(())
}

/// Phase-3 analysis: a local-memory (scratchpad) variant exists exactly when
/// some input's bounding box is a constant region larger than one cell —
/// "if the size of the bounding box is one, there is no need to copy the
/// data into local memory" (§3.1).
#[must_use]
pub fn local_memory_applicable(inputs: &[StencilInput]) -> bool {
    inputs.iter().any(|i| match i.access.bounding_box() {
        Some((w, h)) => w * h > 1,
        None => false,
    })
}

/// One declared input of a stencil rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilInput {
    /// Position in the invocation's input-matrix list.
    pub index: usize,
    /// Declared access pattern.
    pub access: AccessPattern,
}

/// Read-only view over an input during functional kernel execution.
///
/// A `Full` view exposes the entire matrix; a `Tile` view exposes only the
/// staged scratchpad region and *panics on out-of-tile access* — which makes
/// the generated cooperative-load bounds an executable assertion.
#[derive(Debug)]
pub enum View<'a> {
    /// Whole-matrix access (global-memory variant).
    Full {
        /// Row-major data.
        data: &'a [f64],
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
    },
    /// Scratchpad tile staged by the cooperative load phase.
    Tile {
        /// Tile contents (row-major, tile-local).
        data: Vec<f64>,
        /// Global column of tile element (0,0).
        x0: usize,
        /// Global row of tile element (0,0).
        y0: usize,
        /// Tile columns.
        cols: usize,
        /// Tile rows.
        rows: usize,
    },
}

impl View<'_> {
    /// Read the element at *global* coordinates `(x, y)`.
    ///
    /// # Panics
    /// Panics when the coordinate lies outside the view — for tiles this
    /// means the rule body read outside its declared bounding box.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> f64 {
        match self {
            View::Full { data, cols, rows } => {
                assert!(x < *cols && y < *rows, "read ({x},{y}) outside {cols}x{rows} input");
                data[y * cols + x]
            }
            View::Tile { data, x0, y0, cols, rows } => {
                assert!(
                    x >= *x0 && y >= *y0 && x - x0 < *cols && y - y0 < *rows,
                    "read ({x},{y}) outside staged tile [{x0}..{},{y0}..{}) — \
                     rule body violates its declared bounding box",
                    x0 + cols,
                    y0 + rows
                );
                data[(y - y0) * cols + (x - x0)]
            }
        }
    }

    /// Width of the underlying *global* input (for Row/Column loops).
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            View::Full { cols, .. } | View::Tile { cols, .. } => *cols,
        }
    }

    /// Height of the underlying *global* input.
    #[must_use]
    pub fn height(&self) -> usize {
        match self {
            View::Full { rows, .. } | View::Tile { rows, .. } => *rows,
        }
    }
}

/// Environment handed to a rule body for one output cell.
#[derive(Debug)]
pub struct StencilEnv<'a> {
    /// One view per declared input, in declaration order.
    pub inputs: &'a [View<'a>],
    /// Scalar parameters (kernel widths, sizes, constants).
    pub scalars: &'a [f64],
}

/// Rule body: computes the value of output cell `(x, y)`.
pub type ElemFn = Arc<dyn Fn(&StencilEnv<'_>, usize, usize) -> f64 + Send + Sync>;

/// A data-parallel rule (the paper's elementwise `Rule`).
#[derive(Clone)]
pub struct StencilRule {
    /// Rule name (becomes the kernel entry point).
    pub name: String,
    /// Declared inputs with access patterns.
    pub inputs: Vec<StencilInput>,
    /// Arithmetic per output cell, for the cost model.
    pub flops_per_output: f64,
    /// The C body emitted into generated OpenCL source. Written against the
    /// `INk(x, y)` macros and assigning `result` (see `codegen`).
    pub body_c: String,
    /// Functional implementation, semantically identical to `body_c`.
    pub elem: ElemFn,
    /// True when the body contains constructs OpenCL cannot express
    /// (phase-2 rejection even if the pattern is data parallel).
    pub native_only_body: bool,
}

impl fmt::Debug for StencilRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StencilRule")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("flops_per_output", &self.flops_per_output)
            .field("native_only_body", &self.native_only_body)
            .finish_non_exhaustive()
    }
}

impl StencilRule {
    /// Full mappability verdict (phases 1 and 2 of §3.1).
    ///
    /// # Errors
    /// The first rejection encountered.
    pub fn opencl_verdict(&self) -> Result<(), OpenClReject> {
        opencl_mappability(&self.inputs)?;
        if self.native_only_body {
            return Err(OpenClReject::NativeConstruct);
        }
        Ok(())
    }

    /// Whether the scratchpad variant can be synthesized (phase 3).
    #[must_use]
    pub fn has_local_memory_variant(&self) -> bool {
        self.opencl_verdict().is_ok() && local_memory_applicable(&self.inputs)
    }

    /// Union bounding box over all inputs that have one, `(w, h)`.
    #[must_use]
    pub fn union_bounding_box(&self) -> (usize, usize) {
        let mut bw = 1;
        let mut bh = 1;
        for i in &self.inputs {
            if let Some((w, h)) = i.access.bounding_box() {
                bw = bw.max(w);
                bh = bh.max(h);
            }
        }
        (bw, bh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(patterns: &[AccessPattern], native: bool) -> StencilRule {
        StencilRule {
            name: "t".into(),
            inputs: patterns
                .iter()
                .enumerate()
                .map(|(i, &access)| StencilInput { index: i, access })
                .collect(),
            flops_per_output: 1.0,
            body_c: "result = 0.0;".into(),
            elem: Arc::new(|_, _, _| 0.0),
            native_only_body: native,
        }
    }

    #[test]
    fn data_parallel_patterns_map_to_opencl() {
        for p in [
            AccessPattern::Point,
            AccessPattern::Stencil { w: 5, h: 5 },
            AccessPattern::Row,
            AccessPattern::Column,
            AccessPattern::Gather,
        ] {
            assert!(rule(&[p], false).opencl_verdict().is_ok(), "{p:?}");
        }
    }

    #[test]
    fn sequential_and_wavefront_are_rejected() {
        assert_eq!(
            rule(&[AccessPattern::Sequential], false).opencl_verdict(),
            Err(OpenClReject::SequentialDependency)
        );
        assert_eq!(
            rule(&[AccessPattern::Wavefront], false).opencl_verdict(),
            Err(OpenClReject::WavefrontDependency)
        );
    }

    #[test]
    fn native_bodies_are_rejected_in_phase_two() {
        assert_eq!(
            rule(&[AccessPattern::Point], true).opencl_verdict(),
            Err(OpenClReject::NativeConstruct)
        );
    }

    #[test]
    fn local_memory_needs_bounding_box_greater_than_one() {
        assert!(!rule(&[AccessPattern::Point], false).has_local_memory_variant());
        assert!(rule(&[AccessPattern::Stencil { w: 3, h: 1 }], false).has_local_memory_variant());
        assert!(!rule(&[AccessPattern::Row], false).has_local_memory_variant());
        assert!(!rule(&[AccessPattern::Gather], false).has_local_memory_variant());
        // A 1x1 "stencil" is a point: no staging either.
        assert!(!rule(&[AccessPattern::Stencil { w: 1, h: 1 }], false).has_local_memory_variant());
    }

    #[test]
    fn union_bounding_box_covers_all_inputs() {
        let r = rule(
            &[AccessPattern::Stencil { w: 3, h: 1 }, AccessPattern::Stencil { w: 1, h: 7 }],
            false,
        );
        assert_eq!(r.union_bounding_box(), (3, 7));
    }

    #[test]
    fn reads_per_output_by_pattern() {
        assert_eq!(AccessPattern::Point.reads_per_output(10, 10), 1.0);
        assert_eq!(AccessPattern::Stencil { w: 3, h: 3 }.reads_per_output(10, 10), 9.0);
        assert_eq!(AccessPattern::Row.reads_per_output(10, 20), 10.0);
        assert_eq!(AccessPattern::Column.reads_per_output(10, 20), 20.0);
    }

    #[test]
    fn tile_view_panics_outside_bounding_box() {
        let v = View::Tile { data: vec![0.0; 4], x0: 2, y0: 2, cols: 2, rows: 2 };
        assert_eq!(v.at(3, 3), 0.0);
        let r = std::panic::catch_unwind(|| v.at(0, 0));
        assert!(r.is_err(), "out-of-tile read must panic");
    }

    #[test]
    fn full_view_indexing() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = View::Full { data: &data, cols: 3, rows: 2 };
        assert_eq!(v.at(2, 1), 6.0);
        assert_eq!(v.width(), 3);
        assert_eq!(v.height(), 2);
    }
}

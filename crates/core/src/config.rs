//! Choice configurations: selectors and tunables (§5.1, §5.3).
//!
//! A [`Config`] is the product of autotuning — the paper's *choice
//! configuration file*. It contains:
//!
//! * **Selectors** — per call-site algorithm choices as a piecewise-constant
//!   function of input size: cutoffs `C = [c₁ … c_{m−1}]` and algorithms
//!   `A = [α₁ … α_m]`, with `SELECT(input, s) = αᵢ` such that
//!   `cᵢ > size(input) ≥ cᵢ₋₁` (c₀ = 0, c_m = ∞). Poly-algorithms arise
//!   from selectors consulted at recursive call sites.
//! * **Tunables** — bounded integers: OpenCL local work sizes, GPU/CPU work
//!   ratios in 1/8 steps, sequential/parallel cutoffs, split sizes.
//!
//! Configs round-trip through a small text format (`Display`/`FromStr`), the
//! stand-in for the on-disk configuration file.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Maximum selector levels — "every transform provides 12 levels of
/// algorithmic choices for 12 different ranges of input sizes" (§5.3).
pub const MAX_SELECTOR_LEVELS: usize = 12;

/// GPU/CPU workload ratios move in increments of 1/8 (§4.3, §5.3).
pub const RATIO_DENOMINATOR: i64 = 8;

/// A piecewise-constant algorithm selector over input sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Strictly increasing input-size cutoffs (`m−1` entries).
    cutoffs: Vec<u64>,
    /// Algorithm index per interval (`m` entries).
    algs: Vec<usize>,
    /// Number of algorithms choosable at this site.
    num_algs: usize,
}

impl Selector {
    /// A selector that always picks `alg` out of `num_algs` choices.
    ///
    /// # Panics
    /// Panics if `alg >= num_algs` or `num_algs == 0`.
    #[must_use]
    pub fn constant(alg: usize, num_algs: usize) -> Self {
        assert!(num_algs > 0 && alg < num_algs, "algorithm index out of range");
        Selector { cutoffs: Vec::new(), algs: vec![alg], num_algs }
    }

    /// A multi-level selector.
    ///
    /// # Panics
    /// Panics unless `algs.len() == cutoffs.len() + 1`, cutoffs strictly
    /// increase, every algorithm index is `< num_algs`, and the level count
    /// does not exceed [`MAX_SELECTOR_LEVELS`].
    #[must_use]
    pub fn new(cutoffs: Vec<u64>, algs: Vec<usize>, num_algs: usize) -> Self {
        assert_eq!(algs.len(), cutoffs.len() + 1, "need one algorithm per interval");
        assert!(algs.len() <= MAX_SELECTOR_LEVELS, "too many selector levels");
        assert!(cutoffs.windows(2).all(|w| w[0] < w[1]), "cutoffs must strictly increase");
        assert!(algs.iter().all(|&a| a < num_algs), "algorithm index out of range");
        Selector { cutoffs, algs, num_algs }
    }

    /// The paper's `SELECT`: the algorithm for `size`.
    #[must_use]
    pub fn select(&self, size: u64) -> usize {
        let idx = self.cutoffs.partition_point(|&c| c <= size);
        self.algs[idx]
    }

    /// Number of algorithms choosable at this site.
    #[must_use]
    pub fn num_algs(&self) -> usize {
        self.num_algs
    }

    /// Levels (intervals) in this selector.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.algs.len()
    }

    /// Cutoffs (shared reference for mutation-by-rebuild in the tuner).
    #[must_use]
    pub fn cutoffs(&self) -> &[u64] {
        &self.cutoffs
    }

    /// Per-interval algorithms.
    #[must_use]
    pub fn algs(&self) -> &[usize] {
        &self.algs
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // "alg0" or "alg0 <c1 alg1 <c2 alg2"
        write!(f, "{}", self.algs[0])?;
        for (c, a) in self.cutoffs.iter().zip(&self.algs[1..]) {
            write!(f, " <{c} {a}")?;
        }
        write!(f, " of {}", self.num_algs)
    }
}

/// A bounded integer tunable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tunable {
    /// Current value, in `[min, max]`.
    pub value: i64,
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
}

impl Tunable {
    /// New tunable clamped into range.
    ///
    /// # Panics
    /// Panics when `min > max`.
    #[must_use]
    pub fn new(value: i64, min: i64, max: i64) -> Self {
        assert!(min <= max, "empty tunable range");
        Tunable { value: value.clamp(min, max), min, max }
    }

    /// Number of representable values.
    #[must_use]
    pub fn cardinality(&self) -> u64 {
        (self.max - self.min + 1) as u64
    }
}

/// A full program configuration: what the autotuner evolves and what the
/// executor consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config {
    selectors: BTreeMap<String, Selector>,
    tunables: BTreeMap<String, Tunable>,
}

impl Config {
    /// Empty configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a selector.
    pub fn set_selector(&mut self, name: &str, s: Selector) {
        self.selectors.insert(name.to_owned(), s);
    }

    /// Install (or replace) a tunable.
    pub fn set_tunable(&mut self, name: &str, t: Tunable) {
        self.tunables.insert(name.to_owned(), t);
    }

    /// Look up a selector.
    #[must_use]
    pub fn selector(&self, name: &str) -> Option<&Selector> {
        self.selectors.get(name)
    }

    /// Look up a tunable.
    #[must_use]
    pub fn tunable(&self, name: &str) -> Option<&Tunable> {
        self.tunables.get(name)
    }

    /// `SELECT` on the named selector; 0 when absent (the first algorithm
    /// is always the safe default).
    #[must_use]
    pub fn select(&self, name: &str, size: u64) -> usize {
        self.selectors.get(name).map_or(0, |s| s.select(size))
    }

    /// Tunable value with a default when absent.
    #[must_use]
    pub fn tunable_or(&self, name: &str, default: i64) -> i64 {
        self.tunables.get(name).map_or(default, |t| t.value)
    }

    /// Iterate selectors (name-sorted; deterministic).
    pub fn selectors(&self) -> impl Iterator<Item = (&str, &Selector)> {
        self.selectors.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate tunables (name-sorted; deterministic).
    pub fn tunables(&self) -> impl Iterator<Item = (&str, &Tunable)> {
        self.tunables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Mutable access for the tuner's mutators.
    pub fn selectors_mut(&mut self) -> &mut BTreeMap<String, Selector> {
        &mut self.selectors
    }

    /// Mutable access for the tuner's mutators.
    pub fn tunables_mut(&mut self) -> &mut BTreeMap<String, Tunable> {
        &mut self.tunables
    }

    /// log₁₀ of the size of the search space this configuration lives in
    /// (the "# Possible Configs" column of Fig. 8). Selectors contribute
    /// `(num_algs · cutoff_granularity)^levels`; tunables their cardinality.
    #[must_use]
    pub fn log10_space_size(&self, max_input_size: u64) -> f64 {
        let mut log10 = 0.0;
        for s in self.selectors.values() {
            let per_level = (s.num_algs() as f64) * (max_input_size.max(2) as f64);
            log10 += (per_level.log10()) * MAX_SELECTOR_LEVELS as f64;
        }
        for t in self.tunables.values() {
            log10 += (t.cardinality() as f64).log10();
        }
        log10
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, s) in &self.selectors {
            writeln!(f, "selector {name} = {s}")?;
        }
        for (name, t) in &self.tunables {
            writeln!(f, "tunable {name} = {} in {}..={}", t.value, t.min, t.max)?;
        }
        Ok(())
    }
}

/// Error parsing a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for Config {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cfg = Config::new();
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| ParseConfigError { line: i + 1, message: message.into() };
            if let Some(rest) = line.strip_prefix("selector ") {
                let (name, spec) = rest.split_once('=').ok_or_else(|| err("missing '='"))?;
                let spec = spec.trim();
                let (body, num) = spec.rsplit_once(" of ").ok_or_else(|| err("missing 'of N'"))?;
                let num_algs: usize = num.trim().parse().map_err(|_| err("bad algorithm count"))?;
                let mut toks = body.split_whitespace();
                let first: usize = toks
                    .next()
                    .ok_or_else(|| err("empty selector"))?
                    .parse()
                    .map_err(|_| err("bad algorithm index"))?;
                let mut cutoffs = Vec::new();
                let mut algs = vec![first];
                while let Some(tok) = toks.next() {
                    let c = tok
                        .strip_prefix('<')
                        .ok_or_else(|| err("expected '<cutoff'"))?
                        .parse()
                        .map_err(|_| err("bad cutoff"))?;
                    let a: usize = toks
                        .next()
                        .ok_or_else(|| err("cutoff without algorithm"))?
                        .parse()
                        .map_err(|_| err("bad algorithm index"))?;
                    cutoffs.push(c);
                    algs.push(a);
                }
                if algs.iter().any(|&a| a >= num_algs) {
                    return Err(err("algorithm index exceeds count"));
                }
                if !cutoffs.windows(2).all(|w| w[0] < w[1]) {
                    return Err(err("cutoffs must strictly increase"));
                }
                cfg.set_selector(name.trim(), Selector::new(cutoffs, algs, num_algs));
            } else if let Some(rest) = line.strip_prefix("tunable ") {
                let (name, spec) = rest.split_once('=').ok_or_else(|| err("missing '='"))?;
                let (val, range) = spec.split_once(" in ").ok_or_else(|| err("missing 'in'"))?;
                let (lo, hi) = range.split_once("..=").ok_or_else(|| err("missing '..='"))?;
                let value: i64 = val.trim().parse().map_err(|_| err("bad value"))?;
                let min: i64 = lo.trim().parse().map_err(|_| err("bad minimum"))?;
                let max: i64 = hi.trim().parse().map_err(|_| err("bad maximum"))?;
                if min > max || value < min || value > max {
                    return Err(err("value outside range"));
                }
                cfg.set_tunable(name.trim(), Tunable::new(value, min, max));
            } else {
                return Err(err("expected 'selector' or 'tunable'"));
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_matches_paper_semantics() {
        // SELECT(input, s) = α_i s.t. c_i > size ≥ c_{i−1}
        let s = Selector::new(vec![100, 10_000], vec![2, 1, 0], 3);
        assert_eq!(s.select(0), 2);
        assert_eq!(s.select(99), 2);
        assert_eq!(s.select(100), 1);
        assert_eq!(s.select(9_999), 1);
        assert_eq!(s.select(10_000), 0);
        assert_eq!(s.select(u64::MAX), 0);
    }

    #[test]
    fn constant_selector() {
        let s = Selector::constant(1, 3);
        assert_eq!(s.select(0), 1);
        assert_eq!(s.select(1 << 40), 1);
        assert_eq!(s.levels(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_cutoffs_panic() {
        let _ = Selector::new(vec![5, 5], vec![0, 1, 2], 3);
    }

    #[test]
    fn config_roundtrips_through_text() {
        let mut cfg = Config::new();
        cfg.set_selector("sort", Selector::new(vec![341, 64_294, 174_762], vec![3, 1, 2, 0], 7));
        cfg.set_selector("convolve", Selector::constant(2, 3));
        cfg.set_tunable("convolve.local_size", Tunable::new(128, 1, 1024));
        cfg.set_tunable("convolve.gpu_ratio", Tunable::new(8, 0, 8));
        let text = cfg.to_string();
        let parsed: Config = text.parse().expect("roundtrip parse");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = "selector s = 0 of 1\nnonsense".parse::<Config>().unwrap_err();
        assert_eq!(err.line, 2);
        let err = "selector s = 5 of 3".parse::<Config>().unwrap_err();
        assert!(err.message.contains("exceeds"));
        let err = "tunable t = 9 in 0..=8".parse::<Config>().unwrap_err();
        assert!(err.message.contains("range"));
    }

    #[test]
    fn defaults_for_missing_entries() {
        let cfg = Config::new();
        assert_eq!(cfg.select("anything", 42), 0);
        assert_eq!(cfg.tunable_or("missing", 7), 7);
    }

    #[test]
    fn space_size_grows_with_choices() {
        let mut small = Config::new();
        small.set_selector("t", Selector::constant(0, 2));
        let mut big = small.clone();
        big.set_tunable("x", Tunable::new(0, 0, 1023));
        let n = 1 << 20;
        assert!(big.log10_space_size(n) > small.log10_space_size(n));
        // A benchmark-sized space should be astronomically large (Fig. 8
        // reports 10^130 .. 10^2435).
        assert!(small.log10_space_size(n) > 50.0);
    }
}

//! Host-side data: the matrix store shared by all tasks of one execution.
//!
//! The [`World`] is the state `S` threaded through the runtime engine. It
//! owns every matrix of a program run, tracks per-matrix *versions* (so the
//! GPU residency table can detect stale copies, §4.3), and holds the
//! **lazy copy-out** table: regions computed on the GPU whose transfer back
//! is deferred until a consumer actually needs them (*may copy-out*, §3.2).

use petal_blas::Matrix;

/// Handle to a matrix inside a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixId(pub(crate) usize);

impl MatrixId {
    /// Raw index, for diagnostics.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A deferred (lazy) copy-out: the functional data is already known, but in
/// virtual time it only becomes available on the host once it is pulled.
#[derive(Debug, Clone)]
pub struct LazyEntry {
    /// The data that will land in the matrix when pulled.
    pub data: Vec<f64>,
    /// Virtual time at which the device-side producer kernel finishes.
    pub ready_at: f64,
    /// Modeled transfer seconds for the pull itself.
    pub pull_secs: f64,
}

/// All host-side matrices of one program execution.
#[derive(Debug, Default)]
pub struct World {
    mats: Vec<Matrix>,
    versions: Vec<u64>,
    lazy: Vec<Option<LazyEntry>>,
    /// Lazy pulls performed (for reports and the movement-analysis tests).
    pub lazy_pulls: usize,
}

impl World {
    /// Empty world.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a matrix and get its handle.
    pub fn alloc(&mut self, m: Matrix) -> MatrixId {
        self.mats.push(m);
        self.versions.push(0);
        self.lazy.push(None);
        MatrixId(self.mats.len() - 1)
    }

    /// Number of matrices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when no matrices exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Read a matrix.
    ///
    /// # Panics
    /// Panics if a lazy copy-out is still pending for it — consumers must
    /// go through [`World::ensure_host`] first (the compiler-inserted check
    /// of §3.2).
    #[must_use]
    pub fn get(&self, id: MatrixId) -> &Matrix {
        assert!(
            self.lazy[id.0].is_none(),
            "matrix {id:?} read while its lazy copy-out is pending; call ensure_host first"
        );
        &self.mats[id.0]
    }

    /// Mutate a matrix; bumps its version so stale GPU copies are detected.
    pub fn get_mut(&mut self, id: MatrixId) -> &mut Matrix {
        self.versions[id.0] += 1;
        self.lazy[id.0] = None; // host write supersedes any pending copy-out
        &mut self.mats[id.0]
    }

    /// Overwrite a matrix wholesale.
    pub fn set(&mut self, id: MatrixId, m: Matrix) {
        self.versions[id.0] += 1;
        self.lazy[id.0] = None;
        self.mats[id.0] = m;
    }

    /// Current version of a matrix (bumped on every host write).
    #[must_use]
    pub fn version(&self, id: MatrixId) -> u64 {
        self.versions[id.0]
    }

    /// Residency key for the GPU buffer table: identifies these exact bytes
    /// (matrix identity + version + row range).
    #[must_use]
    pub fn residency_key(&self, id: MatrixId, row0: usize, row1: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for piece in [id.0 as u64, self.versions[id.0], row0 as u64, row1 as u64] {
            h ^= piece;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// `(cols, rows)` of a matrix — readable even while a lazy copy-out is
    /// pending (dimensions never change under deferral).
    #[must_use]
    pub fn get_dims(&self, id: MatrixId) -> (usize, usize) {
        (self.mats[id.0].cols(), self.mats[id.0].rows())
    }

    /// Move a matrix out for exclusive mutation (tasks run one at a time,
    /// so this never races). Pair with [`World::restore_matrix`].
    #[must_use]
    pub fn take_matrix(&mut self, id: MatrixId) -> Matrix {
        std::mem::replace(&mut self.mats[id.0], Matrix::zeros(0, 0))
    }

    /// Put a matrix taken with [`World::take_matrix`] back, bumping its
    /// version (it was mutated).
    pub fn restore_matrix(&mut self, id: MatrixId, m: Matrix) {
        self.versions[id.0] += 1;
        self.lazy[id.0] = None;
        self.mats[id.0] = m;
    }

    /// Register a deferred copy-out for `id` (the *may copy-out* policy).
    /// The matrix must not be read until the entry is pulled.
    pub fn defer_copy_out(&mut self, id: MatrixId, entry: LazyEntry) {
        self.lazy[id.0] = Some(entry);
    }

    /// True when a lazy copy-out is pending for `id`.
    #[must_use]
    pub fn has_pending_copy_out(&self, id: MatrixId) -> bool {
        self.lazy[id.0].is_some()
    }

    /// The compiler-inserted check before any consumer of a *may copy-out*
    /// region: if the data is still on the GPU, pull it now.
    ///
    /// Returns the virtual seconds the consuming task must additionally
    /// charge (waiting for the producer kernel plus the transfer), or zero
    /// when the data was already on the host.
    pub fn ensure_host(&mut self, id: MatrixId, now: f64) -> f64 {
        match self.lazy[id.0].take() {
            None => 0.0,
            Some(e) => {
                let wait = (e.ready_at - now).max(0.0);
                self.mats[id.0] =
                    Matrix::from_vec(self.mats[id.0].rows(), self.mats[id.0].cols(), e.data);
                self.versions[id.0] += 1;
                self.lazy_pulls += 1;
                wait + e.pull_secs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_set_roundtrip() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(2, 2));
        assert_eq!(w.get(id).rows(), 2);
        w.get_mut(id)[(0, 0)] = 5.0;
        assert_eq!(w.get(id)[(0, 0)], 5.0);
        assert_eq!(w.version(id), 1);
    }

    #[test]
    fn residency_key_changes_with_version_and_range() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(4, 4));
        let k1 = w.residency_key(id, 0, 4);
        assert_eq!(k1, w.residency_key(id, 0, 4), "key is deterministic");
        assert_ne!(k1, w.residency_key(id, 0, 2), "range matters");
        w.get_mut(id)[(0, 0)] = 1.0;
        assert_ne!(k1, w.residency_key(id, 0, 4), "version matters");
    }

    #[test]
    fn lazy_pull_charges_wait_and_transfer() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(1, 2));
        w.defer_copy_out(id, LazyEntry { data: vec![7.0, 8.0], ready_at: 5.0, pull_secs: 0.5 });
        assert!(w.has_pending_copy_out(id));
        // Consumer arrives at t=3: waits 2.0 for the kernel, then 0.5 transfer.
        let extra = w.ensure_host(id, 3.0);
        assert!((extra - 2.5).abs() < 1e-12);
        assert_eq!(w.get(id)[(0, 1)], 8.0);
        assert_eq!(w.lazy_pulls, 1);
        // Second call is free.
        assert_eq!(w.ensure_host(id, 10.0), 0.0);
    }

    #[test]
    fn lazy_pull_after_ready_time_costs_only_transfer() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(1, 1));
        w.defer_copy_out(id, LazyEntry { data: vec![1.0], ready_at: 1.0, pull_secs: 0.25 });
        let extra = w.ensure_host(id, 9.0);
        assert!((extra - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lazy copy-out is pending")]
    fn reading_pending_matrix_panics() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(1, 1));
        w.defer_copy_out(id, LazyEntry { data: vec![1.0], ready_at: 0.0, pull_secs: 0.0 });
        let _ = w.get(id);
    }

    #[test]
    fn host_write_supersedes_pending_copy_out() {
        let mut w = World::new();
        let id = w.alloc(Matrix::zeros(1, 1));
        w.defer_copy_out(id, LazyEntry { data: vec![1.0], ready_at: 0.0, pull_secs: 0.0 });
        w.set(id, Matrix::from_vec(1, 1, vec![2.0]));
        assert!(!w.has_pending_copy_out(id));
        assert_eq!(w.get(id)[(0, 0)], 2.0);
    }
}

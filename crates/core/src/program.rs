//! Transform-level program structure: transforms, their algorithmic
//! choices, and the choice dependency graph (§2, §3).
//!
//! A [`Program`] is the metadata the autotuner needs about a benchmark:
//! which call sites carry selectors, how many algorithmic choices each has,
//! which tunables exist, and the size of the resulting search space (the
//! "# Possible Configs" column of Fig. 8). The [`ChoiceDependencyGraph`] is
//! the paper's transform-level representation: data as vertices, rules as
//! hyperedges, with multiple rules allowed to produce the same data — those
//! are the choices.

use crate::config::{Config, Selector, Tunable, RATIO_DENOMINATOR};
use petal_gpu::profile::MachineProfile;
use std::collections::BTreeMap;

/// Metadata about one choice site (a transform or a recursive call site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceSite {
    /// Selector name (also the transform name used by
    /// `plan::placement_from_config`).
    pub name: String,
    /// Number of algorithmic choices at this site.
    pub num_algs: usize,
    /// Whether OpenCL variants exist (adds `local_size` / `gpu_ratio`
    /// tunables and counts generated kernels).
    pub opencl: bool,
    /// Whether the scratchpad variant was synthesized (a second kernel).
    pub local_memory_variant: bool,
    /// Whether the site's lowering can actually split work fractionally
    /// between CPU and device (§4.3). Sites that lower to fixed whole-device
    /// kernels (e.g. bitonic sorting networks) set this `false` so no dead
    /// `*.gpu_ratio` tunable inflates the search space — the static verifier
    /// flags the mismatch either way.
    pub fractional: bool,
}

/// Program-level metadata consumed by the autotuner and the reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Benchmark name.
    pub name: String,
    /// Choice sites (selectors).
    pub sites: Vec<ChoiceSite>,
    /// Extra tunables beyond the per-site standard ones:
    /// `(name, default, min, max)`.
    pub extra_tunables: Vec<(String, i64, i64, i64)>,
}

impl Program {
    /// New empty program description.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Program { name: name.into(), ..Program::default() }
    }

    /// Add a choice site.
    pub fn add_site(&mut self, site: ChoiceSite) -> &mut Self {
        self.sites.push(site);
        self
    }

    /// Add an extra tunable.
    pub fn add_tunable(&mut self, name: &str, default: i64, min: i64, max: i64) -> &mut Self {
        self.extra_tunables.push((name.into(), default, min, max));
        self
    }

    /// The default (untuned) configuration: algorithm 0 everywhere, default
    /// tunables — what a user gets without autotuning.
    #[must_use]
    pub fn default_config(&self, machine: &MachineProfile) -> Config {
        let mut cfg = Config::new();
        let max_wg = machine.gpu.as_ref().map_or(1, |g| g.max_work_group) as i64;
        for site in &self.sites {
            let algs = self.site_algs(site, machine);
            cfg.set_selector(&site.name, Selector::constant(0, algs));
            if site.opencl && machine.has_opencl() {
                cfg.set_tunable(
                    &format!("{}.local_size", site.name),
                    Tunable::new(128.min(max_wg), 1, max_wg),
                );
                if site.fractional {
                    cfg.set_tunable(
                        &format!("{}.gpu_ratio", site.name),
                        Tunable::new(RATIO_DENOMINATOR, 0, RATIO_DENOMINATOR),
                    );
                }
            }
        }
        cfg.set_tunable("sequential_cutoff", Tunable::new(64, 1, 1 << 20));
        cfg.set_tunable("split_rows", Tunable::new(0, 0, 1 << 20));
        for (name, default, min, max) in &self.extra_tunables {
            cfg.set_tunable(name, Tunable::new(*default, *min, *max));
        }
        cfg
    }

    /// Number of algorithms available at `site` on `machine`: the declared
    /// algorithmic choices, plus the OpenCL backend choice(s) when the
    /// machine has a device (CPU / OpenCL-global / OpenCL-local, §5.3).
    #[must_use]
    pub fn site_algs(&self, site: &ChoiceSite, machine: &MachineProfile) -> usize {
        let mut n = site.num_algs.max(1);
        if site.opencl && machine.has_opencl() {
            n += 1; // OpenCL with global memory
            if site.local_memory_variant {
                n += 1; // OpenCL with local memory
            }
        }
        n
    }

    /// Number of OpenCL kernels generated for this program (the "Generated
    /// OpenCL Kernels" column of Fig. 8).
    #[must_use]
    pub fn generated_kernels(&self) -> usize {
        self.sites
            .iter()
            .map(|s| usize::from(s.opencl) + usize::from(s.opencl && s.local_memory_variant))
            .sum()
    }

    /// log₁₀ of the configuration-space size on `machine` for inputs up to
    /// `max_input_size` (Fig. 8's astronomically large numbers come from
    /// cutoffs being arbitrary input sizes at each of the 12 levels).
    #[must_use]
    pub fn log10_config_space(&self, machine: &MachineProfile, max_input_size: u64) -> f64 {
        self.default_config(machine).log10_space_size(max_input_size)
    }
}

// ---------------------------------------------------------------------------
// Choice dependency graph
// ---------------------------------------------------------------------------

/// Vertex id: a datum (matrix or region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(usize);

/// Hyperedge id: a rule application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(usize);

/// The paper's transform-level IR: "data dependencies are represented by
/// vertices, while rules are represented by graph hyperedges", and more
/// than one rule may output the same data — the compiler and autotuner
/// decide which to use.
#[derive(Debug, Clone, Default)]
pub struct ChoiceDependencyGraph {
    data_names: Vec<String>,
    rules: Vec<RuleEdge>,
}

#[derive(Debug, Clone)]
struct RuleEdge {
    name: String,
    inputs: Vec<DataId>,
    output: DataId,
}

impl ChoiceDependencyGraph {
    /// Empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a datum vertex.
    pub fn add_data(&mut self, name: &str) -> DataId {
        self.data_names.push(name.into());
        DataId(self.data_names.len() - 1)
    }

    /// Add a rule hyperedge producing `output` from `inputs`.
    pub fn add_rule(&mut self, name: &str, inputs: &[DataId], output: DataId) -> RuleId {
        self.rules.push(RuleEdge { name: name.into(), inputs: inputs.to_vec(), output });
        RuleId(self.rules.len() - 1)
    }

    /// All rules that can produce `d` — the algorithmic choices for it.
    #[must_use]
    pub fn choices_for(&self, d: DataId) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.output == d)
            .map(|(i, _)| RuleId(i))
            .collect()
    }

    /// Rule name.
    #[must_use]
    pub fn rule_name(&self, r: RuleId) -> &str {
        &self.rules[r.0].name
    }

    /// Datum name.
    #[must_use]
    pub fn data_name(&self, d: DataId) -> &str {
        &self.data_names[d.0]
    }

    /// Topologically order the given rule choices (one chosen rule per
    /// produced datum) so every rule runs after the producers of its
    /// inputs. Returns `None` on a cycle.
    #[must_use]
    pub fn schedule(&self, chosen: &[RuleId]) -> Option<Vec<RuleId>> {
        let producer: BTreeMap<DataId, RuleId> =
            chosen.iter().map(|&r| (self.rules[r.0].output, r)).collect();
        let mut order = Vec::new();
        let mut state: BTreeMap<RuleId, u8> = BTreeMap::new(); // 1=visiting, 2=done
        fn visit(
            g: &ChoiceDependencyGraph,
            producer: &BTreeMap<DataId, RuleId>,
            r: RuleId,
            state: &mut BTreeMap<RuleId, u8>,
            order: &mut Vec<RuleId>,
        ) -> bool {
            match state.get(&r) {
                Some(1) => return false, // cycle
                Some(2) => return true,
                _ => {}
            }
            state.insert(r, 1);
            for input in &g.rules[r.0].inputs {
                if let Some(&p) = producer.get(input) {
                    if !visit(g, producer, p, state, order) {
                        return false;
                    }
                }
            }
            state.insert(r, 2);
            order.push(r);
            true
        }
        for &r in chosen {
            if !visit(self, &producer, r, &mut state, &mut order) {
                return None;
            }
        }
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MAX_SELECTOR_LEVELS;

    /// The SeparableConvolution choice structure of Fig. 1: Out produced
    /// either by one 2D pass or by two 1D passes through a buffer.
    fn separable_graph() -> (ChoiceDependencyGraph, DataId, Vec<RuleId>) {
        let mut g = ChoiceDependencyGraph::new();
        let input = g.add_data("In");
        let kernel = g.add_data("Kernel");
        let buffer = g.add_data("buffer");
        let out = g.add_data("Out");
        let conv2d = g.add_rule("Convolve2D", &[input, kernel], out);
        let rows = g.add_rule("ConvolveRows", &[input, kernel], buffer);
        let cols = g.add_rule("ConvolveColumns", &[buffer, kernel], out);
        (g, out, vec![conv2d, rows, cols])
    }

    #[test]
    fn multiple_rules_can_produce_same_data() {
        let (g, out, rules) = separable_graph();
        let choices = g.choices_for(out);
        assert_eq!(choices.len(), 2, "Out has two producers: the choice");
        assert!(choices.contains(&rules[0]));
        assert!(choices.contains(&rules[2]));
    }

    #[test]
    fn schedule_orders_two_pass_choice() {
        let (g, _, rules) = separable_graph();
        // Choice 2: rows then columns.
        let order = g.schedule(&[rules[2], rules[1]]).expect("acyclic");
        let pos = |r: RuleId| order.iter().position(|&x| x == r).unwrap();
        assert!(pos(rules[1]) < pos(rules[2]), "rows pass precedes columns pass");
        // Choice 1: single rule schedules alone.
        assert_eq!(g.schedule(&[rules[0]]).unwrap(), vec![rules[0]]);
    }

    #[test]
    fn schedule_detects_cycles() {
        let mut g = ChoiceDependencyGraph::new();
        let a = g.add_data("a");
        let b = g.add_data("b");
        let r1 = g.add_rule("r1", &[a], b);
        let r2 = g.add_rule("r2", &[b], a);
        assert!(g.schedule(&[r1, r2]).is_none());
    }

    #[test]
    fn program_counts_kernels_and_space() {
        let mut p = Program::new("conv");
        p.add_site(ChoiceSite {
            name: "convolve".into(),
            num_algs: 1,
            opencl: true,
            local_memory_variant: true,
            fractional: true,
        });
        p.add_site(ChoiceSite {
            name: "helper".into(),
            num_algs: 2,
            opencl: false,
            local_memory_variant: false,
            fractional: false,
        });
        assert_eq!(p.generated_kernels(), 2);
        let desktop = MachineProfile::desktop();
        assert_eq!(p.site_algs(&p.sites[0], &desktop), 3, "CPU/global/local");
        assert_eq!(p.site_algs(&p.sites[1], &desktop), 2);
        let mut no_gpu = desktop.clone();
        no_gpu.gpu = None;
        assert_eq!(p.site_algs(&p.sites[0], &no_gpu), 1, "no OpenCL without a device");
        assert!(p.log10_config_space(&desktop, 1 << 22) > 100.0, "Fig. 8 scale");
    }

    #[test]
    fn default_config_has_standard_tunables() {
        let mut p = Program::new("x");
        p.add_site(ChoiceSite {
            name: "t".into(),
            num_algs: 1,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        p.add_tunable("accuracy_rank", 8, 1, 64);
        let cfg = p.default_config(&MachineProfile::desktop());
        assert!(cfg.selector("t").is_some());
        assert!(cfg.tunable("t.local_size").is_some());
        assert!(cfg.tunable("t.gpu_ratio").is_some());
        assert!(cfg.tunable("sequential_cutoff").is_some());
        assert_eq!(cfg.tunable_or("accuracy_rank", 0), 8);
        // Selector levels never exceed the paper's 12.
        assert!(cfg.selector("t").unwrap().levels() <= MAX_SELECTOR_LEVELS);
    }
}

//! The heterogeneous executor: lowers a [`Plan`] onto the hybrid
//! workstealing/work-pushing runtime.
//!
//! For every stencil step the executor emits exactly the task structure of
//! §4.2: one *prepare* task, one *copy-in* task per input (deduplicated
//! against the device residency table), one *execute* task (asynchronous
//! kernel launch plus non-blocking reads for eager copy-outs or a deferred
//! entry for lazy ones), and one *copy-out completion* task per eager
//! region. CPU placements become row-chunk tasks on the workstealing side;
//! fractional splits emit both and join on completion.
//!
//! OpenCL kernels are registered (and their runtime compilation charged)
//! when the plan is lowered, mirroring the JIT cost structure of §5.4.

use crate::codegen::{self, Geometry, RawInput};
use crate::data::{LazyEntry, World};
use crate::plan::{analyze_movement, CopyOutPolicy, Placement, Plan, StencilStep, StepKind};
use crate::Error;
use petal_gpu::buffer::BufferId;
use petal_gpu::compile::KernelHandle;
use petal_gpu::cost;
use petal_gpu::device::{Device, KernelLaunch};
use petal_gpu::profile::MachineProfile;
use petal_gpu::queue::{Event, EventStatus};
use petal_rt::{Charge, Engine, GpuOutcome, GpuTaskClass, RunReport, TaskId};
use std::sync::{Arc, Mutex};

/// The task ids a lowered step starts or ends with. Native steps are one
/// task each; keeping them out of `Vec` saves two allocations per step on
/// the lowering path (recursive plans have tens of thousands of steps).
enum TaskSet {
    One(TaskId),
    Many(Vec<TaskId>),
}

impl TaskSet {
    fn as_slice(&self) -> &[TaskId] {
        match self {
            TaskSet::One(id) => std::slice::from_ref(id),
            TaskSet::Many(v) => v,
        }
    }
}

/// Manager-side cost of issuing one non-blocking device call.
const ISSUE_SECS: f64 = 2.0e-6;

/// Result of executing one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Runtime statistics (makespan, steals, dedup hits, ...).
    pub rt: RunReport,
    /// Virtual seconds spent JIT-compiling kernels while lowering this plan
    /// (zero once the kernels are warm in the process).
    pub compile_secs: f64,
    /// Lazy copy-out pulls performed by consumers.
    pub lazy_pulls: usize,
    /// Kernel compiles charged while lowering this plan, in compile order.
    /// The evaluation farm replays these against its shared process/IR-cache
    /// model to re-price trials deterministically.
    pub compile_events: Vec<petal_gpu::compile::CompileEvent>,
}

impl ExecReport {
    /// Steady-state execution time: the scheduler makespan.
    #[must_use]
    pub fn virtual_time_secs(&self) -> f64 {
        self.rt.makespan
    }

    /// First-run time including JIT compilation (what an autotuning trial
    /// pays).
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.rt.makespan + self.compile_secs
    }
}

/// Executes plans on one machine, keeping the device's compiled-kernel
/// cache warm across runs (as a real process would).
pub struct Executor {
    machine: MachineProfile,
    device: Option<Device>,
    workers: usize,
    seed: u64,
    sched_policy: Option<petal_rt::SchedPolicy>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("machine", &self.machine.codename)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Executor for `machine` with one worker per core (the paper pins
    /// thread count to core count when migrating configurations).
    #[must_use]
    pub fn new(machine: &MachineProfile) -> Self {
        Executor {
            machine: machine.clone(),
            device: machine.gpu.clone().map(Device::new),
            workers: machine.cpu.cores,
            seed: 0x5eed,
            sched_policy: None,
        }
    }

    /// Override the deterministic scheduling seed.
    pub fn set_seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Pin the scheduling-core implementation instead of the process
    /// default. The two policies are bit-identical in behavior (the
    /// determinism audit in `petal_analysis` proves it on verifier-clean
    /// plans); this knob exists so that proof can run both sides
    /// explicitly.
    pub fn set_sched_policy(&mut self, policy: petal_rt::SchedPolicy) -> &mut Self {
        self.sched_policy = Some(policy);
        self
    }

    /// Override the CPU worker count.
    pub fn set_workers(&mut self, workers: usize) -> &mut Self {
        self.workers = workers.max(1);
        self
    }

    /// Replace the device (e.g. one with the IR cache disabled).
    pub fn set_device(&mut self, device: Option<Device>) -> &mut Self {
        self.device = device;
        self
    }

    /// The machine this executor targets.
    #[must_use]
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// The device, if any (for inspecting kernels and compile statistics).
    #[must_use]
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// Lower `plan` to tasks, run it to completion against `world`, and
    /// report timing.
    ///
    /// # Errors
    /// Propagates scheduler deadlocks, device failures, and attempts to use
    /// OpenCL placements on a machine without a device.
    pub fn run(&mut self, plan: Plan, world: &mut World) -> Result<ExecReport, Error> {
        // Cross-check the static analyzer's hazard-freedom claim: every plan
        // the executor runs in a test build must be scheduling-independent,
        // otherwise the movement analysis below (a schedule-order scan) is
        // unsound and the determinism contract is void.
        #[cfg(debug_assertions)]
        {
            let hs = crate::plan::hazards(&plan);
            debug_assert!(
                hs.is_empty(),
                "plan has {} unordered data hazard(s); first: {:?} — \
                 run petal-verify for the full report",
                hs.len(),
                hs[0]
            );
        }
        let policies = analyze_movement(&plan);
        // Per-run process-restart modeling (§5.4) lives in the evaluation
        // farm now: a farm trial gets a fresh executor (= fresh process)
        // and the farm re-prices compiles against its shared IR-cache
        // model, so the executor itself only resets transient device state.
        let mut device = self.device.take();
        if let Some(d) = &mut device {
            d.reset_timeline();
        }
        let mut compile_secs = 0.0;
        let lazy_before = world.lazy_pulls;

        let mut engine: Engine<World> =
            Engine::with_device_and_workers(&self.machine, self.workers, device, self.seed);
        if let Some(policy) = self.sched_policy {
            engine.set_sched_policy(policy);
        }

        let (steps, _outputs) = plan.into_steps();
        // Native steps (the overwhelming majority in recursive plans) lower
        // to exactly one task, so the per-step initial/terminal sets are
        // kept alloc-free for that case.
        let mut terminals: Vec<TaskSet> = Vec::with_capacity(steps.len());
        let mut initials: Vec<TaskSet> = Vec::with_capacity(steps.len());

        for (idx, step) in steps.into_iter().enumerate() {
            let (init, term) = match step.kind {
                StepKind::Native(n) => {
                    let id = engine.add_cpu_task_boxed(n.run);
                    (TaskSet::One(id), TaskSet::One(id))
                }
                StepKind::Stencil(s) => {
                    let policy = policies[idx].unwrap_or(CopyOutPolicy::Eager);
                    let (init, term) =
                        self.lower_stencil(&mut engine, &s, policy, &mut compile_secs)?;
                    (TaskSet::Many(init), TaskSet::Many(term))
                }
            };
            for dep in &step.deps {
                for &t in terminals[dep.index()].as_slice() {
                    for &i in init.as_slice() {
                        engine.add_dependency(i, t).map_err(Error::Rt)?;
                    }
                }
            }
            initials.push(init);
            terminals.push(term);
        }

        let rt = engine.run(world).map_err(Error::Rt)?;
        self.device = engine.take_device();
        let compile_events = self.device.as_mut().map(Device::take_compile_log).unwrap_or_default();
        Ok(ExecReport {
            rt,
            compile_secs,
            lazy_pulls: world.lazy_pulls - lazy_before,
            compile_events,
        })
    }

    /// Emit tasks for one stencil step; returns (initial, terminal) tasks.
    #[allow(clippy::too_many_lines)]
    fn lower_stencil(
        &mut self,
        engine: &mut Engine<World>,
        s: &StencilStep,
        policy: CopyOutPolicy,
        compile_secs: &mut f64,
    ) -> Result<(Vec<TaskId>, Vec<TaskId>), Error> {
        let (out_w, out_h) = s.out_dims;
        let (gpu_rows, cpu_chunks, local_memory, local_size) = match s.placement {
            Placement::Cpu { chunks } => (0, chunks, false, 1),
            Placement::OpenCl { local_memory, local_size } => (out_h, 0, local_memory, local_size),
            Placement::Split { gpu_eighths, local_memory, local_size, cpu_chunks } => {
                ((out_h * gpu_eighths as usize) / 8, cpu_chunks, local_memory, local_size)
            }
        };

        let mut initials = Vec::new();
        let mut terminals = Vec::new();

        // ----- CPU part: rows [gpu_rows, out_h) in `cpu_chunks` tasks -----
        if gpu_rows < out_h {
            let rows = out_h - gpu_rows;
            let chunks = cpu_chunks.clamp(1, rows);
            let per = rows.div_ceil(chunks);
            let mut r0 = gpu_rows;
            while r0 < out_h {
                let r1 = (r0 + per).min(out_h);
                let rule = Arc::clone(&s.rule);
                let inputs = s.inputs.clone();
                let output = s.output;
                let scalars = s.user_scalars.clone();
                let id = engine.add_cpu_task(move |world: &mut World, ctx| {
                    let mut extra = 0.0;
                    for &i in &inputs {
                        extra += world.ensure_host(i, ctx.now());
                    }
                    let geom = Geometry {
                        out_w,
                        out_h,
                        row0: r0,
                        row1: r1,
                        in_dims: inputs
                            .iter()
                            .map(|&i| {
                                let m = world.get(i);
                                (m.cols(), m.rows())
                            })
                            .collect(),
                        local_size: 1,
                    };
                    let mut out = world.take_matrix(output);
                    {
                        let raw: Vec<RawInput<'_>> = inputs
                            .iter()
                            .map(|&i| {
                                let m = world.get(i);
                                (m.as_slice(), m.cols(), m.rows())
                            })
                            .collect();
                        codegen::run_global(&rule, &raw, &scalars, out.as_mut_slice(), &geom);
                    }
                    let work = codegen::cpu_work(&rule, &geom, r1 - r0);
                    world.restore_matrix(output, out);
                    Charge::WorkPlusSecs(work, extra)
                });
                initials.push(id);
                terminals.push(id);
                r0 = r1;
            }
        }

        // ----- GPU part: rows [0, gpu_rows) as one kernel invocation -----
        if gpu_rows > 0 {
            let Some(device) = engine.device_mut() else {
                return Err(Error::Validation(format!(
                    "rule '{}' placed on OpenCL but machine '{}' has no device",
                    s.rule.name, self.machine.codename
                )));
            };
            s.rule.opencl_verdict().map_err(|r| {
                Error::Validation(format!("rule '{}' cannot map to OpenCL: {r}", s.rule.name))
            })?;
            let source = codegen::generate_source(&s.rule, local_memory);
            let body = codegen::make_kernel_body(Arc::clone(&s.rule), local_memory);
            let suffix = if local_memory { "_localmem" } else { "" };
            let (handle, secs) =
                device.register_kernel(&format!("{}{}", s.rule.name, suffix), &source, body);
            *compile_secs += secs;

            let chain = self.gpu_invocation_chain(
                engine,
                s,
                handle,
                policy,
                gpu_rows,
                local_memory,
                local_size,
            );
            // Chain order: prepare -> copy-ins -> execute -> copy-out done.
            initials.push(chain.prepare);
            match (policy, chain.copy_out_done) {
                (CopyOutPolicy::Eager, Some(done)) => terminals.push(done),
                _ => terminals.push(chain.execute),
            }
        }
        Ok((initials, terminals))
    }

    /// Build the four-task GPU chain for one kernel invocation.
    #[allow(clippy::too_many_arguments)]
    fn gpu_invocation_chain(
        &self,
        engine: &mut Engine<World>,
        s: &StencilStep,
        handle: KernelHandle,
        policy: CopyOutPolicy,
        gpu_rows: usize,
        local_memory: bool,
        local_size: usize,
    ) -> GpuChain {
        #[derive(Default)]
        struct Inv {
            in_bufs: Vec<Option<(BufferId, bool)>>,
            out_buf: Option<BufferId>,
            read: Option<(Event, Vec<f64>)>,
        }
        // Shared invocation state between the four chain tasks. `Arc<Mutex>`
        // (not `Rc<RefCell>`): the chain must be `Send` so a whole trial can
        // run on an evaluation-farm worker thread. Tasks of one engine never
        // run concurrently, so the lock is uncontended. The per-input slots
        // are sized up front so no task ever grows the vector.
        let inv =
            Arc::new(Mutex::new(Inv { in_bufs: vec![None; s.inputs.len()], ..Inv::default() }));

        let (out_w, out_h) = s.out_dims;
        let inputs = s.inputs.clone();
        let output = s.output;

        // Prepare: allocate buffers (reusing resident input copies).
        let prepare = {
            let inv = Arc::clone(&inv);
            let inputs = inputs.clone();
            engine.add_gpu_task(GpuTaskClass::Prepare, move |world: &mut World, ctx| {
                let mut secs = 0.0;
                let profile = ctx.device.profile().clone();
                let mut st = inv.lock().expect("inv lock");
                for (k, &i) in inputs.iter().enumerate() {
                    let (cols, rows) = world.get_dims(i);
                    let m_len = cols * rows;
                    let key = world.residency_key(i, 0, rows);
                    if let Some(id) = ctx.device.buffers().lookup_resident(key) {
                        st.in_bufs[k] = Some((id, true));
                    } else {
                        let id = ctx.device.alloc_buffer(m_len);
                        secs += cost::alloc_secs(&profile, m_len as f64 * 8.0);
                        st.in_bufs[k] = Some((id, false));
                    }
                }
                let out_len = out_w * gpu_rows;
                let ob = ctx.device.alloc_buffer(out_len);
                secs += cost::alloc_secs(&profile, out_len as f64 * 8.0);
                st.out_buf = Some(ob);
                Ok(GpuOutcome::Done { manager_secs: secs })
            })
        };

        // One copy-in per input, deduplicated against the residency table.
        let mut copy_ins = Vec::with_capacity(inputs.len());
        for (k, &i) in inputs.iter().enumerate() {
            let inv = Arc::clone(&inv);
            let id = engine.add_gpu_task(GpuTaskClass::CopyIn, move |world: &mut World, ctx| {
                let (buf, resident) =
                    inv.lock().expect("inv lock").in_bufs[k].expect("prepare ran before copy-in");
                if resident {
                    ctx.note_dedup_hit();
                    return Ok(GpuOutcome::Done { manager_secs: 1.0e-7 });
                }
                if world.has_pending_copy_out(i) {
                    // Rare: a lazily-deferred producer feeding a GPU consumer
                    // that lost residency; materialize on the host first.
                    let _ = world.ensure_host(i, ctx.now);
                }
                let rows = world.get_dims(i).1;
                let key = world.residency_key(i, 0, rows);
                // The device copies on write, so the host matrix can be
                // handed over as a slice — no per-copy-in staging Vec.
                ctx.device.enqueue_write(ctx.now, buf, world.get(i).as_slice())?;
                ctx.device.buffers_mut().mark_resident(key, buf);
                Ok(GpuOutcome::Done { manager_secs: ISSUE_SECS })
            });
            engine.add_dependency(id, prepare).expect("fresh tasks accept dependencies");
            copy_ins.push(id);
        }

        // Execute: launch the kernel, then issue the copy-out per policy.
        let execute = {
            let inv = Arc::clone(&inv);
            let rule = Arc::clone(&s.rule);
            let scalars = s.user_scalars.clone();
            engine.add_gpu_task(GpuTaskClass::Execute, move |world: &mut World, ctx| {
                let (st_bufs, out_buf) = {
                    let st = inv.lock().expect("inv lock");
                    let mut v: Vec<BufferId> =
                        st.in_bufs.iter().map(|b| b.expect("copy-in ran").0).collect();
                    let out = st.out_buf.expect("prepare ran");
                    v.push(out);
                    (v, out)
                };
                let geom = Geometry {
                    out_w,
                    out_h,
                    row0: 0,
                    row1: gpu_rows,
                    in_dims: inputs.iter().map(|&i| world.get_dims(i)).collect(),
                    local_size,
                };
                let launch = KernelLaunch {
                    kernel: handle,
                    buffers: st_bufs,
                    scalars: codegen::encode_scalars(&geom, &scalars),
                    work: codegen::kernel_work(&rule, &geom, local_memory),
                };
                let kev = ctx.device.enqueue_kernel(ctx.now, &launch)?;
                match policy {
                    CopyOutPolicy::Eager => {
                        let (ev, data) = ctx.device.enqueue_read(ctx.now, out_buf)?;
                        inv.lock().expect("inv lock").read = Some((ev, data));
                        // Keep the device copy usable by later kernels too.
                        if gpu_rows == out_h {
                            let key = world.residency_key(output, 0, out_h);
                            ctx.device.buffers_mut().mark_resident(key, out_buf);
                        }
                    }
                    CopyOutPolicy::Lazy => {
                        let data = ctx.device.buffers().get(out_buf)?.data().to_vec();
                        let bytes = data.len() as f64 * 8.0;
                        let pull = cost::transfer_secs(ctx.device.profile(), bytes);
                        let key = world.residency_key(output, 0, out_h);
                        ctx.device.buffers_mut().mark_resident(key, out_buf);
                        world.defer_copy_out(
                            output,
                            LazyEntry { data, ready_at: kev.complete_at, pull_secs: pull },
                        );
                    }
                    CopyOutPolicy::Reused => {
                        let key = world.residency_key(output, 0, out_h);
                        ctx.device.buffers_mut().mark_resident(key, out_buf);
                    }
                }
                Ok(GpuOutcome::Done { manager_secs: ISSUE_SECS })
            })
        };
        for &c in &copy_ins {
            engine.add_dependency(execute, c).expect("fresh tasks accept dependencies");
        }

        // Copy-out completion: poll the non-blocking read (eager only).
        let copy_out_done = if policy == CopyOutPolicy::Eager {
            let inv = Arc::clone(&inv);
            let id =
                engine.add_gpu_task(GpuTaskClass::CopyOutDone, move |world: &mut World, ctx| {
                    // One lock session covers both the poll and the data
                    // handover (the poll used to re-lock to take the data).
                    let mut st = inv.lock().expect("inv lock");
                    {
                        let (ev, _) = st.read.as_ref().expect("execute issued the read");
                        if let EventStatus::Pending = ev.status_at(ctx.now) {
                            return Ok(GpuOutcome::Requeue { ready_at: ev.complete_at });
                        }
                    }
                    let (_, data) = st.read.take().expect("read present");
                    drop(st);
                    let mut out = world.take_matrix(output);
                    out.as_mut_slice()[0..out_w * gpu_rows].copy_from_slice(&data);
                    world.restore_matrix(output, out);
                    Ok(GpuOutcome::Done { manager_secs: 1.0e-6 })
                });
            engine.add_dependency(id, execute).expect("fresh tasks accept dependencies");
            Some(id)
        } else {
            None
        };

        GpuChain { prepare, execute, copy_out_done }
    }
}

struct GpuChain {
    prepare: TaskId,
    execute: TaskId,
    copy_out_done: Option<TaskId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MatrixId;
    use crate::plan::{NativeStep, PlanBuilder};
    use crate::stencil::{AccessPattern, StencilInput, StencilRule};
    use petal_blas::Matrix;

    /// out[y][x] = 2 * in[y][x]
    fn double_rule() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "dbl".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Point }],
            flops_per_output: 1.0,
            body_c: "result = 2.0 * IN0(x, y);".into(),
            elem: Arc::new(|env, x, y| 2.0 * env.inputs[0].at(x, y)),
            native_only_body: false,
        })
    }

    fn setup(n: usize) -> (World, MatrixId, MatrixId) {
        let mut w = World::new();
        let a = w.alloc(Matrix::from_fn(n, n, |r, c| (r * n + c) as f64));
        let b = w.alloc(Matrix::zeros(n, n));
        (w, a, b)
    }

    fn step(a: MatrixId, b: MatrixId, n: usize, placement: Placement) -> StencilStep {
        StencilStep {
            rule: double_rule(),
            inputs: vec![a],
            output: b,
            out_dims: (n, n),
            user_scalars: vec![],
            placement,
        }
    }

    fn expected(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| 2.0 * (r * n + c) as f64)
    }

    #[test]
    fn cpu_placement_computes_correctly() {
        let (mut w, a, b) = setup(8);
        let mut p = PlanBuilder::new();
        p.stencil(step(a, b, 8, Placement::Cpu { chunks: 3 }), &[]);
        p.mark_output(b);
        let mut ex = Executor::new(&MachineProfile::desktop());
        let rep = ex.run(p.build(), &mut w).unwrap();
        assert!(w.get(b).approx_eq(&expected(8), 0.0));
        assert!(rep.virtual_time_secs() > 0.0);
        assert_eq!(rep.rt.gpu_tasks, 0);
    }

    #[test]
    fn gpu_placement_computes_and_copies_out() {
        let (mut w, a, b) = setup(8);
        let mut p = PlanBuilder::new();
        p.stencil(step(a, b, 8, Placement::OpenCl { local_memory: false, local_size: 16 }), &[]);
        p.mark_output(b);
        let mut ex = Executor::new(&MachineProfile::desktop());
        let rep = ex.run(p.build(), &mut w).unwrap();
        assert!(w.get(b).approx_eq(&expected(8), 0.0));
        // prepare + copy-in + execute + copy-out completion.
        assert!(rep.rt.gpu_tasks >= 4, "gpu tasks {}", rep.rt.gpu_tasks);
        assert!(rep.compile_secs > 0.0, "first run JIT-compiles");
    }

    #[test]
    fn split_placement_joins_both_parts() {
        let (mut w, a, b) = setup(16);
        let mut p = PlanBuilder::new();
        p.stencil(
            step(
                a,
                b,
                16,
                Placement::Split {
                    gpu_eighths: 5,
                    local_memory: false,
                    local_size: 16,
                    cpu_chunks: 2,
                },
            ),
            &[],
        );
        p.mark_output(b);
        let mut ex = Executor::new(&MachineProfile::laptop());
        ex.run(p.build(), &mut w).unwrap();
        assert!(w.get(b).approx_eq(&expected(16), 0.0), "both halves must land");
    }

    #[test]
    fn gpu_chain_reuses_resident_data() {
        // b = 2a (GPU), c = 2b (GPU): the second kernel's copy-in must
        // dedup against b's resident buffer.
        let (mut w, a, b) = setup(8);
        let c = w.alloc(Matrix::zeros(8, 8));
        let mut p = PlanBuilder::new();
        let gpu = Placement::OpenCl { local_memory: false, local_size: 16 };
        let s1 = p.stencil(step(a, b, 8, gpu), &[]);
        p.stencil(step(b, c, 8, gpu), &[s1]);
        p.mark_output(c);
        let mut ex = Executor::new(&MachineProfile::desktop());
        let rep = ex.run(p.build(), &mut w).unwrap();
        let want = Matrix::from_fn(8, 8, |r, cc| 4.0 * (r * 8 + cc) as f64);
        assert!(w.get(c).approx_eq(&want, 0.0));
        assert!(rep.rt.copy_in_dedup_hits >= 1, "dedup hits {}", rep.rt.copy_in_dedup_hits);
    }

    #[test]
    fn lazy_copy_out_is_pulled_by_native_consumer() {
        let (mut w, a, b) = setup(4);
        let result = w.alloc(Matrix::zeros(1, 1));
        let mut p = PlanBuilder::new();
        let gpu = Placement::OpenCl { local_memory: false, local_size: 16 };
        let s1 = p.stencil(step(a, b, 4, gpu), &[]);
        p.native(
            NativeStep {
                label: "sum".into(),
                reads: vec![b],
                writes: vec![result],
                run: Box::new(move |world, ctx| {
                    let extra = world.ensure_host(b, ctx.now());
                    let total: f64 = world.get(b).as_slice().iter().sum();
                    world.get_mut(result)[(0, 0)] = total;
                    Charge::WorkPlusSecs(petal_gpu::cost::CpuWork::new(16.0, 128.0), extra)
                }),
            },
            &[s1],
        );
        p.mark_output(result);
        let mut ex = Executor::new(&MachineProfile::desktop());
        let rep = ex.run(p.build(), &mut w).unwrap();
        let want: f64 = (0..16).map(|i| 2.0 * i as f64).sum();
        assert_eq!(w.get(result)[(0, 0)], want);
        assert_eq!(rep.lazy_pulls, 1, "the native consumer pulled the deferred region");
    }

    #[test]
    fn opencl_on_gpuless_machine_is_rejected() {
        let (mut w, a, b) = setup(4);
        let mut p = PlanBuilder::new();
        p.stencil(step(a, b, 4, Placement::OpenCl { local_memory: false, local_size: 16 }), &[]);
        let mut machine = MachineProfile::desktop();
        machine.gpu = None;
        let mut ex = Executor::new(&machine);
        let err = ex.run(p.build(), &mut w).unwrap_err();
        assert!(matches!(err, Error::Validation(_)), "{err:?}");
    }

    #[test]
    fn second_run_compiles_nothing() {
        let run = |ex: &mut Executor| {
            let (mut w, a, b) = setup(8);
            let mut p = PlanBuilder::new();
            p.stencil(
                step(a, b, 8, Placement::OpenCl { local_memory: false, local_size: 16 }),
                &[],
            );
            p.mark_output(b);
            ex.run(p.build(), &mut w).unwrap()
        };
        let mut ex = Executor::new(&MachineProfile::desktop());
        let first = run(&mut ex);
        let second = run(&mut ex);
        assert!(first.compile_secs > 0.0);
        assert_eq!(second.compile_secs, 0.0, "kernel cache is warm");
        assert!(second.total_secs() < first.total_secs());
    }

    #[test]
    fn local_memory_variant_matches_global_results() {
        let n = 12;
        let blur = Arc::new(StencilRule {
            name: "blur3".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Stencil { w: 3, h: 3 } }],
            flops_per_output: 18.0,
            body_c: "for (int j = 0; j < 3; j++)\n    for (int i = 0; i < 3; i++)\n        result += IN0(x + i, y + j);".into(),
            elem: Arc::new(|env, x, y| {
                let mut s = 0.0;
                for j in 0..3 {
                    for i in 0..3 {
                        s += env.inputs[0].at(x + i, y + j);
                    }
                }
                s
            }),
            native_only_body: false,
        });
        let run_variant = |local_memory: bool| {
            let mut w = World::new();
            let a = w.alloc(Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 11) as f64));
            let b = w.alloc(Matrix::zeros(n - 2, n - 2));
            let mut p = PlanBuilder::new();
            p.stencil(
                StencilStep {
                    rule: Arc::clone(&blur),
                    inputs: vec![a],
                    output: b,
                    out_dims: (n - 2, n - 2),
                    user_scalars: vec![],
                    placement: Placement::OpenCl { local_memory, local_size: 32 },
                },
                &[],
            );
            p.mark_output(b);
            let mut ex = Executor::new(&MachineProfile::desktop());
            ex.run(p.build(), &mut w).unwrap();
            w.get(b).clone()
        };
        let global = run_variant(false);
        let local = run_variant(true);
        assert!(global.approx_eq(&local, 0.0), "scratchpad staging must be transparent");
    }
}

//! # petal-core — algorithmic choice, compilation and heterogeneous execution
//!
//! The paper's primary contribution, reimplemented in Rust:
//!
//! * [`stencil`] — data-parallel rules with declared access patterns, and
//!   the static analyses of §3.1: OpenCL mappability (phase 1/2) and the
//!   bounding-box test that gates the scratchpad variant (phase 3).
//! * [`codegen`] — OpenCL C source generation for both kernel variants
//!   (including the synthesized cooperative-load phase), cost descriptors,
//!   and functional kernel bodies.
//! * [`plan`] — schedules (one per choice assignment) and the data-movement
//!   analysis of §3.2 (*must copy-out* / *reused* / *may copy-out*).
//! * [`executor`] — lowers plans onto the hybrid workstealing/work-pushing
//!   runtime of [`petal_rt`], emitting the four GPU task classes of §4.2
//!   with copy-in deduplication and eager/lazy/no copy-out.
//! * [`config`] — selectors (`SELECT` of §5.1) and tunables; the autotuner's
//!   genome.
//! * [`program`] — transform metadata, choice dependency graph, and
//!   search-space accounting (Fig. 8).
//! * [`data`] — the host matrix store with versions and deferred copy-outs.
//!
//! See `petal-apps` for the seven paper benchmarks built on this API and
//! `petal-tuner` for the evolutionary autotuner.

pub mod codegen;
pub mod config;
pub mod data;
pub mod executor;
pub mod plan;
pub mod program;
pub mod stencil;

pub use config::{Config, Selector, Tunable};
pub use data::{MatrixId, World};
pub use executor::{ExecReport, Executor};
pub use plan::{Placement, Plan, PlanBuilder};
pub use program::{ChoiceSite, Program};
pub use stencil::{AccessPattern, StencilRule};

use std::fmt;

/// Top-level error type for plan execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Runtime scheduling failure.
    Rt(petal_rt::RtError),
    /// Device failure.
    Gpu(petal_gpu::GpuError),
    /// Configuration file parse failure.
    Config(config::ParseConfigError),
    /// A plan/machine/config combination that cannot execute.
    Validation(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Rt(e) => write!(f, "runtime: {e}"),
            Error::Gpu(e) => write!(f, "device: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Validation(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rt(e) => Some(e),
            Error::Gpu(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Validation(_) => None,
        }
    }
}

impl From<petal_rt::RtError> for Error {
    fn from(e: petal_rt::RtError) -> Self {
        Error::Rt(e)
    }
}

impl From<petal_gpu::GpuError> for Error {
    fn from(e: petal_gpu::GpuError) -> Self {
        Error::Gpu(e)
    }
}

impl From<config::ParseConfigError> for Error {
    fn from(e: config::ParseConfigError) -> Self {
        Error::Config(e)
    }
}

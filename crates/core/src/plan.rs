//! Execution plans and the data-movement analysis of §3.2.
//!
//! A [`Plan`] is the *schedule* the PetaBricks compiler generates "for each
//! assignment of choices in a transform": a DAG of steps, each either a
//! [`StencilStep`] (a rule application placed on the CPU backend, the
//! OpenCL backend, or fractionally split across both) or a [`NativeStep`]
//! (CPU-only code, possibly with dynamic recursion — the part the static
//! analysis cannot see through).
//!
//! After the schedule is built, [`analyze_movement`] classifies every
//! OpenCL-placed output region exactly as the paper does:
//!
//! * **must copy-out** — immediately consumed by CPU code (or a program
//!   output): copy eagerly;
//! * **reused** — consumed only by further OpenCL rules: leave it in GPU
//!   memory;
//! * **may copy-out** — consumed by dynamic control flow the analysis
//!   cannot resolve: defer the copy and insert a check before any consumer
//!   (`World::ensure_host`).

use crate::config::Config;
use crate::data::{MatrixId, World};
use crate::stencil::StencilRule;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, CpuCtx};
use std::sync::Arc;

/// Identifier of a step within one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(pub(crate) usize);

impl StepId {
    /// Raw index, for diagnostics.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a stencil step executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// CPU workstealing backend, output rows divided into `chunks` tasks.
    Cpu {
        /// Parallel row-chunks (1 = sequential).
        chunks: usize,
    },
    /// OpenCL backend.
    OpenCl {
        /// Use the generated scratchpad variant.
        local_memory: bool,
        /// Work-items per work-group.
        local_size: usize,
    },
    /// Concurrent CPU + OpenCL: the first `gpu_eighths/8` of the rows on
    /// the device, the rest on CPU chunks (§4.3 work balancing).
    Split {
        /// Eighths of the output computed on the device (1..=7).
        gpu_eighths: u8,
        /// Use the scratchpad variant for the device part.
        local_memory: bool,
        /// Work-items per work-group.
        local_size: usize,
        /// CPU row-chunks for the host part.
        cpu_chunks: usize,
    },
}

impl Placement {
    /// True when any fraction of the step runs on the OpenCL device.
    #[must_use]
    pub fn uses_opencl(&self) -> bool {
        !matches!(self, Placement::Cpu { .. })
    }
}

/// One data-parallel rule application.
pub struct StencilStep {
    /// The rule to apply.
    pub rule: Arc<StencilRule>,
    /// Input matrices, positionally matching the rule's declared inputs.
    pub inputs: Vec<MatrixId>,
    /// Output matrix (must differ from every input).
    pub output: MatrixId,
    /// Output dimensions `(cols, rows)`.
    pub out_dims: (usize, usize),
    /// Scalar parameters forwarded to the rule body.
    pub user_scalars: Vec<f64>,
    /// Device placement.
    pub placement: Placement,
}

/// Closure type for native steps: arbitrary CPU code with dynamic spawning.
/// `Send` so a whole plan (and the trial evaluating it) can move to an
/// evaluation-farm worker thread.
pub type NativeFn = Box<dyn FnOnce(&mut World, &mut CpuCtx<World>) -> Charge + Send>;

/// One CPU-only step (external library calls, recursive poly-algorithms).
pub struct NativeStep {
    /// Human-readable label.
    pub label: String,
    /// Matrices this step may read (used by the movement analysis; reads
    /// beyond this set are a benchmark bug).
    pub reads: Vec<MatrixId>,
    /// Matrices this step may write.
    pub writes: Vec<MatrixId>,
    /// The code.
    pub run: NativeFn,
}

/// A step body.
pub enum StepKind {
    /// Automated data-parallel rule application.
    Stencil(StencilStep),
    /// Opaque CPU code.
    Native(NativeStep),
}

impl std::fmt::Debug for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepKind::Stencil(s) => f
                .debug_struct("Stencil")
                .field("rule", &s.rule.name)
                .field("placement", &s.placement)
                .finish_non_exhaustive(),
            StepKind::Native(n) => {
                f.debug_struct("Native").field("label", &n.label).finish_non_exhaustive()
            }
        }
    }
}

/// A node of the schedule DAG.
#[derive(Debug)]
pub struct Step {
    /// What the step does.
    pub kind: StepKind,
    /// Steps that must complete first.
    pub deps: Vec<StepId>,
}

impl Step {
    /// Matrices this step reads (whole-matrix granularity). For stencils
    /// this is the positional input list; for native steps the declared
    /// `reads` set — reads outside it are a benchmark bug, which is exactly
    /// what the hazard pass and the executor's debug cross-check assume.
    #[must_use]
    pub fn reads(&self) -> &[MatrixId] {
        match &self.kind {
            StepKind::Stencil(s) => &s.inputs,
            StepKind::Native(n) => &n.reads,
        }
    }

    /// Matrices this step writes (whole-matrix granularity).
    #[must_use]
    pub fn writes(&self) -> &[MatrixId] {
        match &self.kind {
            StepKind::Stencil(s) => std::slice::from_ref(&s.output),
            StepKind::Native(n) => &n.writes,
        }
    }

    /// Short human-readable name for diagnostics (rule name or label).
    #[must_use]
    pub fn describe(&self) -> &str {
        match &self.kind {
            StepKind::Stencil(s) => &s.rule.name,
            StepKind::Native(n) => &n.label,
        }
    }
}

/// Copy-out policy assigned to an OpenCL-placed output (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyOutPolicy {
    /// *must copy-out*: copied eagerly via a copy-out completion task.
    Eager,
    /// *reused*: left in GPU memory; the next kernel's copy-in deduplicates.
    Reused,
    /// *may copy-out*: deferred; consumers pull through `ensure_host`.
    Lazy,
}

/// A complete schedule for one configuration.
pub struct Plan {
    steps: Vec<Step>,
    outputs: Vec<MatrixId>,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan").field("steps", &self.steps).field("outputs", &self.outputs).finish()
    }
}

impl Plan {
    /// Steps in creation (schedule) order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Program outputs (always copied back to the host eagerly).
    #[must_use]
    pub fn outputs(&self) -> &[MatrixId] {
        &self.outputs
    }

    /// Decompose into steps for execution.
    #[must_use]
    pub(crate) fn into_steps(self) -> (Vec<Step>, Vec<MatrixId>) {
        (self.steps, self.outputs)
    }
}

/// Incremental plan construction.
#[derive(Default)]
pub struct PlanBuilder {
    steps: Vec<Step>,
    outputs: Vec<MatrixId>,
}

impl std::fmt::Debug for PlanBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanBuilder").field("steps", &self.steps.len()).finish()
    }
}

impl PlanBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stencil step.
    ///
    /// # Panics
    /// Panics if the output matrix is also an input (stencils never run in
    /// place) or a dependency id is out of range.
    pub fn stencil(&mut self, step: StencilStep, deps: &[StepId]) -> StepId {
        assert!(!step.inputs.contains(&step.output), "stencil output must differ from its inputs");
        self.push(StepKind::Stencil(step), deps)
    }

    /// Append a native step.
    pub fn native(&mut self, step: NativeStep, deps: &[StepId]) -> StepId {
        self.push(StepKind::Native(step), deps)
    }

    fn push(&mut self, kind: StepKind, deps: &[StepId]) -> StepId {
        let this = StepId(self.steps.len());
        for (i, d) in deps.iter().enumerate() {
            assert!(
                d.0 < self.steps.len(),
                "step {this:?} ({kind:?}): dependency {d:?} does not exist yet \
                 (self-references and forward edges are impossible in a plan DAG)"
            );
            assert!(
                !deps[..i].contains(d),
                "step {this:?} ({kind:?}): duplicate dependency {d:?} — each \
                 predecessor may be listed once (the verifier's graph pass \
                 assumes a well-formed DAG)"
            );
        }
        self.steps.push(Step { kind, deps: deps.to_vec() });
        this
    }

    /// Declare a matrix as a program output (forces eager copy-out).
    pub fn mark_output(&mut self, m: MatrixId) {
        if !self.outputs.contains(&m) {
            self.outputs.push(m);
        }
    }

    /// Finish the plan.
    #[must_use]
    pub fn build(self) -> Plan {
        Plan { steps: self.steps, outputs: self.outputs }
    }
}

/// Kind of a scheduling hazard between two unordered steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Both steps write the matrix; the surviving value depends on
    /// scheduling order.
    WriteWrite,
    /// One step reads what the other writes with no ordering edge; the
    /// reader may observe either the old or the new value.
    ReadWrite,
}

impl std::fmt::Display for HazardKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HazardKind::WriteWrite => write!(f, "write-write"),
            HazardKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// A pair of steps whose accesses to one matrix are not ordered by the
/// dependence DAG — the plan's result could depend on the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hazard {
    /// What kind of conflict.
    pub kind: HazardKind,
    /// The two conflicting steps (`first < second` in schedule order; for
    /// read-write hazards `first` is not necessarily the writer).
    pub steps: (StepId, StepId),
    /// The matrix both steps touch.
    pub matrix: MatrixId,
}

/// Build the transitive ordering relation of a plan's dependence DAG.
#[must_use]
pub fn reachability(plan: &Plan) -> petal_rt::Reachability {
    petal_rt::Reachability::from_deps(plan.steps().len(), |i| {
        plan.steps()[i].deps.iter().map(|d| d.0).collect::<Vec<_>>()
    })
}

/// The hazard/race pass: report every pair of steps that touch the same
/// matrix — at least one writing — with **no ordering path** between them in
/// the dependence DAG. A clean (empty) result means the plan's output is
/// independent of scheduling, which is the precondition both for the
/// determinism contract and for [`analyze_movement`]'s schedule-order
/// consumer scan being sound.
///
/// Granularity is the whole `MatrixId`: two writers of disjoint regions of
/// one matrix must still be ordered (or split the matrix), matching the
/// conservative contract `NativeStep::reads`/`writes` already declares.
#[must_use]
pub fn hazards(plan: &Plan) -> Vec<Hazard> {
    let steps = plan.steps();
    let reach = reachability(plan);
    // Group accesses per matrix: (step index, is_write).
    let mut by_matrix: std::collections::BTreeMap<MatrixId, Vec<(usize, bool)>> =
        std::collections::BTreeMap::new();
    for (i, step) in steps.iter().enumerate() {
        for m in step.reads() {
            by_matrix.entry(*m).or_default().push((i, false));
        }
        for m in step.writes() {
            by_matrix.entry(*m).or_default().push((i, true));
        }
    }
    let mut found = Vec::new();
    for (matrix, accesses) in by_matrix {
        for (ai, &(i, iw)) in accesses.iter().enumerate() {
            for &(j, jw) in &accesses[ai + 1..] {
                if i == j || (!iw && !jw) || reach.ordered(i, j) {
                    continue;
                }
                let kind = if iw && jw { HazardKind::WriteWrite } else { HazardKind::ReadWrite };
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                found.push(Hazard { kind, steps: (StepId(a), StepId(b)), matrix });
            }
        }
    }
    found.sort_by_key(|h| (h.steps, h.matrix));
    found.dedup();
    found
}

/// The §3.2 analysis: classify every OpenCL-placed stencil output.
///
/// Returns one entry per step; `None` for steps that produce nothing on the
/// device (pure-CPU or native steps).
#[must_use]
pub fn analyze_movement(plan: &Plan) -> Vec<Option<CopyOutPolicy>> {
    let steps = plan.steps();
    let mut policies = vec![None; steps.len()];
    for (i, step) in steps.iter().enumerate() {
        let StepKind::Stencil(s) = &step.kind else { continue };
        if !s.placement.uses_opencl() {
            continue;
        }
        // A fractional split always computes part of the matrix on the CPU,
        // so the device part must consolidate back into host memory.
        if matches!(s.placement, Placement::Split { .. }) {
            policies[i] = Some(CopyOutPolicy::Eager);
            continue;
        }
        let mut cpu_consumer = plan.outputs().contains(&s.output);
        let mut gpu_consumer = false;
        let mut dynamic_consumer = false;
        for later in &steps[i + 1..] {
            match &later.kind {
                StepKind::Stencil(t) => {
                    if t.inputs.contains(&s.output) {
                        if t.placement.uses_opencl() {
                            gpu_consumer = true;
                        } else {
                            cpu_consumer = true;
                        }
                    }
                    if t.output == s.output {
                        break; // overwritten; later consumers see new data
                    }
                }
                StepKind::Native(n) => {
                    if n.reads.contains(&s.output) {
                        dynamic_consumer = true;
                    }
                    if n.writes.contains(&s.output) {
                        break;
                    }
                }
            }
        }
        policies[i] = Some(if cpu_consumer {
            CopyOutPolicy::Eager
        } else if dynamic_consumer {
            CopyOutPolicy::Lazy
        } else if gpu_consumer {
            CopyOutPolicy::Reused
        } else {
            // Nothing consumes it (dead value): copy eagerly for safety.
            CopyOutPolicy::Eager
        });
    }
    policies
}

/// Map a configuration to a placement for the named transform, following
/// the paper's GPU choice representation (§5.3): selector value 0 = CPU
/// backend, 1 = OpenCL with global memory, 2 = OpenCL with the local-memory
/// variant; plus the `*.local_size` and `*.gpu_ratio` tunables.
#[must_use]
pub fn placement_from_config(
    cfg: &Config,
    transform: &str,
    input_size: u64,
    machine: &MachineProfile,
    rule: &StencilRule,
    out_rows: usize,
) -> Placement {
    let opencl_ok = machine.has_opencl() && rule.opencl_verdict().is_ok();
    let mut choice = cfg.select(transform, input_size);
    if !opencl_ok {
        choice = 0;
    }
    if choice == 2 && !rule.has_local_memory_variant() {
        choice = 1;
    }
    let chunks = cpu_chunks(cfg, machine, out_rows);
    if choice == 0 {
        return Placement::Cpu { chunks };
    }
    let local_memory = choice == 2;
    let max_wg = machine.gpu.as_ref().map_or(1, |g| g.max_work_group);
    let local_size =
        cfg.tunable_or(&format!("{transform}.local_size"), 128).clamp(1, max_wg as i64) as usize;
    let ratio = cfg.tunable_or(&format!("{transform}.gpu_ratio"), 8).clamp(0, 8) as u8;
    match ratio {
        0 => Placement::Cpu { chunks },
        8 => Placement::OpenCl { local_memory, local_size },
        e => Placement::Split { gpu_eighths: e, local_memory, local_size, cpu_chunks: chunks },
    }
}

/// CPU chunk count from the `split_rows` and `sequential_cutoff` tunables.
#[must_use]
pub fn cpu_chunks(cfg: &Config, machine: &MachineProfile, out_rows: usize) -> usize {
    let seq_cutoff = cfg.tunable_or("sequential_cutoff", 64).max(1) as usize;
    if out_rows <= seq_cutoff {
        return 1;
    }
    let split_rows = cfg.tunable_or("split_rows", 0);
    let chunks =
        if split_rows > 0 { out_rows.div_ceil(split_rows as usize) } else { machine.cpu.cores * 2 };
    chunks.clamp(1, out_rows.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Selector, Tunable};
    use crate::stencil::{AccessPattern, StencilInput};

    fn rule(access: AccessPattern) -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "r".into(),
            inputs: vec![StencilInput { index: 0, access }],
            flops_per_output: 1.0,
            body_c: "result = IN0(x, y);".into(),
            elem: Arc::new(|env, x, y| env.inputs[0].at(x, y)),
            native_only_body: false,
        })
    }

    fn stencil_step(input: MatrixId, output: MatrixId, placement: Placement) -> StencilStep {
        StencilStep {
            rule: rule(AccessPattern::Point),
            inputs: vec![input],
            output,
            out_dims: (4, 4),
            user_scalars: vec![],
            placement,
        }
    }

    fn ids() -> (MatrixId, MatrixId, MatrixId) {
        let mut w = World::new();
        let a = w.alloc(petal_blas::Matrix::zeros(4, 4));
        let b = w.alloc(petal_blas::Matrix::zeros(4, 4));
        let c = w.alloc(petal_blas::Matrix::zeros(4, 4));
        (a, b, c)
    }

    const GPU: Placement = Placement::OpenCl { local_memory: false, local_size: 64 };
    const CPU: Placement = Placement::Cpu { chunks: 2 };

    #[test]
    fn gpu_to_cpu_consumer_is_eager() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        p.stencil(stencil_step(b, c, CPU), &[s1]);
        let plan = p.build();
        let pol = analyze_movement(&plan);
        assert_eq!(pol[0], Some(CopyOutPolicy::Eager));
        assert_eq!(pol[1], None, "CPU steps produce nothing on the device");
    }

    #[test]
    fn gpu_to_gpu_consumer_is_reused() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        p.stencil(stencil_step(b, c, GPU), &[s1]);
        let pol = analyze_movement(&p.build());
        assert_eq!(pol[0], Some(CopyOutPolicy::Reused));
    }

    #[test]
    fn dynamic_consumer_is_lazy() {
        let (a, b, _) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        p.native(
            NativeStep {
                label: "dyn".into(),
                reads: vec![b],
                writes: vec![],
                run: Box::new(|_, _| Charge::Secs(0.0)),
            },
            &[s1],
        );
        let pol = analyze_movement(&p.build());
        assert_eq!(pol[0], Some(CopyOutPolicy::Lazy));
    }

    #[test]
    fn program_output_forces_eager_even_with_gpu_consumers() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        p.stencil(stencil_step(b, c, GPU), &[s1]);
        p.mark_output(b);
        let pol = analyze_movement(&p.build());
        assert_eq!(pol[0], Some(CopyOutPolicy::Eager));
    }

    #[test]
    fn split_placement_is_always_eager() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let split =
            Placement::Split { gpu_eighths: 6, local_memory: false, local_size: 64, cpu_chunks: 2 };
        let s1 = p.stencil(stencil_step(a, b, split), &[]);
        p.stencil(stencil_step(b, c, GPU), &[s1]);
        let pol = analyze_movement(&p.build());
        assert_eq!(pol[0], Some(CopyOutPolicy::Eager));
    }

    #[test]
    fn overwrite_cuts_consumer_search() {
        let (a, b, _) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        // b overwritten on the GPU, then read by the CPU: only the second
        // producer must copy out eagerly.
        let s2 = p.stencil(stencil_step(a, b, GPU), &[s1]);
        let (_, _, c) = ids();
        p.stencil(stencil_step(b, c, CPU), &[s2]);
        let pol = analyze_movement(&p.build());
        assert_eq!(pol[0], Some(CopyOutPolicy::Eager), "dead value copied for safety");
        assert_eq!(pol[1], Some(CopyOutPolicy::Eager));
    }

    #[test]
    fn placement_mapping_respects_machine_and_rule() {
        let mut cfg = Config::new();
        cfg.set_selector("t", Selector::constant(2, 3));
        cfg.set_tunable("t.local_size", Tunable::new(256, 1, 1024));
        cfg.set_tunable("t.gpu_ratio", Tunable::new(8, 0, 8));
        let desktop = MachineProfile::desktop();
        let stencil_rule = rule(AccessPattern::Stencil { w: 3, h: 3 });
        let p = placement_from_config(&cfg, "t", 1000, &desktop, &stencil_rule, 100);
        assert_eq!(p, Placement::OpenCl { local_memory: true, local_size: 256 });
        // Local-memory choice degrades to global for rules without the variant.
        let point_rule = rule(AccessPattern::Point);
        let p = placement_from_config(&cfg, "t", 1000, &desktop, &point_rule, 100);
        assert_eq!(p, Placement::OpenCl { local_memory: false, local_size: 256 });
        // No OpenCL on the machine: always CPU.
        let mut no_gpu = desktop.clone();
        no_gpu.gpu = None;
        let p = placement_from_config(&cfg, "t", 1000, &no_gpu, &stencil_rule, 100);
        assert!(matches!(p, Placement::Cpu { .. }));
        // Fractional ratio becomes a split.
        cfg.set_tunable("t.gpu_ratio", Tunable::new(6, 0, 8));
        let p = placement_from_config(&cfg, "t", 1000, &desktop, &stencil_rule, 100);
        assert!(matches!(p, Placement::Split { gpu_eighths: 6, .. }));
    }

    #[test]
    #[should_panic(expected = "duplicate dependency")]
    fn duplicate_dependency_panics() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, CPU), &[]);
        p.stencil(stencil_step(b, c, CPU), &[s1, s1]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn self_referencing_dependency_panics() {
        let (a, b, _) = ids();
        let mut p = PlanBuilder::new();
        // The id a step *would* get, passed as its own dependency.
        p.stencil(stencil_step(a, b, CPU), &[StepId(0)]);
    }

    #[test]
    fn step_read_write_sets() {
        let (a, b, _) = ids();
        let mut p = PlanBuilder::new();
        p.stencil(stencil_step(a, b, CPU), &[]);
        p.native(
            NativeStep {
                label: "n".into(),
                reads: vec![b],
                writes: vec![a],
                run: Box::new(|_, _| Charge::Secs(0.0)),
            },
            &[],
        );
        let plan = p.build();
        assert_eq!(plan.steps()[0].reads(), &[a]);
        assert_eq!(plan.steps()[0].writes(), &[b]);
        assert_eq!(plan.steps()[1].reads(), &[b]);
        assert_eq!(plan.steps()[1].writes(), &[a]);
        assert_eq!(plan.steps()[0].describe(), "r");
        assert_eq!(plan.steps()[1].describe(), "n");
    }

    #[test]
    fn ordered_plan_has_no_hazards() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, GPU), &[]);
        p.stencil(stencil_step(b, c, CPU), &[s1]);
        assert!(hazards(&p.build()).is_empty());
    }

    #[test]
    fn unordered_writers_are_a_ww_hazard() {
        let (a, b, _) = ids();
        let mut p = PlanBuilder::new();
        let _s1 = p.stencil(stencil_step(a, b, CPU), &[]);
        let _s2 = p.stencil(stencil_step(a, b, CPU), &[]);
        let hs = hazards(&p.build());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HazardKind::WriteWrite);
        assert_eq!(hs[0].steps, (StepId(0), StepId(1)));
        assert_eq!(hs[0].matrix, b);
    }

    #[test]
    fn unordered_reader_and_writer_are_a_rw_hazard() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let _producer = p.stencil(stencil_step(a, b, CPU), &[]);
        // Reads b without depending on its producer.
        p.stencil(stencil_step(b, c, CPU), &[]);
        let hs = hazards(&p.build());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HazardKind::ReadWrite);
        assert_eq!(hs[0].matrix, b);
    }

    #[test]
    fn transitive_ordering_suppresses_hazard() {
        let (a, b, c) = ids();
        let mut p = PlanBuilder::new();
        let s1 = p.stencil(stencil_step(a, b, CPU), &[]);
        let s2 = p.stencil(stencil_step(b, c, CPU), &[s1]);
        // Writes b again, ordered only transitively through s2.
        p.stencil(stencil_step(c, b, CPU), &[s2]);
        assert!(hazards(&p.build()).is_empty());
    }

    #[test]
    fn in_place_native_step_is_not_a_self_hazard() {
        let (a, _, _) = ids();
        let mut p = PlanBuilder::new();
        p.native(
            NativeStep {
                label: "inplace".into(),
                reads: vec![a],
                writes: vec![a],
                run: Box::new(|_, _| Charge::Secs(0.0)),
            },
            &[],
        );
        assert!(hazards(&p.build()).is_empty());
    }

    #[test]
    fn chunking_respects_sequential_cutoff() {
        let m = MachineProfile::desktop();
        let mut cfg = Config::new();
        cfg.set_tunable("sequential_cutoff", Tunable::new(128, 1, 1 << 20));
        assert_eq!(cpu_chunks(&cfg, &m, 100), 1);
        assert!(cpu_chunks(&cfg, &m, 1000) > 1);
        cfg.set_tunable("split_rows", Tunable::new(100, 1, 1 << 20));
        assert_eq!(cpu_chunks(&cfg, &m, 1000), 10);
    }
}

//! Property tests over the code generator: the scratchpad (tiled) execution
//! path must be bit-identical to the global path for arbitrary stencil
//! shapes, geometries and work-group sizes, and launch-geometry encoding
//! must round-trip.

use petal_core::codegen::{
    decode_scalars, encode_scalars, generate_source, kernel_work, run_global, run_tiled, Geometry,
};
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use proptest::prelude::*;
use std::sync::Arc;

/// A box-sum stencil of shape `bw × bh` over one input.
fn box_rule(bw: usize, bh: usize) -> StencilRule {
    StencilRule {
        name: "box_sum".into(),
        inputs: vec![StencilInput { index: 0, access: AccessPattern::Stencil { w: bw, h: bh } }],
        flops_per_output: (bw * bh) as f64,
        body_c:
            "for (int j = 0; j < BH; j++) for (int i = 0; i < BW; i++) result += IN0(x+i, y+j);"
                .into(),
        elem: Arc::new(move |env, x, y| {
            let mut acc = 0.0;
            for j in 0..bh {
                for i in 0..bw {
                    acc += env.inputs[0].at(x + i, y + j);
                }
            }
            acc
        }),
        native_only_body: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_matches_global_for_any_shape(
        bw in 1usize..6,
        bh in 1usize..6,
        out_w in 1usize..24,
        out_h in 1usize..24,
        local_size in 1usize..200,
        row_frac in 0.0f64..1.0,
    ) {
        let rule = box_rule(bw, bh);
        let in_w = out_w + bw - 1;
        let in_h = out_h + bh - 1;
        let input: Vec<f64> = (0..in_w * in_h).map(|i| (i % 97) as f64 - 48.0).collect();
        let row0 = ((out_h as f64) * row_frac) as usize;
        let geom = Geometry {
            out_w,
            out_h,
            row0,
            row1: out_h,
            in_dims: vec![(in_w, in_h)],
            local_size,
        };
        let mut a = vec![0.0; out_w * out_h];
        let mut b = vec![0.0; out_w * out_h];
        run_global(&rule, &[(&input, in_w, in_h)], &[], &mut a, &geom);
        run_tiled(&rule, &[(&input, in_w, in_h)], &[], &mut b, &geom);
        prop_assert_eq!(a, b, "staging must be bit-transparent");
    }

    #[test]
    fn scalar_encoding_roundtrips(
        out_w in 1usize..5000,
        out_h in 1usize..5000,
        row0 in 0usize..100,
        extra in 0usize..100,
        local_size in 1usize..1024,
        dims in proptest::collection::vec((1usize..4000, 1usize..4000), 0..4),
        user in proptest::collection::vec(-1e9f64..1e9, 0..6),
    ) {
        let geom = Geometry {
            out_w,
            out_h: out_h.max(row0 + extra + 1),
            row0,
            row1: row0 + extra + 1,
            in_dims: dims,
            local_size,
        };
        let enc = encode_scalars(&geom, &user);
        let (back, back_user) = decode_scalars(&enc);
        prop_assert_eq!(back, geom);
        prop_assert_eq!(back_user, user);
    }

    #[test]
    fn generated_source_hash_is_stable_and_variant_sensitive(
        bw in 2usize..8,
        bh in 1usize..8,
    ) {
        let rule = box_rule(bw, bh);
        let plain = generate_source(&rule, false);
        prop_assert_eq!(&plain, &generate_source(&rule, false));
        let local = generate_source(&rule, true);
        prop_assert_ne!(&plain, &local, "variants must hash differently");
        prop_assert!(local.contains("barrier(CLK_LOCAL_MEM_FENCE);"));
    }

    #[test]
    fn work_descriptors_are_nonnegative_and_variant_consistent(
        bw in 1usize..8,
        bh in 1usize..8,
        out in 2usize..200,
        local_size in 1usize..512,
    ) {
        let rule = box_rule(bw, bh);
        let geom = Geometry {
            out_w: out,
            out_h: out,
            row0: 0,
            row1: out,
            in_dims: vec![(out + bw - 1, out + bh - 1)],
            local_size,
        };
        let plain = kernel_work(&rule, &geom, false);
        let local = kernel_work(&rule, &geom, true);
        for w in [&plain, &local] {
            prop_assert!(w.work_items >= 0.0);
            prop_assert!(w.global_read_bytes >= 0.0);
            prop_assert!(w.redundant_read_bytes >= 0.0);
            prop_assert!(w.local_fill_bytes >= 0.0);
            prop_assert!(w.groups >= 1.0);
        }
        prop_assert_eq!(plain.work_items, local.work_items);
        prop_assert!(!plain.uses_local_memory);
        if bw * bh > 1 {
            prop_assert!(local.uses_local_memory);
            prop_assert_eq!(local.redundant_read_bytes, 0.0,
                "staged inputs leave no redundant global reads");
        }
    }
}

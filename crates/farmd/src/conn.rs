//! Per-connection protocol handling: the `HELLO` handshake, then the
//! worker- or client-side serve loop depending on what the peer turns
//! out to be.
//!
//! Every connection gets one reader thread (this module) built over a
//! socket **read timeout**: reads wake every [`READ_TIMEOUT`] to check
//! the dispatcher's stop flag, so shutdown never waits on a silent peer.
//! Writers live behind per-connection mutexes ([`LineWriter`]) shared
//! with the scheduler (worker `INIT`/`JOB` sends) and with other readers
//! (a worker's `RESULT` forwarded to a client), and every send happens
//! **outside** the dispatcher's global lock.

use crate::Shared;
use petal_farm::net::FarmStream;
use petal_farm::wire::{
    negotiate, Message, WireEncoder, WireError, MIN_WIRE_VERSION, RESUME_WIRE_VERSION, WIRE_VERSION,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Socket read timeout: the cadence at which reader threads notice the
/// stop flag (and handshake deadlines).
pub(crate) const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Socket write timeout on every dispatcher connection. A peer that
/// stops draining its receive buffer turns a blocked `write(2)` into an
/// error after this long, and the error takes the ordinary loss path
/// (worker drain + re-queue, or client detach) — the scheduler thread
/// must never be parked forever inside a send while holding a writer
/// mutex.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a freshly accepted connection gets to complete its
/// handshake before being dropped as hostile/dead.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(10);

/// The write half of one connection: a socket clone plus reusable
/// encode buffers, behind a mutex so whole lines never interleave.
pub(crate) struct LineWriter {
    stream: FarmStream,
    enc: WireEncoder,
    line: String,
}

impl LineWriter {
    pub(crate) fn new(stream: FarmStream) -> Self {
        LineWriter { stream, enc: WireEncoder::default(), line: String::new() }
    }

    pub(crate) fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        self.enc.encode_into(msg, &mut self.line);
        self.line.push('\n');
        self.stream.write_all(self.line.as_bytes())?;
        self.stream.flush()
    }

    /// Unblock the connection's reader thread.
    pub(crate) fn shutdown(&self) {
        self.stream.shutdown();
    }
}

/// What one patient read produced.
enum Incoming {
    /// A decoded message.
    Msg(Message),
    /// Peer closed the connection (EOF, or EOF mid-line).
    Eof,
    /// The dispatcher is shutting down (or a handshake deadline passed).
    Stopped,
}

/// Read one wire line, tolerating read-timeout wakeups: partial bytes
/// accumulate in `buf` across timeouts (the socket timeout can fire
/// mid-line), and each wakeup checks the stop flag and the optional
/// deadline.
fn read_msg(
    reader: &mut BufReader<FarmStream>,
    buf: &mut Vec<u8>,
    shared: &Shared,
    deadline: Option<Instant>,
) -> Result<Incoming, WireError> {
    buf.clear();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(0) => return Ok(Incoming::Eof),
            Ok(_) if buf.ends_with(b"\n") => {
                let line = std::str::from_utf8(&buf[..buf.len() - 1])
                    .map_err(|_| WireError { message: "record is not UTF-8".to_owned() })?;
                return Message::decode(line).map(Incoming::Msg);
            }
            // A read returning data without a newline means EOF landed
            // mid-line (a truncated frame): treat as a close.
            Ok(_) => return Ok(Incoming::Eof),
            Err(e) if FarmStream::is_timeout(&e) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Ok(Incoming::Stopped);
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(Incoming::Stopped);
                }
                // Partial bytes (if any) stay in `buf`; keep reading.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(Incoming::Eof),
        }
    }
}

/// Serve one accepted connection to completion. Runs on its own thread.
pub(crate) fn serve_conn(shared: &Arc<Shared>, stream: FarmStream, peer: &str) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if write_half.set_write_timeout(Some(WRITE_TIMEOUT)).is_err() {
        return;
    }
    let writer = Arc::new(Mutex::new(LineWriter::new(write_half)));
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();

    let goodbye = |reason: String| {
        let mut w = writer.lock().expect("writer lock");
        let _ = w.send(&Message::Goodbye { reason });
        w.shutdown();
    };

    // Handshake: HELLO in, HELLO out, negotiate. Anything else is
    // answered with a GOODBYE diagnostic — version skew and protocol
    // confusion must never surface as a silent close.
    let deadline = Some(Instant::now() + HANDSHAKE_PATIENCE);
    let theirs = match read_msg(&mut reader, &mut buf, shared, deadline) {
        Ok(Incoming::Msg(Message::Hello { min_version, max_version })) => {
            (min_version, max_version)
        }
        Ok(Incoming::Msg(other)) => {
            return goodbye(format!("expected HELLO first, got {}", tag_of(&other)));
        }
        Ok(Incoming::Eof | Incoming::Stopped) => return,
        Err(e) => return goodbye(format!("bad HELLO: {e}")),
    };
    if writer.lock().expect("writer lock").send(&Message::hello()).is_err() {
        return;
    }
    let negotiated = match negotiate((MIN_WIRE_VERSION, WIRE_VERSION), theirs) {
        Ok(v) => v,
        Err(e) => return goodbye(e.to_string()),
    };

    // Role detection: the first post-HELLO message decides what this
    // connection is.
    match read_msg(&mut reader, &mut buf, shared, deadline) {
        Ok(Incoming::Msg(Message::Register { name, slots, pid })) => {
            serve_worker(shared, reader, buf, &writer, &name, slots, pid, peer);
        }
        Ok(Incoming::Msg(Message::Init { version, bench_spec, machine })) => {
            serve_client(
                shared,
                reader,
                buf,
                &writer,
                version,
                &bench_spec,
                *machine,
                peer,
                negotiated,
            );
        }
        Ok(Incoming::Msg(Message::Resume { token, nonce })) => {
            serve_resumed_client(shared, reader, buf, &writer, token, nonce, peer);
        }
        Ok(Incoming::Msg(first @ (Message::RegGet { .. } | Message::RegPut { .. }))) => {
            if shared.hosts_registry() {
                serve_registry(shared, reader, buf, &writer, first, peer);
            } else {
                goodbye("no registry hosted (start petal-farmd with --registry <dir>)".to_owned());
            }
        }
        Ok(Incoming::Msg(other)) => {
            goodbye(format!(
                "expected REGISTER, INIT, RESUME or a registry request after HELLO, got {}",
                tag_of(&other)
            ));
        }
        Ok(Incoming::Eof | Incoming::Stopped) => {}
        Err(e) => goodbye(format!("bad record after HELLO: {e}")),
    }
}

/// A message's wire tag, for diagnostics.
fn tag_of(msg: &Message) -> &'static str {
    match msg {
        Message::Init { .. } => "INIT",
        Message::Ready { .. } => "READY",
        Message::Job { .. } => "JOB",
        Message::Result { .. } => "RESULT",
        Message::Done => "DONE",
        Message::Hello { .. } => "HELLO",
        Message::Register { .. } => "REGISTER",
        Message::Heartbeat { .. } => "HEARTBEAT",
        Message::Goodbye { .. } => "GOODBYE",
        Message::RegGet { .. } => "REG_GET",
        Message::RegPut { .. } => "REG_PUT",
        Message::RegHit { .. } => "REG_HIT",
        Message::RegMiss { .. } => "REG_MISS",
        Message::Session { .. } => "SESSION",
        Message::Resume { .. } => "RESUME",
    }
}

/// Registry-client serve loop: answer `REG_GET`/`REG_PUT` requests from
/// the hosted store until the client says `DONE` or disconnects. Each
/// request is one synchronous exchange — the store lock inside
/// `serve_registry_request` is what serializes concurrent publishers.
fn serve_registry(
    shared: &Arc<Shared>,
    mut reader: BufReader<FarmStream>,
    mut buf: Vec<u8>,
    writer: &Arc<Mutex<LineWriter>>,
    first: Message,
    peer: &str,
) {
    eprintln!("petal-farmd: registry client connected from {peer}");
    let mut next = Some(first);
    loop {
        let msg = match next.take() {
            Some(m) => m,
            None => match read_msg(&mut reader, &mut buf, shared, None) {
                Ok(Incoming::Msg(m)) => m,
                Ok(Incoming::Eof) => return,
                Ok(Incoming::Stopped) => {
                    let mut w = writer.lock().expect("writer lock");
                    let _ =
                        w.send(&Message::Goodbye { reason: "dispatcher shutting down".to_owned() });
                    w.shutdown();
                    return;
                }
                Err(e) => {
                    let mut w = writer.lock().expect("writer lock");
                    let _ = w.send(&Message::Goodbye { reason: format!("protocol error: {e}") });
                    w.shutdown();
                    return;
                }
            },
        };
        match msg {
            request @ (Message::RegGet { .. } | Message::RegPut { .. }) => {
                let replies = shared.serve_registry_request(&request);
                let mut w = writer.lock().expect("writer lock");
                for reply in &replies {
                    if w.send(reply).is_err() {
                        w.shutdown();
                        return;
                    }
                }
            }
            Message::Done => return,
            Message::Heartbeat { .. } => {}
            other => {
                let mut w = writer.lock().expect("writer lock");
                let _ = w.send(&Message::Goodbye {
                    reason: format!("unexpected {} from registry client", tag_of(&other)),
                });
                w.shutdown();
                return;
            }
        }
    }
}

/// Worker-side serve loop: admit to the registry, then judge every
/// `RESULT` through it and forward the fresh ones to their sessions.
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    shared: &Arc<Shared>,
    mut reader: BufReader<FarmStream>,
    mut buf: Vec<u8>,
    writer: &Arc<Mutex<LineWriter>>,
    name: &str,
    slots: u64,
    pid: u64,
    peer: &str,
) {
    let id = shared.admit_worker(name, slots, pid, Arc::clone(writer));
    eprintln!("petal-farmd: worker {id} `{name}` joined from {peer} (slots {slots}, pid {pid})");
    loop {
        match read_msg(&mut reader, &mut buf, shared, None) {
            Ok(Incoming::Msg(msg)) => {
                let now = Instant::now();
                match msg {
                    Message::Heartbeat { .. } | Message::Ready { .. } => {
                        if !shared.touch_worker(id, now) {
                            return; // drained while we read; conn is closing
                        }
                    }
                    Message::Result { index, outcome } => {
                        match shared.complete_job(id, index, now) {
                            Some((session, key_index)) => {
                                shared.forward_result(session, key_index, outcome);
                            }
                            None => {
                                // Duplicate/stale answers are dropped;
                                // disorder already tore the worker down.
                                if shared.worker_gone(id) {
                                    return;
                                }
                            }
                        }
                    }
                    Message::Goodbye { reason } => {
                        shared.lose_worker(id, &format!("worker left: {reason}"), false);
                        return;
                    }
                    other => {
                        shared.lose_worker(
                            id,
                            &format!("unexpected {} from worker", tag_of(&other)),
                            true,
                        );
                        return;
                    }
                }
            }
            Ok(Incoming::Eof) => {
                shared.lose_worker(id, "connection closed", false);
                return;
            }
            Ok(Incoming::Stopped) => {
                shared.lose_worker(id, "dispatcher shutting down", true);
                return;
            }
            Err(e) => {
                shared.lose_worker(id, &format!("protocol error: {e}"), true);
                return;
            }
        }
    }
}

/// Client-side serve loop: open a session, enqueue its `JOB`s, and let
/// the scheduler and worker readers push `RESULT`s back through the
/// session's writer.
#[allow(clippy::too_many_arguments)]
fn serve_client(
    shared: &Arc<Shared>,
    reader: BufReader<FarmStream>,
    buf: Vec<u8>,
    writer: &Arc<Mutex<LineWriter>>,
    version: u64,
    bench_spec: &str,
    machine: petal_gpu::profile::MachineProfile,
    peer: &str,
    negotiated: u64,
) {
    // Validate the spec *here*, not on a worker: a bad spec must bounce
    // the client, not cascade through the fleet killing workers.
    if let Err(e) = petal_apps::benchmark_from_spec(bench_spec) {
        let mut w = writer.lock().expect("writer lock");
        let _ =
            w.send(&Message::Goodbye { reason: format!("bad benchmark spec `{bench_spec}`: {e}") });
        w.shutdown();
        return;
    }
    // A client that negotiated the resume-capable wire version gets a
    // session token and survives dispatcher bounces; older clients get
    // the pre-v4 close-on-disconnect behavior.
    let resumable = negotiated >= RESUME_WIRE_VERSION;
    let (session, nonce) = shared.open_session(bench_spec, machine, Arc::clone(writer), resumable);
    eprintln!("petal-farmd: session {session} `{bench_spec}` opened from {peer}");
    // READY echoes the client's INIT version, mirroring the pipe worker.
    // The SESSION credentials follow immediately for resumable clients.
    let sent = {
        let mut w = writer.lock().expect("writer lock");
        w.send(&Message::Ready { version }).is_ok()
            && (!resumable || w.send(&Message::Session { token: session, nonce }).is_ok())
    };
    if !sent {
        // The client never received its token, so nothing can resume
        // this session: close it outright rather than detach.
        shared.close_session(session, "client write failed");
        return;
    }
    client_loop(shared, reader, buf, writer, session, 1);
}

/// Serve a client re-attaching to a detached (or journal-recovered)
/// session with a `RESUME` token instead of a fresh `INIT`.
fn serve_resumed_client(
    shared: &Arc<Shared>,
    reader: BufReader<FarmStream>,
    buf: Vec<u8>,
    writer: &Arc<Mutex<LineWriter>>,
    token: u64,
    nonce: u64,
    peer: &str,
) {
    let epoch = match shared.resume_session(token, nonce, Arc::clone(writer)) {
        Ok(epoch) => epoch,
        Err(reason) => {
            let mut w = writer.lock().expect("writer lock");
            let _ = w.send(&Message::Goodbye { reason });
            w.shutdown();
            return;
        }
    };
    let spec = shared.session_spec(token).unwrap_or_default();
    eprintln!("petal-farmd: session {token} `{spec}` resumed from {peer}");
    let sent = {
        let mut w = writer.lock().expect("writer lock");
        w.send(&Message::Ready { version: WIRE_VERSION }).is_ok()
            && w.send(&Message::Session { token, nonce }).is_ok()
    };
    if !sent {
        // The client still holds a valid token; detach and let it try
        // again rather than destroying the session.
        shared.client_gone(token, epoch, "client write failed during resume");
        return;
    }
    client_loop(shared, reader, buf, writer, token, epoch);
}

/// Shared post-handshake client loop. `epoch` is the attach generation
/// this reader belongs to: its disconnect paths go through
/// [`Shared::client_gone`], which no-ops if a newer connection has
/// since resumed the session.
fn client_loop(
    shared: &Arc<Shared>,
    mut reader: BufReader<FarmStream>,
    mut buf: Vec<u8>,
    writer: &Arc<Mutex<LineWriter>>,
    session: u64,
    epoch: u64,
) {
    loop {
        match read_msg(&mut reader, &mut buf, shared, None) {
            Ok(Incoming::Msg(Message::Job { index, job })) => {
                shared.enqueue_job(session, index, job);
            }
            Ok(Incoming::Msg(Message::Done)) => {
                shared.close_session(session, "client done");
                return;
            }
            Ok(Incoming::Msg(Message::Heartbeat { .. })) => {}
            Ok(Incoming::Msg(other)) => {
                let reason = format!("unexpected {} from client", tag_of(&other));
                let mut w = writer.lock().expect("writer lock");
                let _ = w.send(&Message::Goodbye { reason: reason.clone() });
                w.shutdown();
                drop(w);
                shared.close_session(session, &reason);
                return;
            }
            Ok(Incoming::Eof) => {
                shared.client_gone(session, epoch, "client disconnected");
                return;
            }
            Ok(Incoming::Stopped) => {
                // A hard stop (abort) must *detach*, not close: closing
                // would journal the session away and defeat recovery.
                shared.client_gone(session, epoch, "dispatcher shutting down");
                return;
            }
            Err(e) => {
                shared.close_session(session, &format!("protocol error: {e}"));
                return;
            }
        }
    }
}

//! A fault-injection TCP proxy for churn tests: sits between a peer and
//! an upstream endpoint, forwards line-delimited wire frames, and
//! misbehaves at scripted points — dropping the connection, delaying,
//! duplicating, or truncating frames.
//!
//! The proxy frames on newlines (the wire format is line-delimited), so
//! faults hit whole protocol records deterministically: "kill the link
//! after the 3rd RESULT" is `CloseAfterFrames(3)` on a connection whose
//! upstream-bound traffic is RESULTs. Scripts are per accepted
//! connection: connection *k* runs `scripts[k]`; connections beyond the
//! script list forward cleanly. [`FaultProxy::start_scripted`] scripts
//! each direction independently ([`ConnScript`]), so tests can also
//! corrupt *downstream* traffic — a dispatcher→worker `JOB` truncated
//! mid-write, say. The determinism tests route workers
//! through the proxy and assert the tuner's output is bit-identical to a
//! fault-free run — the whole point of the farm's retry design.

use petal_farm::net::{Endpoint, FarmListener, FarmStream};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted misbehavior, applied to the peer→upstream direction of
/// one proxied connection. Frame counts are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward this many frames, then close both directions abruptly.
    CloseAfterFrames(usize),
    /// After forwarding `after` frames, stall `delay` before forwarding
    /// the next one (models a network hiccup long enough to look dead).
    DelayAfterFrames {
        /// Frames forwarded before the stall.
        after: usize,
        /// Length of the stall.
        delay: Duration,
    },
    /// Forward frame number `.0` twice (models a retransmit bug; the
    /// dispatcher must judge the second copy a duplicate and drop it).
    DuplicateFrame(usize),
    /// Forward only the first half of frame number `.0`, then close
    /// (models a crash mid-write; the dispatcher must discard the
    /// partial line, not parse it).
    TruncateFrameAndClose(usize),
}

/// A per-connection fault script, one direction each way. The historical
/// [`FaultProxy::start`] faults only peer→upstream traffic;
/// [`FaultProxy::start_scripted`] can also corrupt the *downstream*
/// (upstream→peer) direction — e.g. truncating a dispatcher→worker `JOB`
/// frame mid-write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnScript {
    /// Faults applied to frames flowing peer → upstream.
    pub peer_to_upstream: Vec<Fault>,
    /// Faults applied to frames flowing upstream → peer.
    pub upstream_to_peer: Vec<Fault>,
}

/// A running proxy. Dropping it stops the accept loop and closes every
/// proxied connection.
pub struct FaultProxy {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral localhost TCP port, forwarding to
    /// `upstream`. Accepted connection *k* (0-based) runs `scripts[k]`
    /// against its peer→upstream traffic.
    ///
    /// # Errors
    /// The listener `bind(2)` failure.
    pub fn start(upstream: Endpoint, scripts: Vec<Vec<Fault>>) -> std::io::Result<FaultProxy> {
        Self::start_scripted(
            upstream,
            scripts
                .into_iter()
                .map(|s| ConnScript { peer_to_upstream: s, ..ConnScript::default() })
                .collect(),
        )
    }

    /// Start a proxy whose connection scripts can fault *either*
    /// direction. Accepted connection *k* (0-based) runs `scripts[k]`;
    /// connections beyond the list forward cleanly.
    ///
    /// # Errors
    /// The listener `bind(2)` failure.
    pub fn start_scripted(
        upstream: Endpoint,
        scripts: Vec<ConnScript>,
    ) -> std::io::Result<FaultProxy> {
        let listener = FarmListener::bind(&Endpoint::Tcp("127.0.0.1:0".to_owned()))?;
        let endpoint = listener.local_endpoint()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_ = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut accepted = 0usize;
            let scripts = scripts; // moved in
            while !stop_.load(Ordering::Relaxed) {
                match listener.poll_accept() {
                    Ok(Some(peer)) => {
                        let script = scripts.get(accepted).cloned().unwrap_or_default();
                        accepted += 1;
                        let stop__ = Arc::clone(&stop_);
                        let upstream_ = upstream.clone();
                        std::thread::spawn(move || proxy_conn(peer, &upstream_, script, &stop__));
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => return,
                }
            }
        });
        Ok(FaultProxy { endpoint, stop, accept_thread: Some(accept_thread) })
    }

    /// Where peers should connect.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Pump one proxied connection, each direction under its own half of
/// the [`ConnScript`].
fn proxy_conn(peer: FarmStream, upstream: &Endpoint, script: ConnScript, stop: &Arc<AtomicBool>) {
    let Ok(up) = FarmStream::connect(upstream) else {
        peer.shutdown();
        return;
    };
    let halves = (peer.try_clone(), up.try_clone(), peer.try_clone(), up.try_clone());
    let (Ok(peer_r), Ok(up_w), Ok(up_r), Ok(peer_w)) = (halves.0, halves.3, halves.1, halves.2)
    else {
        peer.shutdown();
        up.shutdown();
        return;
    };
    // Both pumps hold shutdown handles to *both* sockets so a close in
    // either direction (EOF or injected) tears the whole path down.
    let all = Arc::new((peer, up));
    let ConnScript { peer_to_upstream, upstream_to_peer } = script;
    let outbound = {
        let all = Arc::clone(&all);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(peer_r, up_w, &peer_to_upstream, &all, &stop))
    };
    let inbound = {
        let all = Arc::clone(&all);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(up_r, peer_w, &upstream_to_peer, &all, &stop))
    };
    let _ = outbound.join();
    let _ = inbound.join();
}

/// Forward frames from `from` into `to`, applying `script`.
fn pump(
    from: FarmStream,
    mut to: FarmStream,
    script: &[Fault],
    all: &Arc<(FarmStream, FarmStream)>,
    stop: &Arc<AtomicBool>,
) {
    let close_all = || {
        all.0.shutdown();
        all.1.shutdown();
    };
    if from.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        close_all();
        return;
    }
    let mut reader = BufReader::new(from);
    let mut frame: Vec<u8> = Vec::new();
    let mut forwarded = 0usize; // complete frames forwarded so far
    loop {
        frame.clear();
        // Patient read: timeouts re-check the stop flag, partial bytes
        // accumulate across them.
        loop {
            match reader.read_until(b'\n', &mut frame) {
                Ok(0) => {
                    close_all();
                    return;
                }
                Ok(_) if frame.ends_with(b"\n") => break,
                Ok(_) => {
                    close_all(); // EOF mid-frame
                    return;
                }
                Err(e) if FarmStream::is_timeout(&e) => {
                    if stop.load(Ordering::Relaxed) {
                        close_all();
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    close_all();
                    return;
                }
            }
        }
        let number = forwarded + 1; // the frame about to be forwarded, 1-based
        for fault in script {
            match *fault {
                Fault::CloseAfterFrames(n) if forwarded >= n => {
                    close_all();
                    return;
                }
                Fault::DelayAfterFrames { after, delay } if number == after + 1 => {
                    std::thread::sleep(delay);
                }
                Fault::TruncateFrameAndClose(n) if number == n => {
                    let half = &frame[..frame.len() / 2];
                    let _ = to.write_all(half).and_then(|()| to.flush());
                    close_all();
                    return;
                }
                _ => {}
            }
        }
        let copies = if script.iter().any(|f| matches!(*f, Fault::DuplicateFrame(n) if n == number))
        {
            2
        } else {
            1
        };
        for _ in 0..copies {
            if to.write_all(&frame).and_then(|()| to.flush()).is_err() {
                close_all();
                return;
            }
        }
        forwarded += 1;
    }
}

//! The `petal-farmd` binary: bind the dispatcher and serve until killed.

use petal_farm::net::Endpoint;
use petal_farmd::{Farmd, FarmdOptions};
use std::time::Duration;

const USAGE: &str = "usage: petal-farmd --listen <endpoint> [--listen <endpoint> ...] \
                     [--deadline-ms <ms>] [--registry <dir>] [--journal <dir>]";

fn fail(msg: &str) -> ! {
    eprintln!("petal-farmd: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut endpoints = Vec::new();
    let mut opts = FarmdOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |what: &str| args.next().unwrap_or_else(|| fail(&format!("{what} needs a value")));
        match flag.as_str() {
            "--listen" => match Endpoint::parse(&value("--listen")) {
                Ok(e) => endpoints.push(e),
                Err(e) => fail(&e),
            },
            "--deadline-ms" => match value("--deadline-ms").parse() {
                Ok(ms) => opts.deadline = Duration::from_millis(ms),
                Err(_) => fail("--deadline-ms needs an integer"),
            },
            // Host the tuned-config registry: the value goes through the
            // shared store-endpoint grammar but only the directory form
            // makes sense on the serving side.
            "--registry" => match Endpoint::parse_store(&value("--registry")) {
                Ok(Endpoint::Dir(dir)) => opts.registry = Some(dir),
                Ok(other) => {
                    fail(&format!("--registry must name a directory to host, got `{other}`"))
                }
                Err(e) => fail(&e),
            },
            // Durable dispatcher state: journal session/job lifecycle to
            // this directory and replay it on restart, so a SIGKILLed
            // dispatcher resumes mid-batch instead of losing its queue.
            "--journal" => opts.journal = Some(std::path::PathBuf::from(value("--journal"))),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if endpoints.is_empty() {
        fail("at least one --listen endpoint is required");
    }
    match Farmd::bind(&endpoints, opts) {
        Ok(farmd) => {
            for e in farmd.endpoints() {
                eprintln!("petal-farmd: listening on {e}");
            }
            // Serve until killed; the daemon has no other exit path.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("petal-farmd: bind failed: {e}");
            std::process::exit(1);
        }
    }
}

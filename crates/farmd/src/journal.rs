//! The durable dispatcher journal: an append-only, wire-codec log of
//! session/job lifecycle events, so a dispatcher started with
//! `--journal <dir>` replays to its exact pre-crash queue/session state
//! and resumes mid-batch.
//!
//! ## Record format
//!
//! Journal lines reuse the wire framing ([`Record`]): one record per
//! line, length-prefixed escaped fields, so torn tails and hostile
//! payloads are handled by the same battle-tested codec the sockets
//! use. Where a record carries a whole protocol message (the session's
//! `INIT`, a queued `JOB`, a forwarded `RESULT`), the message's own
//! encoded line is embedded as **one escaped field** — the journal
//! never re-flattens message payloads, so the two codecs cannot drift.
//!
//! | Tag        | Fields                                | Meaning on replay |
//! |------------|---------------------------------------|-------------------|
//! | `J_NEXT`   | next session id                       | floor for the session counter (ids never reused across restarts) |
//! | `J_OPEN`   | session, nonce, embedded `INIT` line  | session accepted; restores spec/machine/resume-nonce |
//! | `J_JOB`    | session, embedded `JOB` line          | job queued (pending unless a later `J_RESULT` answers it) |
//! | `J_ASSIGN` | session, index, worker id             | diagnostics only — assignment dies with the worker connection, so replay re-queues instead |
//! | `J_RESULT` | session, embedded `RESULT` line       | result forwarded; moves the index from pending to done (the full outcome is stored so recovery re-serves it without re-evaluating) |
//! | `J_CLOSE`  | session                               | session retired; drops all its records |
//!
//! ## Durability and crash ordering
//!
//! Every append is a single `write_all` of one full line on an
//! append-only descriptor, so a `SIGKILL` of the dispatcher can lose at
//! most the line being written — never corrupt an earlier one — and
//! [`Journal::open`] tolerates exactly that torn tail by dropping any
//! trailing partial line. (There is no per-append `fsync`: process
//! death does not lose the page cache; only a whole-OS crash can, and
//! that is outside this journal's contract.) A `RESULT` is journaled
//! *before* the socket send, so either the client got the result (and
//! never re-asks) or the journal has it (and recovery re-serves it) —
//! both orders converge to the same merged trajectory.
//!
//! ## Compaction
//!
//! Dead records (answered `J_JOB`s, `J_ASSIGN`s, records of closed
//! sessions) accumulate; once enough do, the journal is rewritten as
//! `J_NEXT` + each open session's `J_OPEN`, pending `J_JOB`s and done
//! `J_RESULT`s, to a temp file that is fsynced and atomically renamed
//! over the log — a crash during compaction leaves either the old or
//! the new file, never a mix.

use petal_farm::wire::{Message, Record, WIRE_VERSION};
use petal_farm::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Dead records tolerated before the log is compacted in place.
const COMPACT_DEAD_THRESHOLD: u64 = 2048;

/// One session as reconstructed from the journal.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredSession {
    /// The session's benchmark spec (from its embedded `INIT`).
    pub bench_spec: String,
    /// The session's machine profile (from its embedded `INIT`).
    pub machine: MachineProfile,
    /// The resume secret handed to the client in its `SESSION` record.
    pub nonce: u64,
    /// Jobs queued and not yet answered, by submission index.
    pub pending: BTreeMap<u64, EvalJob>,
    /// Results already forwarded, by submission index — re-served to a
    /// resuming client instead of re-evaluating.
    pub done: BTreeMap<u64, JobOutcome>,
}

/// The journal's mirror of live dispatcher state: exactly what replay
/// reconstructs, maintained incrementally so compaction can rewrite the
/// log without consulting the dispatcher.
#[derive(Debug, Default)]
pub(crate) struct JournalState {
    /// The next session id a recovered dispatcher may assign.
    pub next_session: u64,
    /// Open sessions by id.
    pub sessions: BTreeMap<u64, RecoveredSession>,
}

/// The append handle plus its mirrored state. Lives inside the
/// dispatcher's global lock, so appends serialize with the state
/// mutations they record.
pub(crate) struct Journal {
    path: PathBuf,
    file: File,
    state: JournalState,
    /// Records in the file that replay would discard; drives compaction.
    dead: u64,
    /// Reusable append buffer.
    line: String,
}

impl Journal {
    /// Open (or create) the journal under `dir`, replay it into a fresh
    /// [`JournalState`], and compact once so a torn tail from the last
    /// crash is truncated away.
    pub(crate) fn open(dir: &Path) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.log");
        let mut state = JournalState { next_session: 1, sessions: BTreeMap::new() };
        let mut dead = 0u64;
        if path.exists() {
            let mut text = String::new();
            File::open(&path)?.read_to_string(&mut text)?;
            let mut rest = text.as_str();
            while let Some(nl) = rest.find('\n') {
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                match replay_line(&mut state, line) {
                    Ok(line_dead) => dead += line_dead,
                    Err(e) => {
                        // Corruption before the tail is not a torn
                        // append; refuse to guess at what was lost.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("journal {} is corrupt: {e} in `{line}`", path.display()),
                        ));
                    }
                }
            }
            if !rest.is_empty() {
                eprintln!(
                    "petal-farmd: journal {} ends in a torn line ({} bytes); \
                     dropping it (crash mid-append)",
                    path.display(),
                    rest.len()
                );
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut journal = Journal { path, file, state, dead, line: String::new() };
        // Always compact on open: truncates any torn tail and starts
        // the new process from a minimal log.
        journal.compact()?;
        Ok(journal)
    }

    /// The replayed state, for recovery in `Farmd::bind`.
    pub(crate) fn state(&self) -> &JournalState {
        &self.state
    }

    /// Record an accepted session (its `INIT` embedded whole).
    pub(crate) fn open_session(
        &mut self,
        session: u64,
        nonce: u64,
        bench_spec: &str,
        machine: &MachineProfile,
    ) {
        let init = Message::Init {
            version: WIRE_VERSION,
            bench_spec: bench_spec.to_owned(),
            machine: Box::new(machine.clone()),
        };
        self.append(&Record::new(
            "J_OPEN",
            vec![session.to_string(), nonce.to_string(), init.encode()],
        ));
        self.state.sessions.insert(
            session,
            RecoveredSession {
                bench_spec: bench_spec.to_owned(),
                machine: machine.clone(),
                nonce,
                pending: BTreeMap::new(),
                done: BTreeMap::new(),
            },
        );
        self.state.next_session = self.state.next_session.max(session + 1);
    }

    /// Record a queued job (its `JOB` embedded whole).
    pub(crate) fn enqueue(&mut self, session: u64, index: u64, job: &EvalJob) {
        let msg = Message::Job { index, job: job.clone() };
        self.append(&Record::new("J_JOB", vec![session.to_string(), msg.encode()]));
        if let Some(s) = self.state.sessions.get_mut(&session) {
            s.pending.insert(index, job.clone());
        }
    }

    /// Record an assignment — diagnostics only; replay ignores it
    /// because the worker connection died with the old process.
    pub(crate) fn assign(&mut self, session: u64, index: u64, worker: u64) {
        self.append(&Record::new(
            "J_ASSIGN",
            vec![session.to_string(), index.to_string(), worker.to_string()],
        ));
        self.dead += 1; // dead the moment it is written
        self.maybe_compact();
    }

    /// Record a forwarded result (its `RESULT` embedded whole). Call
    /// **before** the socket send — see the module docs' crash-ordering
    /// argument.
    pub(crate) fn result(&mut self, session: u64, index: u64, outcome: &JobOutcome) {
        let msg = Message::Result { index, outcome: outcome.clone() };
        self.append(&Record::new("J_RESULT", vec![session.to_string(), msg.encode()]));
        if let Some(s) = self.state.sessions.get_mut(&session) {
            if s.pending.remove(&index).is_some() {
                self.dead += 1; // the J_JOB this answers
            }
            s.done.insert(index, outcome.clone());
        }
        self.maybe_compact();
    }

    /// Record a retired session; every record it wrote is now dead.
    pub(crate) fn close(&mut self, session: u64) {
        self.append(&Record::new("J_CLOSE", vec![session.to_string()]));
        if let Some(s) = self.state.sessions.remove(&session) {
            self.dead += 2 + s.pending.len() as u64 + s.done.len() as u64;
        }
        self.maybe_compact();
    }

    /// Append one record as a full line. Failures are reported, not
    /// fatal: the dispatcher keeps serving (availability over
    /// durability) and the operator sees why recovery would be stale.
    fn append(&mut self, record: &Record) {
        self.line.clear();
        self.line.push_str(&record.encode());
        self.line.push('\n');
        if let Err(e) = self.file.write_all(self.line.as_bytes()) {
            eprintln!("petal-farmd: journal append failed: {e}");
        }
    }

    fn maybe_compact(&mut self) {
        if self.dead >= COMPACT_DEAD_THRESHOLD {
            if let Err(e) = self.compact() {
                eprintln!("petal-farmd: journal compaction failed: {e}");
            }
        }
    }

    /// Rewrite the log as the minimal record set for the mirrored
    /// state: tmp file, fsync, atomic rename.
    fn compact(&mut self) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        let mut out = File::create(&tmp)?;
        let mut text = String::new();
        push_line(&mut text, &Record::new("J_NEXT", vec![self.state.next_session.to_string()]));
        for (&id, s) in &self.state.sessions {
            let init = Message::Init {
                version: WIRE_VERSION,
                bench_spec: s.bench_spec.clone(),
                machine: Box::new(s.machine.clone()),
            };
            push_line(
                &mut text,
                &Record::new("J_OPEN", vec![id.to_string(), s.nonce.to_string(), init.encode()]),
            );
            for (&index, job) in &s.pending {
                let msg = Message::Job { index, job: job.clone() };
                push_line(&mut text, &Record::new("J_JOB", vec![id.to_string(), msg.encode()]));
            }
            for (&index, outcome) in &s.done {
                let msg = Message::Result { index, outcome: outcome.clone() };
                push_line(&mut text, &Record::new("J_RESULT", vec![id.to_string(), msg.encode()]));
            }
        }
        out.write_all(text.as_bytes())?;
        out.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.dead = 0;
        Ok(())
    }
}

fn push_line(out: &mut String, record: &Record) {
    out.push_str(&record.encode());
    out.push('\n');
}

/// Replay one journal line into `state`; returns how many already-dead
/// records this line proves (for the compaction counter).
fn replay_line(state: &mut JournalState, line: &str) -> Result<u64, String> {
    let rec = Record::parse(line).map_err(|e| e.to_string())?;
    let field = |i: usize| -> Result<&str, String> {
        rec.fields.get(i).map(String::as_str).ok_or_else(|| format!("{} too short", rec.tag))
    };
    let num = |i: usize| -> Result<u64, String> {
        field(i)?.parse().map_err(|_| format!("bad integer in {}", rec.tag))
    };
    match rec.tag.as_str() {
        "J_NEXT" => {
            state.next_session = state.next_session.max(num(0)?);
            Ok(0)
        }
        "J_OPEN" => {
            let session = num(0)?;
            let nonce = num(1)?;
            let Message::Init { bench_spec, machine, .. } =
                Message::decode(field(2)?).map_err(|e| e.to_string())?
            else {
                return Err("J_OPEN does not embed an INIT".to_owned());
            };
            state.sessions.insert(
                session,
                RecoveredSession {
                    bench_spec,
                    machine: *machine,
                    nonce,
                    pending: BTreeMap::new(),
                    done: BTreeMap::new(),
                },
            );
            state.next_session = state.next_session.max(session + 1);
            Ok(0)
        }
        "J_JOB" => {
            let session = num(0)?;
            let Message::Job { index, job } =
                Message::decode(field(1)?).map_err(|e| e.to_string())?
            else {
                return Err("J_JOB does not embed a JOB".to_owned());
            };
            match state.sessions.get_mut(&session) {
                Some(s) if !s.done.contains_key(&index) => {
                    s.pending.insert(index, job);
                    Ok(0)
                }
                _ => Ok(1), // closed session or already answered
            }
        }
        "J_ASSIGN" => Ok(1), // diagnostics only; never replayed
        "J_RESULT" => {
            let session = num(0)?;
            let Message::Result { index, outcome } =
                Message::decode(field(1)?).map_err(|e| e.to_string())?
            else {
                return Err("J_RESULT does not embed a RESULT".to_owned());
            };
            match state.sessions.get_mut(&session) {
                Some(s) => {
                    let was_pending = s.pending.remove(&index).is_some();
                    s.done.insert(index, outcome);
                    Ok(u64::from(was_pending))
                }
                None => Ok(1),
            }
        }
        "J_CLOSE" => {
            let session = num(0)?;
            match state.sessions.remove(&session) {
                Some(s) => Ok(2 + s.pending.len() as u64 + s.done.len() as u64),
                None => Ok(1),
            }
        }
        tag => Err(format!("unknown journal tag `{tag}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_apps::Benchmark as _;

    fn job(seed: u64) -> EvalJob {
        let machine = MachineProfile::laptop();
        let bench = petal_apps::blackscholes::BlackScholes::new(64);
        EvalJob {
            config: bench.program(&machine).default_config(&machine),
            size: 64,
            engine_seed: seed,
        }
    }

    fn outcome(fitness: f64) -> JobOutcome {
        JobOutcome {
            fitness: Some(fitness),
            ran: true,
            makespan: fitness,
            compiles: vec![(1, 0.5, 0.25)],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("petal-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn replay_reconstructs_sessions_jobs_and_results() {
        let dir = tmp_dir("replay");
        {
            let mut j = Journal::open(&dir).expect("open");
            j.open_session(1, 0xabcd, "sort n=64", &MachineProfile::desktop());
            j.enqueue(1, 0, &job(10));
            j.enqueue(1, 1, &job(11));
            j.assign(1, 0, 3);
            j.result(1, 0, &outcome(2.5e-3));
            j.open_session(2, 0x1111, "sort n=64", &MachineProfile::laptop());
            j.enqueue(2, 0, &job(20));
            j.close(2);
        }
        let j = Journal::open(&dir).expect("reopen");
        let st = j.state();
        assert_eq!(st.next_session, 3, "session ids are never reused");
        assert_eq!(st.sessions.len(), 1, "closed session 2 is gone");
        let s = &st.sessions[&1];
        assert_eq!(s.nonce, 0xabcd);
        assert_eq!(s.bench_spec, "sort n=64");
        assert_eq!(s.machine.codename, MachineProfile::desktop().codename);
        assert_eq!(s.pending.keys().copied().collect::<Vec<_>>(), [1]);
        assert_eq!(s.pending[&1].engine_seed, 11);
        assert_eq!(s.done.len(), 1);
        assert_eq!(s.done[&0].fitness, Some(2.5e-3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_truncated_away() {
        let dir = tmp_dir("torn");
        {
            let mut j = Journal::open(&dir).expect("open");
            j.open_session(1, 7, "sort n=64", &MachineProfile::desktop());
            j.enqueue(1, 0, &job(1));
        }
        // Simulate a crash mid-append: a partial line with no newline.
        let path = dir.join("journal.log");
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        f.write_all(b"J_JOB 1:1 13:half-a-record").expect("tear");
        drop(f);
        let j = Journal::open(&dir).expect("reopen tolerates the tear");
        assert_eq!(j.state().sessions[&1].pending.len(), 1);
        // The open() compaction rewrote the log whole — reopen again and
        // nothing torn remains.
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.ends_with('\n'), "compacted log has no torn tail");
        assert!(!text.contains("half-a-record"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let dir = tmp_dir("compact");
        let path = dir.join("journal.log");
        {
            let mut j = Journal::open(&dir).expect("open");
            j.open_session(1, 9, "sort n=64", &MachineProfile::desktop());
            for i in 0..50 {
                j.enqueue(1, i, &job(i));
                j.assign(1, i, 2);
                j.result(1, i, &outcome(1e-3));
            }
            let before = std::fs::metadata(&path).expect("meta").len();
            j.compact().expect("compact");
            let after = std::fs::metadata(&path).expect("meta").len();
            assert!(after < before, "compaction shrinks ({before} -> {after})");
        }
        let j = Journal::open(&dir).expect("reopen");
        let s = &j.state().sessions[&1];
        assert!(s.pending.is_empty());
        assert_eq!(s.done.len(), 50);
        assert_eq!(j.state().next_session, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_the_tail_is_refused_not_guessed_at() {
        let dir = tmp_dir("corrupt");
        {
            let mut j = Journal::open(&dir).expect("open");
            j.open_session(1, 7, "sort n=64", &MachineProfile::desktop());
        }
        let path = dir.join("journal.log");
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("garbage that is not a record\n");
        text.push_str(&Record::new("J_CLOSE", vec!["1".to_owned()]).encode());
        text.push('\n');
        std::fs::write(&path, text).expect("write");
        let err = match Journal::open(&dir) {
            Ok(_) => panic!("mid-log corruption must refuse"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # petal-farmd — the socket-served tuning-farm dispatcher
//!
//! `petal-farmd` turns the single-box evaluation farm into a service: it
//! listens on TCP and/or unix-domain sockets, admits **workers**
//! (`petal-shard --connect`) into a heartbeat-monitored registry, serves
//! **clients** (a tuner with `FarmSettings::endpoint` set), and pumps
//! jobs from client sessions to whichever workers are alive — re-queueing
//! a lost worker's outstanding jobs to survivors so churn never fails a
//! batch. With `--registry <dir>` it additionally hosts the tuned-config
//! registry: **registry clients** (a `petal_registry::RemoteStore`)
//! speak wire v3's `REG_GET`/`REG_PUT` against a dispatcher-side
//! `DirStore`, whose keep-best merge runs under one store lock so
//! concurrent publishes from the whole fleet converge deterministically.
//! See `docs/farmd.md` for the protocol lifecycle and the determinism
//! argument, and `docs/registry.md` for the served-store topology.
//!
//! ## Why churn cannot perturb results
//!
//! The dispatcher never evaluates, prices, or reorders anything
//! semantically: jobs are pure functions of their [`petal_farm::EvalJob`]
//! and every `RESULT` is keyed by the client's submission index, so the
//! client's submission-order merge (where all compile re-pricing lives)
//! sees the same values no matter which worker answered, how often a job
//! was retried, or in what order answers arrived. The dispatcher's only
//! obligations are *exactly-once forwarding* per index (the registry's
//! FIFO + verdicts) and *eventual completion* (re-queue on loss) —
//! scheduling is free to be elastic.
//!
//! ## Threading model
//!
//! Everything is std-only and lock-disciplined rather than async:
//!
//! * one **accept thread** per listener, polling with a stop flag;
//! * one **reader thread** per connection (see `conn`), reading with a
//!   socket timeout so shutdown is prompt;
//! * one **scheduler thread** that assigns queued jobs and expires
//!   silent workers, woken by a condvar on any state change;
//! * all shared state behind one [`Mutex`] (`Inner`), and every socket
//!   write behind a per-connection mutex **outside** the global lock, so
//!   a slow peer can never stall the dispatcher. Every connection also
//!   carries a socket **write timeout**, so a wedged peer whose receive
//!   buffer fills turns into a write error (and the worker-drain /
//!   session-detach path) instead of parking a thread forever.
//!
//! ## Crash safety
//!
//! With `--journal <dir>` ([`FarmdOptions::journal`]) the dispatcher
//! appends every session/job lifecycle event to a durable, wire-codec
//! journal (see `journal`); a restarted dispatcher replays it to the
//! exact pre-crash queue/session state, workers reconnect and drain the
//! recovered backlog, and v4 clients re-attach their sessions with
//! `RESUME` — the tuning loop finishes with results bit-identical to an
//! unbounced run. See `docs/farmd.md` § "Crash recovery & journal
//! format".

#![warn(missing_docs)]

mod conn;
mod journal;
pub mod proxy;
pub mod registry;

use conn::LineWriter;
use journal::Journal;
use petal_farm::net::{Endpoint, FarmListener};
use petal_farm::wire::{Message, WIRE_VERSION};
use petal_farm::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use petal_registry::{entry_from_wire, entry_to_wire, ConfigStore, DirStore};
use registry::{Ack, JobKey, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Dispatcher tuning knobs.
#[derive(Debug, Clone)]
pub struct FarmdOptions {
    /// A worker silent for longer than this is drained and its jobs
    /// re-queued. Workers heartbeat well under it (250 ms by default).
    pub deadline: Duration,
    /// Scheduler wake period when idle (it is also condvar-woken on
    /// every state change, so this only bounds expiry latency).
    pub poll: Duration,
    /// How long queued jobs may wait with **zero** ready workers before
    /// their sessions are closed with a GOODBYE. This is the elastic
    /// grace window: workers joining within it pick up the backlog;
    /// after it, clients get a diagnostic instead of blocking forever on
    /// an empty fleet.
    pub starvation: Duration,
    /// When set, host the tuned-config registry at this directory:
    /// registry clients' `REG_GET`/`REG_PUT` requests are answered from a
    /// [`DirStore`] opened here, with keep-best merge serialized under
    /// the dispatcher's store lock. `None` bounces registry requests
    /// with a GOODBYE.
    pub registry: Option<PathBuf>,
    /// When set, journal every session/job lifecycle event to this
    /// directory and replay it on the next start, so a killed
    /// dispatcher resumes mid-batch instead of vaporizing its sessions.
    pub journal: Option<PathBuf>,
    /// How long a detached v4 session (client disconnected, `RESUME`
    /// still possible) is kept before being closed for good. Bounds the
    /// memory a crashed client can pin.
    pub session_linger: Duration,
}

impl Default for FarmdOptions {
    fn default() -> Self {
        FarmdOptions {
            deadline: Duration::from_secs(2),
            poll: Duration::from_millis(50),
            starvation: Duration::from_secs(30),
            registry: None,
            journal: None,
            session_linger: Duration::from_secs(60),
        }
    }
}

/// A point-in-time snapshot of dispatcher state, for logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmdStats {
    /// Registered workers (both ready and draining).
    pub workers: usize,
    /// Workers currently eligible for assignments.
    pub ready: usize,
    /// Open client sessions.
    pub sessions: usize,
    /// Jobs queued and not yet assigned.
    pub queued: usize,
    /// Jobs assigned to workers and unanswered.
    pub inflight: usize,
    /// Jobs re-queued due to worker loss, lifetime total.
    pub requeues: u64,
    /// Results forwarded to clients, lifetime total.
    pub completed: u64,
}

/// One queued (not yet assigned) job.
struct Pending {
    session: u64,
    index: u64,
    job: EvalJob,
}

/// One open client session.
struct Session {
    bench_spec: String,
    machine: MachineProfile,
    /// Resume secret handed to v4 clients in their SESSION record.
    nonce: u64,
    /// `None` while detached: the client is gone but the session (and
    /// its queued/in-flight work) survives awaiting a RESUME.
    writer: Option<Arc<Mutex<LineWriter>>>,
    /// Bumped on every attach. A reader thread that noticed its
    /// connection die only detaches/closes if the epoch still matches —
    /// otherwise a newer connection already owns the session.
    epoch: u64,
    /// Whether the client negotiated wire v4: detach-on-disconnect,
    /// duplicate-index suppression and done-result re-serving all key
    /// off this, so a v≤3 client sees exactly the old behavior.
    resumable: bool,
    /// Outcomes already forwarded (resumable sessions only), re-served
    /// when a resumed client re-submits an index the crash already
    /// answered.
    done: BTreeMap<u64, JobOutcome>,
    /// When the session detached, for the linger reaper.
    detached_since: Option<Instant>,
}

/// All mutable dispatcher state, behind the one global lock.
struct Inner {
    registry: Registry,
    /// Write handles of registered workers, by registry id.
    worker_writers: BTreeMap<u64, Arc<Mutex<LineWriter>>>,
    sessions: BTreeMap<u64, Session>,
    next_session: u64,
    /// Unassigned jobs, FIFO; re-queued jobs go back to the *front* so
    /// recovery work is retried before new work.
    queue: VecDeque<Pending>,
    /// Payloads of assigned jobs, so a lost worker's inflight keys can be
    /// turned back into queue entries.
    inflight_jobs: BTreeMap<JobKey, EvalJob>,
    /// When the queue first became non-empty with zero ready workers;
    /// cleared the moment either condition lapses.
    starved_since: Option<Instant>,
    requeues: u64,
    completed: u64,
    /// The durable journal, when `--journal` is set. Inside the global
    /// lock so appends serialize with the state changes they record.
    journal: Option<Journal>,
}

/// State shared by every dispatcher thread.
pub(crate) struct Shared {
    inner: Mutex<Inner>,
    /// Woken on any state change the scheduler cares about (job queued,
    /// worker joined/lost, session closed).
    wake: Condvar,
    pub(crate) stop: AtomicBool,
    opts: FarmdOptions,
    /// The hosted tuned-config store, when this dispatcher serves one.
    /// The mutex serializes whole registry operations, so a `REG_PUT`'s
    /// read-compare-write merge is atomic with respect to every other
    /// client — that is the served keep-best guarantee.
    store: Option<Mutex<DirStore>>,
}

/// One planned burst of sends to a single worker, executed outside the
/// global lock.
struct SendPlan {
    worker: u64,
    writer: Arc<Mutex<LineWriter>>,
    msgs: Vec<Message>,
}

impl Shared {
    // ---- worker-side entry points (called from conn reader threads) ----

    fn notify(&self) {
        self.wake.notify_all();
    }

    pub(crate) fn admit_worker(
        self: &Arc<Self>,
        name: &str,
        slots: u64,
        pid: u64,
        writer: Arc<Mutex<LineWriter>>,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("farmd lock");
        let id = inner.registry.register(name, slots, pid, Instant::now());
        inner.worker_writers.insert(id, writer);
        drop(inner);
        self.notify();
        id
    }

    pub(crate) fn touch_worker(&self, id: u64, now: Instant) -> bool {
        self.inner.lock().expect("farmd lock").registry.touch(id, now)
    }

    pub(crate) fn worker_gone(&self, id: u64) -> bool {
        self.inner.lock().expect("farmd lock").registry.get(id).is_none()
    }

    /// Judge a RESULT. `Some((session, index))` means fresh — forward it;
    /// `None` means it was dropped (duplicate/stale) or the worker was
    /// torn down (disorder).
    pub(crate) fn complete_job(
        self: &Arc<Self>,
        id: u64,
        index: u64,
        now: Instant,
    ) -> Option<(u64, u64)> {
        let mut inner = self.inner.lock().expect("farmd lock");
        inner.registry.touch(id, now);
        match inner.registry.complete(id, index) {
            Ack::Fresh(key) => {
                inner.inflight_jobs.remove(&key);
                inner.completed += 1;
                drop(inner);
                self.notify(); // a slot freed up
                Some(key)
            }
            Ack::Duplicate | Ack::Stale => None,
            Ack::Disorder => {
                drop(inner);
                self.lose_worker(id, &format!("RESULT {index} violates FIFO order"), true);
                None
            }
        }
    }

    /// Tear down worker `id`: re-queue everything it held, forget its
    /// writer, optionally send a GOODBYE naming the reason, and close its
    /// socket. Idempotent — the reader thread and the scheduler can both
    /// call it for the same loss.
    pub(crate) fn lose_worker(self: &Arc<Self>, id: u64, reason: &str, send_goodbye: bool) {
        let writer = {
            let mut inner = self.inner.lock().expect("farmd lock");
            let keys = inner.registry.remove(id);
            if !keys.is_empty() {
                eprintln!(
                    "petal-farmd: worker {id} lost ({reason}); re-queueing {} jobs",
                    keys.len()
                );
            } else if inner.worker_writers.contains_key(&id) {
                eprintln!("petal-farmd: worker {id} left ({reason})");
            }
            inner.requeue(&keys);
            inner.worker_writers.remove(&id)
        };
        if let Some(writer) = writer {
            let mut w = writer.lock().expect("writer lock");
            if send_goodbye {
                let _ = w.send(&Message::Goodbye { reason: reason.to_owned() });
            }
            w.shutdown();
        }
        self.notify();
    }

    /// Forward a fresh RESULT to its session's client (outside the global
    /// lock — only the session writer's own mutex is held while writing).
    /// For resumable sessions the outcome is recorded (and journaled)
    /// **before** the send, so a crash between the two re-serves it on
    /// resume instead of losing it; a detached session just records.
    pub(crate) fn forward_result(self: &Arc<Self>, session: u64, index: u64, outcome: JobOutcome) {
        let writer = {
            let mut inner = self.inner.lock().expect("farmd lock");
            let Some(s) = inner.sessions.get_mut(&session) else {
                return; // session disappeared mid-flight; drop the answer
            };
            let writer = s.writer.clone();
            if s.resumable {
                s.done.insert(index, outcome.clone());
            }
            if let Some(j) = inner.journal.as_mut() {
                j.result(session, index, &outcome);
            }
            writer
        };
        if let Some(writer) = writer {
            let sent = writer
                .lock()
                .expect("writer lock")
                .send(&Message::Result { index, outcome })
                .is_ok();
            if !sent {
                self.client_writer_failed(session, &writer);
            }
        }
    }

    // ---- client-side entry points ----

    /// Open a session; returns its id (the resume token) and nonce.
    pub(crate) fn open_session(
        self: &Arc<Self>,
        bench_spec: &str,
        machine: MachineProfile,
        writer: Arc<Mutex<LineWriter>>,
        resumable: bool,
    ) -> (u64, u64) {
        let mut inner = self.inner.lock().expect("farmd lock");
        let id = inner.next_session;
        inner.next_session += 1;
        let nonce = fresh_nonce(id);
        if let Some(j) = inner.journal.as_mut() {
            j.open_session(id, nonce, bench_spec, &machine);
        }
        inner.sessions.insert(
            id,
            Session {
                bench_spec: bench_spec.to_owned(),
                machine,
                nonce,
                writer: Some(writer),
                epoch: 1,
                resumable,
                done: BTreeMap::new(),
                detached_since: None,
            },
        );
        (id, nonce)
    }

    /// Re-attach a live or journal-recovered session to a new
    /// connection. Returns the new epoch (for the reader's stale-exit
    /// guard) or a GOODBYE-able reason.
    pub(crate) fn resume_session(
        self: &Arc<Self>,
        token: u64,
        nonce: u64,
        writer: Arc<Mutex<LineWriter>>,
    ) -> Result<u64, String> {
        let (old, epoch) = {
            let mut inner = self.inner.lock().expect("farmd lock");
            let Some(s) = inner.sessions.get_mut(&token) else {
                return Err(format!("unknown session {token}; nothing to resume"));
            };
            if !s.resumable || s.nonce != nonce {
                return Err(format!("session {token} does not match the presented credentials"));
            }
            s.epoch += 1;
            s.detached_since = None;
            (s.writer.replace(writer), s.epoch)
        };
        // A superseded live connection (e.g. the client gave up on a
        // stalled socket the dispatcher still thinks is fine) is closed;
        // its reader thread's exit is ignored by the epoch guard.
        if let Some(old) = old {
            old.lock().expect("writer lock").shutdown();
        }
        self.notify();
        Ok(epoch)
    }

    /// The session's benchmark spec, for the resume serve loop.
    pub(crate) fn session_spec(&self, session: u64) -> Option<String> {
        let inner = self.inner.lock().expect("farmd lock");
        inner.sessions.get(&session).map(|s| s.bench_spec.clone())
    }

    pub(crate) fn enqueue_job(self: &Arc<Self>, session: u64, index: u64, job: EvalJob) {
        let done_replay = {
            let inner = self.inner.lock().expect("farmd lock");
            let Some(s) = inner.sessions.get(&session) else {
                return;
            };
            if s.resumable {
                // Idempotent re-submission: an index the crash already
                // answered is re-served from the result log; one that is
                // still queued or in flight is simply not duplicated.
                if let Some(outcome) = s.done.get(&index) {
                    Some((s.writer.clone(), outcome.clone()))
                } else if inner.inflight_jobs.contains_key(&(session, index))
                    || inner.queue.iter().any(|p| p.session == session && p.index == index)
                {
                    return;
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((writer, outcome)) = done_replay {
            if let Some(writer) = writer {
                let sent = writer
                    .lock()
                    .expect("writer lock")
                    .send(&Message::Result { index, outcome })
                    .is_ok();
                if !sent {
                    self.client_writer_failed(session, &writer);
                }
            }
            return;
        }
        let mut inner = self.inner.lock().expect("farmd lock");
        if !inner.sessions.contains_key(&session) {
            return;
        }
        if let Some(j) = inner.journal.as_mut() {
            j.enqueue(session, index, &job);
        }
        inner.queue.push_back(Pending { session, index, job });
        drop(inner);
        self.notify();
    }

    /// A send through `writer` failed: detach the session if that
    /// writer is still its current one (resumable), close it otherwise.
    /// The `Arc::ptr_eq` guard keeps a failure on a superseded writer
    /// from tearing down a freshly resumed connection.
    fn client_writer_failed(self: &Arc<Self>, session: u64, writer: &Arc<Mutex<LineWriter>>) {
        let close = {
            let mut inner = self.inner.lock().expect("farmd lock");
            let Some(s) = inner.sessions.get_mut(&session) else { return };
            match &s.writer {
                Some(w) if Arc::ptr_eq(w, writer) => {}
                _ => return,
            }
            if s.resumable {
                s.writer = None;
                s.detached_since = Some(Instant::now());
                eprintln!(
                    "petal-farmd: session {session} detached (client write failed); \
                     awaiting resume"
                );
                false
            } else {
                true
            }
        };
        if close {
            self.close_session(session, "client write failed");
        }
    }

    /// A reader thread's connection ended (EOF, error). Resumable
    /// sessions detach and await a RESUME; others close as before. The
    /// epoch guard makes a stale reader's exit a no-op after a resume.
    pub(crate) fn client_gone(self: &Arc<Self>, session: u64, epoch: u64, reason: &str) {
        let close = {
            let mut inner = self.inner.lock().expect("farmd lock");
            let Some(s) = inner.sessions.get_mut(&session) else { return };
            if s.epoch != epoch {
                return; // a newer connection owns this session now
            }
            if s.resumable {
                s.writer = None;
                s.detached_since = Some(Instant::now());
                eprintln!("petal-farmd: session {session} detached ({reason}); awaiting resume");
                false
            } else {
                true
            }
        };
        if close {
            self.close_session(session, reason);
        }
    }

    // ---- registry-side entry points ----

    /// Whether this dispatcher hosts a registry at all.
    pub(crate) fn hosts_registry(&self) -> bool {
        self.store.is_some()
    }

    /// Answer one registry request with the full reply sequence —
    /// `REG_HIT`s first, then the closing `REG_HIT` ack or `REG_MISS`.
    /// Server-side failures become `REG_MISS` reasons with the `error:`
    /// prefix, never a dropped connection; the whole operation runs
    /// under the store lock, so concurrent clients serialize here.
    pub(crate) fn serve_registry_request(&self, msg: &Message) -> Vec<Message> {
        let Some(store) = &self.store else {
            return vec![Message::RegMiss {
                reason: "error: no registry hosted (start petal-farmd with --registry <dir>)"
                    .to_owned(),
            }];
        };
        let store = store.lock().expect("registry store lock");
        let err_miss =
            |e: petal_registry::RegistryError| Message::RegMiss { reason: format!("error: {e}") };
        match msg {
            Message::RegGet { op, bench_spec, size, machine } => match op.as_str() {
                "get" | "exact" => {
                    let Some(machine) = machine else {
                        return vec![Message::RegMiss {
                            reason: format!("error: `{op}` needs a machine profile"),
                        }];
                    };
                    match ConfigStore::lookup(&*store, machine, bench_spec, *size, op == "exact") {
                        Ok(Some(m)) => vec![Message::RegHit {
                            verdict: m.tier.to_string(),
                            distance: m.distance,
                            scaled_from: m.scaled_from,
                            entry: Box::new(entry_to_wire(&m.entry)),
                        }],
                        Ok(None) => vec![Message::RegMiss {
                            reason: format!("no entry for `{bench_spec}` size {size}"),
                        }],
                        Err(e) => vec![err_miss(e)],
                    }
                }
                "ls" => match ConfigStore::ls(&*store) {
                    Ok(listing) => {
                        let mut reason = format!(
                            "{} entries, {} unusable",
                            listing.entries.len(),
                            listing.issues.len()
                        );
                        for issue in &listing.issues {
                            reason.push('\n');
                            reason.push_str(issue);
                        }
                        let mut replies: Vec<Message> = listing
                            .entries
                            .iter()
                            .map(|(_, e)| Message::RegHit {
                                verdict: "ls".to_owned(),
                                distance: 0.0,
                                scaled_from: None,
                                entry: Box::new(entry_to_wire(e)),
                            })
                            .collect();
                        replies.push(Message::RegMiss { reason });
                        replies
                    }
                    Err(e) => vec![err_miss(e)],
                },
                "gc" => match ConfigStore::gc(&*store) {
                    Ok(removed) => {
                        let mut reason = format!("{} files removed", removed.len());
                        for line in &removed {
                            reason.push('\n');
                            reason.push_str(line);
                        }
                        vec![Message::RegMiss { reason }]
                    }
                    Err(e) => vec![err_miss(e)],
                },
                other => vec![Message::RegMiss {
                    reason: format!("error: unknown registry op `{other}`"),
                }],
            },
            Message::RegPut { force, entry } => {
                let entry = entry_from_wire((**entry).clone());
                match ConfigStore::put(&*store, &entry, *force) {
                    // The ack carries whichever entry now wins the key,
                    // so a losing publisher learns the better incumbent
                    // in the same round trip.
                    Ok(outcome) => {
                        match store.get_exact(&entry.machine, &entry.bench_spec, entry.size) {
                            Ok(Some(winner)) => vec![Message::RegHit {
                                verdict: outcome.to_string(),
                                distance: 0.0,
                                scaled_from: None,
                                entry: Box::new(entry_to_wire(&winner)),
                            }],
                            Ok(None) => vec![Message::RegMiss {
                                reason: "error: stored entry vanished before the ack".to_owned(),
                            }],
                            Err(e) => vec![err_miss(e)],
                        }
                    }
                    Err(e) => vec![err_miss(e)],
                }
            }
            _ => vec![Message::RegMiss { reason: "error: not a registry request".to_owned() }],
        }
    }

    /// Retire a session: drop its queued jobs and forget it. Results for
    /// its still-inflight jobs will be dropped on arrival.
    pub(crate) fn close_session(self: &Arc<Self>, session: u64, reason: &str) {
        let mut inner = self.inner.lock().expect("farmd lock");
        if inner.sessions.remove(&session).is_none() {
            return; // already closed by the other path
        }
        if let Some(j) = inner.journal.as_mut() {
            j.close(session);
        }
        inner.queue.retain(|p| p.session != session);
        inner.inflight_jobs.retain(|&(s, _), _| s != session);
        eprintln!("petal-farmd: session {session} closed ({reason})");
        drop(inner);
        self.notify();
    }
}

/// An unguessable-enough resume nonce: SplitMix64 over wall-clock
/// nanoseconds mixed with the session id. It gates accidental
/// cross-session resumes, never feeds any result, so its entropy source
/// cannot perturb determinism.
fn fresh_nonce(session: u64) -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0));
    let mut z = t ^ session.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Inner {
    /// Put re-queued job keys back at the *front* of the queue in their
    /// original FIFO order, rehydrating payloads from `inflight_jobs`.
    /// Keys whose session has since closed are dropped.
    fn requeue(&mut self, keys: &[JobKey]) {
        for &(session, index) in keys.iter().rev() {
            if let Some(job) = self.inflight_jobs.remove(&(session, index)) {
                self.requeues += 1;
                self.queue.push_front(Pending { session, index, job });
            }
        }
    }

    /// Plan one scheduler pass: expire silent workers, assign queued
    /// jobs, detect starvation, and reap detached sessions whose resume
    /// window lapsed. Returns the socket work to perform outside the
    /// lock: send plans, worker closes, starved sessions, and lingered
    /// session ids.
    #[allow(clippy::type_complexity)]
    fn plan(
        &mut self,
        now: Instant,
        starvation: Duration,
        linger: Duration,
    ) -> (
        Vec<SendPlan>,
        Vec<(u64, Arc<Mutex<LineWriter>>)>,
        Vec<(u64, Arc<Mutex<LineWriter>>)>,
        Vec<u64>,
    ) {
        // Expiry: drain workers past the heartbeat deadline and reclaim
        // their jobs. Their connections are closed outside the lock; the
        // reader thread's EOF then removes them from the registry.
        let mut closes = Vec::new();
        for (id, keys) in self.registry.expire(now) {
            eprintln!(
                "petal-farmd: worker {id} missed its heartbeat deadline; re-queueing {} jobs",
                keys.len()
            );
            self.requeue(&keys);
            if let Some(writer) = self.worker_writers.get(&id) {
                closes.push((id, Arc::clone(writer)));
            }
        }

        // Assignment: drain the queue onto ready workers with free slots.
        // One SendPlan per worker keeps each worker's INIT→JOB ordering
        // while batching lock acquisitions.
        let mut plans: Vec<SendPlan> = Vec::new();
        while let Some(front) = self.queue.front() {
            let session_id = front.session;
            let Some(session) = self.sessions.get(&session_id) else {
                self.queue.pop_front(); // session closed while queued
                continue;
            };
            let Some(worker) = self.registry.pick(session_id) else { break };
            let pending = self.queue.pop_front().expect("front exists");
            let writer =
                Arc::clone(self.worker_writers.get(&worker).expect("picked worker has a writer"));
            let plan = match plans.iter_mut().find(|p| p.worker == worker) {
                Some(p) => p,
                None => {
                    plans.push(SendPlan { worker, writer, msgs: Vec::new() });
                    plans.last_mut().expect("just pushed")
                }
            };
            if self.registry.session(worker) != Some(session_id) {
                plan.msgs.push(Message::Init {
                    version: WIRE_VERSION,
                    bench_spec: session.bench_spec.clone(),
                    machine: Box::new(session.machine.clone()),
                });
                self.registry.set_session(worker, session_id);
            }
            let key = (session_id, pending.index);
            self.registry.assign(worker, key);
            self.inflight_jobs.insert(key, pending.job.clone());
            if let Some(j) = self.journal.as_mut() {
                j.assign(session_id, pending.index, worker);
            }
            plan.msgs.push(Message::Job { index: pending.index, job: pending.job });
        }

        // Starvation: jobs waiting with an empty fleet. Within the grace
        // window this is just elastic join in progress; past it, sessions
        // with queued work are told so instead of blocking forever.
        let mut starved = Vec::new();
        if self.queue.is_empty() || self.registry.ready_count() > 0 {
            self.starved_since = None;
        } else {
            let since = *self.starved_since.get_or_insert(now);
            if now.duration_since(since) >= starvation {
                let mut ids: Vec<u64> = self.queue.iter().map(|p| p.session).collect();
                ids.sort_unstable();
                ids.dedup();
                for id in ids {
                    // Detached sessions cannot be told; the linger
                    // reaper below bounds their lifetime instead.
                    if let Some(writer) = self.sessions.get(&id).and_then(|s| s.writer.clone()) {
                        starved.push((id, writer));
                    }
                }
                self.starved_since = None; // re-arm for any later backlog
            }
        }

        // Linger reaping: a detached session whose client never resumed
        // is eventually closed for good (outside the lock, since
        // close_session re-locks).
        let lingered: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.detached_since.is_some_and(|t| now.duration_since(t) >= linger))
            .map(|(&id, _)| id)
            .collect();
        (plans, closes, starved, lingered)
    }
}

/// A running dispatcher: listeners, scheduler, and connection threads.
/// Dropping it shuts everything down.
pub struct Farmd {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    endpoints: Vec<Endpoint>,
}

impl Farmd {
    /// Bind every endpoint and start serving. TCP endpoints may use port
    /// `0`; the resolved endpoints are available from
    /// [`Self::endpoints`].
    ///
    /// # Errors
    /// Any `bind(2)` failure.
    pub fn bind(endpoints: &[Endpoint], opts: FarmdOptions) -> std::io::Result<Farmd> {
        let store = match &opts.registry {
            Some(dir) => {
                Some(Mutex::new(DirStore::open(dir.clone()).map_err(std::io::Error::other)?))
            }
            None => None,
        };
        // Journal recovery: replay the log into sessions (detached,
        // awaiting RESUME) and a queue of every unanswered job, in
        // (session, index) order. Inflight is empty — assignments died
        // with the old process's worker connections.
        let journal = match &opts.journal {
            Some(dir) => Some(Journal::open(dir)?),
            None => None,
        };
        let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
        let mut queue: VecDeque<Pending> = VecDeque::new();
        let mut next_session = 1;
        if let Some(j) = &journal {
            let state = j.state();
            next_session = state.next_session;
            for (&id, rs) in &state.sessions {
                sessions.insert(
                    id,
                    Session {
                        bench_spec: rs.bench_spec.clone(),
                        machine: rs.machine.clone(),
                        nonce: rs.nonce,
                        writer: None,
                        epoch: 0,
                        resumable: true,
                        done: rs.done.clone(),
                        detached_since: Some(Instant::now()),
                    },
                );
                for (&index, job) in &rs.pending {
                    queue.push_back(Pending { session: id, index, job: job.clone() });
                }
            }
            if !sessions.is_empty() {
                eprintln!(
                    "petal-farmd: recovered {} session(s) with {} queued job(s) from the journal",
                    sessions.len(),
                    queue.len()
                );
            }
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                registry: Registry::new(opts.deadline),
                worker_writers: BTreeMap::new(),
                sessions,
                next_session,
                queue,
                inflight_jobs: BTreeMap::new(),
                starved_since: None,
                requeues: 0,
                completed: 0,
                journal,
            }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            opts,
            store,
        });
        let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        let mut bound = Vec::new();
        for endpoint in endpoints {
            let listener = FarmListener::bind(endpoint)?;
            bound.push(listener.local_endpoint()?);
            let shared_ = Arc::clone(&shared);
            let conns = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || accept_loop(&shared_, &listener, &conns)));
        }
        let shared_ = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || scheduler_loop(&shared_)));
        Ok(Farmd { shared, threads, conn_threads, endpoints: bound })
    }

    /// The endpoints actually bound (ephemeral TCP ports resolved), in
    /// the order given to [`Self::bind`].
    #[must_use]
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Snapshot the dispatcher's state.
    #[must_use]
    pub fn stats(&self) -> FarmdStats {
        let inner = self.shared.inner.lock().expect("farmd lock");
        FarmdStats {
            workers: inner.registry.len(),
            ready: inner.registry.ready_count(),
            sessions: inner.sessions.len(),
            queued: inner.queue.len(),
            inflight: inner.registry.inflight_total(),
            requeues: inner.requeues,
            completed: inner.completed,
        }
    }

    /// Block until at least `n` workers are ready or `timeout` elapses;
    /// returns whether the fleet reached `n`.
    #[must_use]
    pub fn wait_workers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.stats().ready >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stop serving: flag every thread down, say goodbye to workers and
    /// clients, close their sockets, and join all threads.
    pub fn shutdown(&mut self) {
        self.stop(true);
    }

    /// Hard stop: close every socket with **no** goodbyes, exactly as a
    /// `SIGKILL` would, and join all threads. Exists so in-process
    /// crash-recovery tests can bounce a journaled dispatcher without
    /// granting peers the graceful-shutdown diagnostics a real crash
    /// never sends. The journal needs no flushing — every append was a
    /// synchronous full-line write.
    pub fn abort(&mut self) {
        self.stop(false);
    }

    fn stop(&mut self, graceful: bool) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return; // second call
        }
        self.shared.wake.notify_all();
        // Goodbyes unblock peers promptly; the socket shutdowns unblock
        // our own reader threads.
        let (workers, clients) = {
            let inner = self.shared.inner.lock().expect("farmd lock");
            (
                inner.worker_writers.values().cloned().collect::<Vec<_>>(),
                inner.sessions.values().filter_map(|s| s.writer.clone()).collect::<Vec<_>>(),
            )
        };
        for writer in workers.iter().chain(&clients) {
            let mut w = writer.lock().expect("writer lock");
            if graceful {
                let _ = w.send(&Message::Goodbye { reason: "dispatcher shutting down".to_owned() });
            }
            w.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conn_threads.lock().expect("conn threads lock"));
        for t in conns {
            let _ = t.join();
        }
    }
}

impl Drop for Farmd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections until the stop flag rises, handing each to its own
/// reader thread.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &FarmListener,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let label = listener.local_endpoint().map_or_else(|_| "?".to_owned(), |e| e.to_string());
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.poll_accept() {
            Ok(Some(stream)) => {
                let shared_ = Arc::clone(shared);
                let peer = label.clone();
                let handle = std::thread::spawn(move || conn::serve_conn(&shared_, stream, &peer));
                conn_threads.lock().expect("conn threads lock").push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => {
                eprintln!("petal-farmd: accept on {label} failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Assign and expire until the stop flag rises. All socket writes happen
/// with the global lock released.
fn scheduler_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        let (plans, closes, starved, lingered) = {
            let mut inner = shared.inner.lock().expect("farmd lock");
            let (plans, closes, starved, lingered) =
                inner.plan(Instant::now(), shared.opts.starvation, shared.opts.session_linger);
            if plans.is_empty() && closes.is_empty() && starved.is_empty() && lingered.is_empty() {
                // Idle: sleep until state changes or the poll period
                // bounds how stale expiry checks can get.
                let _unused =
                    shared.wake.wait_timeout(inner, shared.opts.poll).expect("farmd lock");
                continue;
            }
            (plans, closes, starved, lingered)
        };
        for session in lingered {
            shared.close_session(session, "resume window expired");
        }
        for (id, writer) in closes {
            let mut w = writer.lock().expect("writer lock");
            let _ = w.send(&Message::Goodbye { reason: "heartbeat deadline missed".to_owned() });
            w.shutdown();
            drop(w);
            // The reader thread will observe the close and finish the
            // teardown (registry removal) via lose_worker.
            let _ = id;
        }
        for (session, writer) in starved {
            {
                let mut w = writer.lock().expect("writer lock");
                let _ = w.send(&Message::Goodbye {
                    reason: "no workers available for queued jobs".to_owned(),
                });
                w.shutdown();
            }
            shared.close_session(session, "starved: no workers available");
        }
        for plan in plans {
            let ok = {
                let mut w = plan.writer.lock().expect("writer lock");
                plan.msgs.iter().all(|m| w.send(m).is_ok())
            };
            if !ok {
                shared.lose_worker(plan.worker, "write failed", false);
            }
        }
    }
}

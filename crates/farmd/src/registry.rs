//! The dispatcher's worker registry: a small, fully synchronous state
//! machine over the live worker fleet.
//!
//! Everything time-dependent takes `now` as a parameter, so the state
//! machine is deterministic and directly unit-testable — the connection
//! and scheduler layers own the clock.
//!
//! ## Worker lifecycle
//!
//! ```text
//! REGISTER ──▶ Ready ──(heartbeat deadline missed)──▶ Draining ──▶ removed
//!                │                                       ▲
//!                └────(GOODBYE / connection lost)────────┘
//! ```
//!
//! `Ready` workers accept assignments; `Draining` workers are waiting for
//! their connection to be torn down and get nothing new — any `RESULT`
//! they still deliver is stale (the job was already re-queued) and is
//! dropped. A worker that comes back **rejoins as a fresh registration**
//! with a new id; ids are never reused, so a stale socket can never be
//! confused with its successor.
//!
//! ## Why dropping duplicates is sound
//!
//! Jobs are pure functions of their [`petal_farm::EvalJob`], so a job
//! evaluated twice (a re-queue racing the original worker's late answer,
//! or a duplicated frame from a flaky link) produces byte-identical
//! outcomes — the registry only has to make sure exactly **one** copy is
//! forwarded, which the per-worker FIFO plus [`Ack`] verdicts guarantee.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Identifies one dispatched job: `(session id, submission index)`.
pub type JobKey = (u64, u64);

/// Liveness state of a registered worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeating and eligible for assignments.
    Ready,
    /// Missed its heartbeat deadline (or said goodbye); its inflight jobs
    /// are re-queued and its connection is being torn down.
    Draining,
}

/// Verdict on a `RESULT` arriving from a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ack {
    /// First answer to the worker's oldest inflight job: forward it.
    Fresh(JobKey),
    /// A re-send of the job this worker just answered (duplicated frame):
    /// drop it, the first copy was forwarded.
    Duplicate,
    /// From an unknown or draining worker: the job was already re-queued
    /// elsewhere, drop it.
    Stale,
    /// Out of FIFO order — the worker is violating the protocol; kill it
    /// and re-queue everything it held.
    Disorder,
}

/// One registered worker.
#[derive(Debug)]
pub struct WorkerEntry {
    /// Operator-facing name from `REGISTER`.
    pub name: String,
    /// Jobs the dispatcher may keep in flight here.
    pub slots: usize,
    /// Worker process id (diagnostics only).
    pub pid: u64,
    /// Liveness state.
    pub state: WorkerState,
    /// Last time any traffic arrived from this worker.
    pub last_seen: Instant,
    /// Session this worker was last `INIT`ed into, if any.
    pub session: Option<u64>,
    /// Assigned-but-unanswered jobs, oldest first (workers answer in
    /// arrival order, so `RESULT`s must match this FIFO's front).
    pub inflight: VecDeque<JobKey>,
    /// The job this worker most recently answered, for duplicate
    /// detection.
    pub last_done: Option<JobKey>,
    /// Jobs answered (diagnostics/stats).
    pub served: u64,
}

/// The worker fleet, keyed by registration id. `BTreeMap` keeps every
/// iteration (picking, expiry, stats) in deterministic id order.
#[derive(Debug)]
pub struct Registry {
    deadline: Duration,
    next_id: u64,
    workers: BTreeMap<u64, WorkerEntry>,
}

impl Registry {
    /// New registry with the given heartbeat deadline: a worker silent
    /// for longer than this is drained.
    #[must_use]
    pub fn new(deadline: Duration) -> Self {
        Registry { deadline, next_id: 1, workers: BTreeMap::new() }
    }

    /// Admit a worker, returning its fresh id (ids are never reused).
    pub fn register(&mut self, name: &str, slots: u64, pid: u64, now: Instant) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.workers.insert(
            id,
            WorkerEntry {
                name: name.to_owned(),
                slots: usize::try_from(slots.max(1)).unwrap_or(usize::MAX),
                pid,
                state: WorkerState::Ready,
                last_seen: now,
                session: None,
                inflight: VecDeque::new(),
                last_done: None,
                served: 0,
            },
        );
        id
    }

    /// Record liveness for `id` (any traffic counts, not just
    /// `HEARTBEAT`s). Returns `false` for unknown workers.
    pub fn touch(&mut self, id: u64, now: Instant) -> bool {
        match self.workers.get_mut(&id) {
            Some(w) => {
                w.last_seen = now;
                true
            }
            None => false,
        }
    }

    /// Drain every `Ready` worker whose heartbeat deadline has lapsed.
    /// Returns `(id, re-queue list)` per drained worker; the caller owns
    /// re-dispatching the jobs and closing the connection.
    pub fn expire(&mut self, now: Instant) -> Vec<(u64, Vec<JobKey>)> {
        let mut drained = Vec::new();
        for (&id, w) in &mut self.workers {
            if w.state == WorkerState::Ready && now.duration_since(w.last_seen) > self.deadline {
                w.state = WorkerState::Draining;
                drained.push((id, w.inflight.drain(..).collect()));
            }
        }
        drained
    }

    /// Forget `id` entirely (connection torn down), returning any jobs it
    /// still held for re-queueing. Idempotent: unknown ids return empty.
    pub fn remove(&mut self, id: u64) -> Vec<JobKey> {
        self.workers.remove(&id).map(|mut w| w.inflight.drain(..).collect()).unwrap_or_default()
    }

    /// Record that `key` was sent to worker `id`.
    ///
    /// # Panics
    /// When `id` is unknown — assignments only target workers picked from
    /// this registry under the same lock.
    pub fn assign(&mut self, id: u64, key: JobKey) {
        self.workers
            .get_mut(&id)
            .expect("assigning to a registered worker")
            .inflight
            .push_back(key);
    }

    /// Record that worker `id` was `INIT`ed into `session`.
    pub fn set_session(&mut self, id: u64, session: u64) {
        if let Some(w) = self.workers.get_mut(&id) {
            w.session = Some(session);
        }
    }

    /// The session worker `id` currently serves, if known.
    #[must_use]
    pub fn session(&self, id: u64) -> Option<u64> {
        self.workers.get(&id).and_then(|w| w.session)
    }

    /// Judge a `RESULT` for job index `index` arriving from worker `id`
    /// (workers echo the index they were sent; the session half of the
    /// key comes from the FIFO).
    pub fn complete(&mut self, id: u64, index: u64) -> Ack {
        let Some(w) = self.workers.get_mut(&id) else {
            return Ack::Stale;
        };
        if w.state == WorkerState::Draining {
            return Ack::Stale;
        }
        match w.inflight.front() {
            Some(&(_, front)) if front == index => {
                let key = w.inflight.pop_front().expect("front exists");
                w.last_done = Some(key);
                w.served += 1;
                Ack::Fresh(key)
            }
            _ if w.last_done.is_some_and(|(_, i)| i == index) => Ack::Duplicate,
            Some(_) => Ack::Disorder,
            None => Ack::Disorder,
        }
    }

    /// Choose a worker for a job of `session`: `Ready` with a free slot,
    /// preferring workers already `INIT`ed into that session (no
    /// re-handshake), then the least loaded, then the lowest id — a total
    /// order, so scheduling is deterministic given the same fleet state.
    #[must_use]
    pub fn pick(&self, session: u64) -> Option<u64> {
        self.workers
            .iter()
            .filter(|(_, w)| w.state == WorkerState::Ready && w.inflight.len() < w.slots)
            .min_by_key(|(&id, w)| (usize::from(w.session != Some(session)), w.inflight.len(), id))
            .map(|(&id, _)| id)
    }

    /// Workers currently `Ready`.
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.workers.values().filter(|w| w.state == WorkerState::Ready).count()
    }

    /// All registered workers (both states).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Jobs currently assigned and unanswered, fleet-wide.
    #[must_use]
    pub fn inflight_total(&self) -> usize {
        self.workers.values().map(|w| w.inflight.len()).sum()
    }

    /// Read access to one worker's entry (stats, logs, tests).
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&WorkerEntry> {
        self.workers.get(&id)
    }

    /// Registered ids in ascending order.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        self.workers.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> (Registry, Instant) {
        (Registry::new(Duration::from_millis(100)), Instant::now())
    }

    /// The satellite's lifecycle walk: register → heartbeat lapse →
    /// drain (jobs re-queued) → rejoin as a fresh id.
    #[test]
    fn register_lapse_drain_rejoin() {
        let (mut r, t0) = reg();
        let w = r.register("rack1", 2, 111, t0);
        assert_eq!(r.ready_count(), 1);
        r.assign(w, (7, 0));
        r.assign(w, (7, 1));

        // Heartbeats inside the deadline keep it Ready.
        let t1 = t0 + Duration::from_millis(80);
        assert!(r.touch(w, t1));
        assert!(r.expire(t1 + Duration::from_millis(90)).is_empty());

        // Silence past the deadline drains it and surrenders its jobs in
        // FIFO order.
        let t2 = t1 + Duration::from_millis(150);
        let drained = r.expire(t2);
        assert_eq!(drained, vec![(w, vec![(7, 0), (7, 1)])]);
        assert_eq!(r.get(w).expect("still listed").state, WorkerState::Draining);
        assert_eq!(r.ready_count(), 0);
        // Draining workers take no assignments and their late answers are
        // stale.
        assert_eq!(r.pick(7), None);
        assert_eq!(r.complete(w, 0), Ack::Stale);
        // A second expiry pass is a no-op (no double re-queue).
        assert!(r.expire(t2 + Duration::from_millis(500)).is_empty());

        // Teardown forgets it; rejoin gets a fresh id with clean state.
        assert!(r.remove(w).is_empty(), "drain already surrendered the jobs");
        let w2 = r.register("rack1", 2, 112, t2);
        assert_ne!(w, w2, "ids are never reused");
        assert_eq!(r.ready_count(), 1);
        assert_eq!(r.get(w2).expect("rejoined").inflight.len(), 0);
    }

    #[test]
    fn complete_verdicts_cover_fresh_duplicate_stale_and_disorder() {
        let (mut r, t0) = reg();
        let w = r.register("w", 4, 1, t0);
        r.assign(w, (1, 10));
        r.assign(w, (1, 11));

        // In order: fresh, and the key carries the session half.
        assert_eq!(r.complete(w, 10), Ack::Fresh((1, 10)));
        // Same index again: a duplicated frame, dropped.
        assert_eq!(r.complete(w, 10), Ack::Duplicate);
        // Out of FIFO order (or answering a job never sent): disorder.
        assert_eq!(r.complete(w, 99), Ack::Disorder);
        // Unknown worker: stale.
        assert_eq!(r.complete(424_242, 10), Ack::Stale);
        // An answer with nothing inflight and no matching last_done.
        assert_eq!(r.complete(w, 11), Ack::Fresh((1, 11)));
        assert_eq!(r.complete(w, 12), Ack::Disorder);
        assert_eq!(r.get(w).expect("w").served, 2);
    }

    #[test]
    fn pick_prefers_affinity_then_load_then_id() {
        let (mut r, t0) = reg();
        let a = r.register("a", 2, 1, t0);
        let b = r.register("b", 2, 2, t0);
        let c = r.register("c", 2, 3, t0);

        // All idle, none affine: lowest id.
        assert_eq!(r.pick(5), Some(a));
        // Affinity wins over load.
        r.set_session(c, 5);
        r.assign(c, (5, 0));
        assert_eq!(r.pick(5), Some(c), "affine worker preferred despite load");
        // …until it is full.
        r.assign(c, (5, 1));
        assert_eq!(r.pick(5), Some(a), "full affine worker skipped");
        // Load breaks ties among the rest.
        r.assign(a, (5, 2));
        assert_eq!(r.pick(5), Some(b));
        // Full fleet: nothing to pick.
        r.assign(b, (5, 3));
        r.assign(a, (5, 4));
        r.assign(b, (5, 5));
        assert_eq!(r.pick(5), None);
        assert_eq!(r.inflight_total(), 6);
    }

    /// Heartbeat-deadline *flapping*: a worker that lapses and then
    /// heartbeats again must not be resurrected in place. `touch` still
    /// records liveness (diagnostics), but the worker stays `Draining` —
    /// invisible to `pick`, its answers `Stale` — until its connection
    /// is torn down and it re-registers as a brand-new id. Other
    /// workers' in-flight FIFOs are never perturbed by the flap.
    #[test]
    fn lapsed_worker_heartbeating_again_is_not_resurrected() {
        let (mut r, t0) = reg();
        let flapper = r.register("flapper", 2, 1, t0);
        let steady = r.register("steady", 4, 2, t0);
        r.assign(flapper, (1, 0));
        r.assign(steady, (1, 1));
        r.assign(steady, (1, 2));

        // The flapper goes silent past the deadline; its job re-queues.
        let t1 = t0 + Duration::from_millis(150);
        assert!(r.touch(steady, t1));
        assert_eq!(r.expire(t1), vec![(flapper, vec![(1, 0)])]);

        // It wakes up and heartbeats again: liveness is recorded, but the
        // drain is one-way.
        let t2 = t1 + Duration::from_millis(10);
        assert!(r.touch(flapper, t2), "touch still tracks a draining worker");
        assert_eq!(r.get(flapper).expect("listed").state, WorkerState::Draining);
        assert_eq!(r.pick(1), Some(steady), "pick skips the draining flapper");
        assert_eq!(r.complete(flapper, 0), Ack::Stale, "its late answer is dropped");
        // And having been touched, it still never re-expires or re-queues.
        let t3 = t2 + Duration::from_millis(500);
        assert!(r.touch(steady, t3), "keep the steady worker alive");
        assert!(r.expire(t3).is_empty());

        // The steady worker's FIFO is untouched by the whole episode.
        assert_eq!(r.complete(steady, 1), Ack::Fresh((1, 1)));
        assert_eq!(r.complete(steady, 2), Ack::Fresh((1, 2)));

        // Reconnection is a *fresh registration*: a new id, never a
        // reused one, so a stale socket cannot impersonate its successor.
        assert!(r.remove(flapper).is_empty(), "drain already surrendered the job");
        let reborn = r.register("flapper", 2, 1, t2);
        assert!(reborn > flapper, "ids are monotonic, never reused");
        assert_eq!(r.get(reborn).expect("reborn").inflight.len(), 0);
        assert_eq!(r.ready_count(), 2);
    }

    #[test]
    fn remove_returns_outstanding_jobs_for_requeue() {
        let (mut r, t0) = reg();
        let w = r.register("w", 8, 1, t0);
        r.assign(w, (2, 4));
        r.assign(w, (2, 5));
        assert_eq!(r.complete(w, 4), Ack::Fresh((2, 4)));
        assert_eq!(r.remove(w), vec![(2, 5)]);
        assert!(r.is_empty());
        assert_eq!(r.remove(w), Vec::<JobKey>::new(), "idempotent");
    }
}

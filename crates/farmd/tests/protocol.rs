//! Dispatcher protocol tests over raw sockets: handshake hardening
//! (version skew and confusion answered with GOODBYE diagnostics, never
//! parse errors or silent closes), client session bring-up, and elastic
//! workers joining after jobs are already queued.

use petal_apps::Benchmark;
use petal_farm::net::{Endpoint, FarmStream};
use petal_farm::wire::{Message, WIRE_VERSION};
use petal_farm::{job_seed, EvalJob};
use petal_farmd::{Farmd, FarmdOptions};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// One raw protocol peer: line-in/line-out over a connected socket.
struct Peer {
    reader: BufReader<FarmStream>,
    writer: FarmStream,
}

impl Peer {
    fn connect(endpoint: &Endpoint) -> Peer {
        let stream = FarmStream::connect_retry(endpoint, Duration::from_secs(5)).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let writer = stream.try_clone().expect("clone");
        Peer { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, msg: &Message) {
        let mut line = msg.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send raw");
    }

    /// Read one message; panics on EOF or timeout (tests expect answers).
    fn recv(&mut self) -> Message {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "peer closed without the expected message");
        Message::decode(line.trim_end_matches('\n')).expect("decodes")
    }

    /// Read until EOF, expecting no further messages.
    fn expect_eof(&mut self) {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv at eof");
        assert_eq!(n, 0, "expected EOF, got `{line}`");
    }
}

fn dispatcher() -> Farmd {
    Farmd::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
        FarmdOptions { deadline: Duration::from_millis(500), ..FarmdOptions::default() },
    )
    .expect("bind")
}

#[test]
fn version_skew_is_a_goodbye_diagnostic_not_a_parse_error() {
    let farmd = dispatcher();
    let ep = farmd.endpoints()[0].clone();

    // A future peer whose range does not overlap ours: the HELLO decodes
    // (fields 0 and 1 are frozen), negotiation fails, and the reply names
    // both ranges.
    let mut peer = Peer::connect(&ep);
    peer.send(&Message::Hello { min_version: WIRE_VERSION + 7, max_version: WIRE_VERSION + 9 });
    match peer.recv() {
        Message::Hello { .. } => {}
        other => panic!("expected the dispatcher's HELLO, got {other:?}"),
    }
    match peer.recv() {
        Message::Goodbye { reason } => {
            assert!(reason.contains("no common wire version"), "{reason}");
            assert!(
                reason.contains(&format!("{}..={}", WIRE_VERSION + 7, WIRE_VERSION + 9)),
                "{reason}"
            );
        }
        other => panic!("expected GOODBYE, got {other:?}"),
    }
    peer.expect_eof();
}

#[test]
fn handshake_confusion_is_answered_with_goodbye() {
    let farmd = dispatcher();
    let ep = farmd.endpoints()[0].clone();

    // Garbage instead of HELLO.
    let mut peer = Peer::connect(&ep);
    peer.send_raw("NOT A WIRE RECORD AT ALL\n");
    match peer.recv() {
        Message::Goodbye { reason } => assert!(reason.contains("bad HELLO"), "{reason}"),
        other => panic!("expected GOODBYE, got {other:?}"),
    }

    // A legal message that is neither REGISTER nor INIT after HELLO.
    let mut peer = Peer::connect(&ep);
    peer.send(&Message::hello());
    let _their_hello = peer.recv();
    peer.send(&Message::Heartbeat { seq: 0 });
    match peer.recv() {
        Message::Goodbye { reason } => {
            assert!(
                reason.contains("expected REGISTER, INIT, RESUME or a registry request"),
                "{reason}"
            );
            assert!(reason.contains("HEARTBEAT"), "{reason}");
        }
        other => panic!("expected GOODBYE, got {other:?}"),
    }
}

#[test]
fn bad_benchmark_specs_bounce_the_client_not_the_fleet() {
    let farmd = dispatcher();
    let ep = farmd.endpoints()[0].clone();
    let mut client = Peer::connect(&ep);
    client.send(&Message::hello());
    let _their_hello = client.recv();
    client.send(&Message::Init {
        version: WIRE_VERSION,
        bench_spec: "warp10 n=64".to_owned(),
        machine: Box::new(MachineProfile::laptop()),
    });
    match client.recv() {
        Message::Goodbye { reason } => {
            assert!(reason.contains("bad benchmark spec"), "{reason}");
        }
        other => panic!("expected GOODBYE, got {other:?}"),
    }
    assert_eq!(farmd.stats().sessions, 0, "no session opened");
}

/// The elastic-join path: a client queues jobs against an empty fleet; a
/// worker that registers afterwards receives the backlog (INIT first,
/// then the jobs), and its answers are relayed to the client keyed by
/// submission index.
#[test]
fn workers_joining_after_jobs_queue_drain_the_backlog() {
    let bench = petal_apps::blackscholes::BlackScholes::new(1_000);
    let machine = MachineProfile::laptop();
    let config = bench.program(&machine).default_config(&machine);
    let jobs: Vec<EvalJob> = (0..4)
        .map(|i| EvalJob {
            config: config.clone(),
            size: bench.input_size(),
            engine_seed: job_seed(11, 0, i),
        })
        .collect();

    let farmd = dispatcher();
    let ep = farmd.endpoints()[0].clone();

    // Client first: session opens and jobs queue with zero workers.
    let mut client = Peer::connect(&ep);
    client.send(&Message::hello());
    let _their_hello = client.recv();
    client.send(&Message::Init {
        version: WIRE_VERSION,
        bench_spec: bench.spec(),
        machine: Box::new(machine.clone()),
    });
    assert_eq!(client.recv(), Message::Ready { version: WIRE_VERSION });
    // Negotiating the current wire version makes the session resumable:
    // READY is followed by its SESSION credentials.
    match client.recv() {
        Message::Session { token, .. } => assert_eq!(token, 1, "first session"),
        other => panic!("expected SESSION after READY, got {other:?}"),
    }
    for (i, job) in jobs.iter().enumerate() {
        client.send(&Message::Job { index: i as u64, job: job.clone() });
    }

    // Worker joins late and hand-serves the protocol.
    let mut worker = Peer::connect(&ep);
    worker.send(&Message::hello());
    let _their_hello = worker.recv();
    worker.send(&Message::Register { name: "late-joiner".to_owned(), slots: 2, pid: 1 });
    let mut served = 0usize;
    let mut session: Option<(Box<dyn Benchmark>, MachineProfile)> = None;
    while served < jobs.len() {
        match worker.recv() {
            Message::Init { bench_spec, machine, .. } => {
                let b = petal_apps::benchmark_from_spec(&bench_spec).expect("spec");
                session = Some((b, *machine));
            }
            Message::Job { index, job } => {
                let (b, m) = session.as_ref().expect("INIT before JOB");
                let outcome = petal_farm::evaluate_job(&**b, m, &job);
                worker.send(&Message::Result { index, outcome });
                worker.send(&Message::Heartbeat { seq: served as u64 });
                served += 1;
            }
            other => panic!("unexpected {other:?} at the worker"),
        }
    }

    // The client collects all four answers (any order), index-keyed.
    let mut got = vec![false; jobs.len()];
    for _ in 0..jobs.len() {
        match client.recv() {
            Message::Result { index, outcome } => {
                let expected = petal_farm::evaluate_job(&bench, &machine, &jobs[index as usize]);
                assert_eq!(outcome, expected, "job {index}");
                got[index as usize] = true;
            }
            other => panic!("unexpected {other:?} at the client"),
        }
    }
    assert!(got.iter().all(|&g| g), "every job answered exactly once");
    let stats = farmd.stats();
    assert_eq!(stats.completed, jobs.len() as u64);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
}

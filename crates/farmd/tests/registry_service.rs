//! Served-registry protocol tests: a dispatcher hosting a `DirStore`
//! answers `REG_GET`/`REG_PUT` over loopback sockets, concurrent
//! publishers converge to keep-best regardless of arrival order, and a
//! registry-less dispatcher bounces registry requests with a diagnostic
//! GOODBYE instead of a silent close.

use petal_apps::Benchmark;
use petal_farm::net::{Endpoint, FarmStream};
use petal_farm::wire::Message;
use petal_farmd::{Farmd, FarmdOptions};
use petal_gpu::profile::MachineProfile;
use petal_registry::{entry_to_wire, ConfigStore, DirStore, PutOutcome, RemoteStore, StoredEntry};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One raw protocol peer: line-in/line-out over a connected socket.
struct Peer {
    reader: BufReader<FarmStream>,
    writer: FarmStream,
}

impl Peer {
    fn connect(endpoint: &Endpoint) -> Peer {
        let stream = FarmStream::connect_retry(endpoint, Duration::from_secs(5)).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let writer = stream.try_clone().expect("clone");
        Peer { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, msg: &Message) {
        let mut line = msg.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
    }

    /// Read one message; panics on EOF or timeout (tests expect answers).
    fn recv(&mut self) -> Message {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "peer closed without the expected message");
        Message::decode(line.trim_end_matches('\n')).expect("decodes")
    }

    /// HELLO exchange, leaving the connection ready for a first request.
    fn handshake(&mut self) {
        self.send(&Message::hello());
        match self.recv() {
            Message::Hello { .. } => {}
            other => panic!("expected the dispatcher's HELLO, got {other:?}"),
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("petal-farmd-regsvc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serving_dispatcher(dir: &Path) -> Farmd {
    Farmd::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
        FarmdOptions { registry: Some(dir.to_path_buf()), ..FarmdOptions::default() },
    )
    .expect("bind")
}

fn entry(machine: MachineProfile, time_secs: f64) -> StoredEntry {
    let bench = petal_apps::blackscholes::BlackScholes::new(1_000);
    let config = bench.program(&machine).default_config(&machine);
    StoredEntry {
        bench_spec: petal_apps::Benchmark::spec(&bench),
        size: petal_apps::Benchmark::input_size(&bench),
        machine,
        config,
        time_secs,
        source: "registry-service-test".to_owned(),
    }
}

/// Two clients publish different-cost configs for the same key at the
/// same time: whatever order the dispatcher serves them in, exactly one
/// insert happens, the slower publisher is told it lost (or got
/// replaced), and the store converges to the better time.
#[test]
fn concurrent_reg_puts_converge_to_keep_best() {
    let dir = temp_dir("race");
    let farmd = serving_dispatcher(&dir);
    let ep = farmd.endpoints()[0].clone();

    let good = entry(MachineProfile::desktop(), 1.0e-3);
    let worse = entry(MachineProfile::desktop(), 2.0e-3);
    let outcomes: Vec<PutOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = [&good, &worse]
            .into_iter()
            .map(|e| {
                let ep = ep.clone();
                s.spawn(move || {
                    let store = RemoteStore::connect(&ep).expect("connect");
                    store.put(e, false).expect("put")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("publisher thread")).collect()
    });

    assert_eq!(
        outcomes.iter().filter(|o| **o == PutOutcome::Inserted).count(),
        1,
        "exactly one publisher inserts: {outcomes:?}"
    );
    let reader = RemoteStore::connect(&ep).expect("connect");
    let m = reader
        .lookup(&good.machine, &good.bench_spec, good.size, true)
        .expect("lookup")
        .expect("entry stored");
    assert_eq!(m.entry.time_secs, 1.0e-3, "store converged to the better time");
    drop(reader);
    drop(farmd);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The raw-wire PUT ack carries whichever entry now wins the key, so a
/// losing publisher receives the better incumbent in the same round
/// trip; misses come back as plain `REG_MISS` reasons.
#[test]
fn put_acks_carry_the_winning_entry_and_misses_are_plain() {
    let dir = temp_dir("ack");
    let farmd = serving_dispatcher(&dir);
    let ep = farmd.endpoints()[0].clone();

    let good = entry(MachineProfile::laptop(), 1.0e-3);
    let worse = entry(MachineProfile::laptop(), 2.0e-3);
    let mut peer = Peer::connect(&ep);
    peer.handshake();
    peer.send(&Message::RegPut { force: false, entry: Box::new(entry_to_wire(&good)) });
    match peer.recv() {
        Message::RegHit { verdict, entry, .. } => {
            assert_eq!(verdict, "inserted");
            assert_eq!(entry.time_secs, 1.0e-3);
        }
        other => panic!("expected the insert ack, got {other:?}"),
    }
    peer.send(&Message::RegPut { force: false, entry: Box::new(entry_to_wire(&worse)) });
    match peer.recv() {
        Message::RegHit { verdict, entry, .. } => {
            assert_eq!(verdict, "kept-existing", "keep-best refused the worse time");
            assert_eq!(entry.time_secs, 1.0e-3, "the ack hands back the incumbent");
        }
        other => panic!("expected the keep-best ack, got {other:?}"),
    }

    // A clean miss is a REG_MISS without the error prefix (the same
    // session serves many requests).
    peer.send(&Message::RegGet {
        op: "exact".to_owned(),
        bench_spec: "sort n=64".to_owned(),
        size: 64,
        machine: Some(Box::new(MachineProfile::manycore())),
    });
    match peer.recv() {
        Message::RegMiss { reason } => {
            assert!(!reason.starts_with("error:"), "a miss is not a failure: {reason}");
        }
        other => panic!("expected a miss, got {other:?}"),
    }
    peer.send(&Message::Done);
    drop(farmd);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `ls` and `gc` work over the socket exactly like against the local
/// directory: key-hash-sorted listings and a removal report that sweeps
/// planted junk.
#[test]
fn served_ls_and_gc_mirror_the_directory_store() {
    let dir = temp_dir("lsgc");
    let farmd = serving_dispatcher(&dir);
    let ep = farmd.endpoints()[0].clone();

    let store = RemoteStore::connect(&ep).expect("connect");
    for (i, m) in [MachineProfile::desktop(), MachineProfile::server()].into_iter().enumerate() {
        store.put(&entry(m, 1.0 + i as f64), false).expect("put");
    }
    let listing = store.ls().expect("ls");
    let local = ConfigStore::ls(&DirStore::open(&dir).expect("open")).expect("local ls");
    assert_eq!(listing.entries.len(), 2);
    let keys: Vec<u64> = listing.entries.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        keys,
        local.entries.iter().map(|(k, _)| *k).collect::<Vec<u64>>(),
        "served listing matches the directory scan, key order included"
    );
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "key-hash sorted");

    std::fs::write(dir.join("feedface00000000.reg"), "junk").expect("plant junk");
    let removed = store.gc().expect("gc");
    assert_eq!(removed.len(), 1, "{removed:?}");
    assert!(removed[0].contains("feedface00000000.reg"), "{removed:?}");
    assert!(store.ls().expect("ls").issues.is_empty(), "junk swept");
    drop(store);
    drop(farmd);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dispatcher started without `--registry` answers registry requests
/// with a diagnostic GOODBYE, and a RemoteStore surfaces that as a
/// remote error, not a panic or a hang.
#[test]
fn registryless_dispatchers_bounce_registry_requests() {
    let farmd = Farmd::bind(&[Endpoint::Tcp("127.0.0.1:0".to_owned())], FarmdOptions::default())
        .expect("bind");
    let ep = farmd.endpoints()[0].clone();

    let mut peer = Peer::connect(&ep);
    peer.handshake();
    peer.send(&Message::RegGet {
        op: "get".to_owned(),
        bench_spec: "sort n=64".to_owned(),
        size: 64,
        machine: Some(Box::new(MachineProfile::desktop())),
    });
    match peer.recv() {
        Message::Goodbye { reason } => assert!(reason.contains("no registry hosted"), "{reason}"),
        other => panic!("expected GOODBYE, got {other:?}"),
    }

    let store = RemoteStore::connect(&ep).expect("the handshake itself succeeds");
    let err = store
        .lookup(&MachineProfile::desktop(), "sort n=64", 64, false)
        .expect_err("lookup must fail");
    assert!(err.to_string().contains("no registry hosted"), "{err}");
}

//! The external baselines used in Fig. 7, recreated as fixed
//! configurations in our system.
//!
//! The paper compares against hand-written programs (NVIDIA SDK samples,
//! CUDPP, hand-coded PetaBricks configs). Those roles are played here by
//! pinned configurations:
//!
//! * **CPU-only Config** (Fig. 7b) — autotuning with OpenCL choices
//!   disabled: every selector forced to the CPU backend.
//! * **GPU-only Config** (Fig. 7d) — the hand-written bitonic sort on the
//!   GPU.
//! * **Hand-coded OpenCL** (Fig. 7c/7e) — a fixed, non-tuned OpenCL
//!   mapping: separable convolution with scratchpad staging at a fixed
//!   work-group geometry, and the data-parallel matmul kernel. These stand
//!   in for the SDK samples: reasonable hand choices that are never
//!   retuned per machine.

use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::Benchmark;
use petal_core::{Config, Selector, Tunable};
use petal_gpu::profile::MachineProfile;

/// CPU-only configuration: every OpenCL choice disabled (Fig. 7b baseline).
#[must_use]
pub fn cpu_only(bench: &dyn Benchmark, machine: &MachineProfile) -> Config {
    let program = bench.program(machine);
    let mut cfg = program.default_config(machine);
    let names: Vec<String> = cfg.selectors().map(|(n, _)| n.to_owned()).collect();
    for name in names {
        let n = cfg.selector(&name).expect("iterated").num_algs();
        cfg.set_selector(&name, Selector::constant(0, n));
        if cfg.tunable(&format!("{name}.gpu_ratio")).is_some() {
            cfg.set_tunable(&format!("{name}.gpu_ratio"), Tunable::new(0, 0, 8));
        }
    }
    cfg
}

/// The hand-written GPU bitonic sort (Fig. 7d "GPU-only Config").
#[must_use]
pub fn gpu_bitonic_sort(bench: &dyn Benchmark, machine: &MachineProfile) -> Option<Config> {
    if !machine.has_opencl() {
        return None;
    }
    let mut cfg = bench.program(machine).default_config(machine);
    cfg.set_selector("sort", Selector::constant(7, 8));
    Some(cfg)
}

/// The "Hand-coded OpenCL" separable-convolution baseline (Fig. 7c): the
/// SDK-style fixed mapping — separable, scratchpad staging, a fixed
/// work-group size chosen for NVIDIA hardware and never retuned.
#[must_use]
pub fn handcoded_convolution(
    bench: &SeparableConvolution,
    machine: &MachineProfile,
) -> Option<Config> {
    if !machine.has_physical_gpu() {
        return None; // the SDK sample "only runs on our Desktop system"
    }
    let mut cfg = bench.mapping_config(machine, ConvMapping::SeparableLocalMem);
    for t in ["convolve2d", "convolve_rows", "convolve_columns"] {
        // 96 = 3 warps: fine on NVIDIA, a poor fit elsewhere — the point of
        // a hand-coded constant.
        cfg.set_tunable(&format!("{t}.local_size"), Tunable::new(96, 1, 1024));
    }
    Some(cfg)
}

/// The "Hand-coded OpenCL" matmul baseline (Fig. 7e): the data-parallel
/// GPU kernel pinned at a fixed geometry.
#[must_use]
pub fn handcoded_matmul(bench: &dyn Benchmark, machine: &MachineProfile) -> Option<Config> {
    if !machine.has_physical_gpu() {
        return None;
    }
    let mut cfg = bench.program(machine).default_config(machine);
    cfg.set_selector("matmul", Selector::constant(6, 7));
    cfg.set_tunable("matmul.local_size", Tunable::new(256, 1, 1024));
    cfg.set_tunable("matmul.gpu_ratio", Tunable::new(8, 0, 8));
    Some(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_apps::sort::Sort;
    use petal_apps::strassen::Strassen;

    #[test]
    fn cpu_only_config_runs_everywhere() {
        let b = Strassen::new(64);
        for m in MachineProfile::all() {
            let cfg = cpu_only(&b, &m);
            assert!(b.run_with_config(&m, &cfg).is_ok(), "{}", m.codename);
        }
    }

    #[test]
    fn gpu_baselines_run_on_gpu_machines() {
        let d = MachineProfile::desktop();
        let sort = Sort::new(4096);
        let cfg = gpu_bitonic_sort(&sort, &d).expect("desktop has a device");
        sort.run_with_config(&d, &cfg).unwrap();
        let conv = SeparableConvolution::new(64, 5);
        let cfg = handcoded_convolution(&conv, &d).expect("desktop has a physical GPU");
        conv.run_with_config(&d, &cfg).unwrap();
        let mm = Strassen::new(64);
        let cfg = handcoded_matmul(&mm, &d).expect("desktop has a physical GPU");
        mm.run_with_config(&d, &cfg).unwrap();
    }

    #[test]
    fn handcoded_baselines_absent_without_physical_gpu() {
        let s = MachineProfile::server();
        let conv = SeparableConvolution::new(64, 5);
        assert!(handcoded_convolution(&conv, &s).is_none());
    }
}

//! # petal-bench — harness regenerating every figure and table of §6
//!
//! Each `fig*` binary reproduces one artifact of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_convolution` | Fig. 2 — convolution mapping sweep over kernel widths |
//! | `fig6_configs` | Fig. 6 — autotuned configuration table |
//! | `fig7_migration` | Fig. 7(a–g) — configuration-migration matrices + baselines |
//! | `fig8_properties` | Fig. 8 — benchmark properties table |
//! | `fig9_machines` | Fig. 9 — test-system table |
//! | `ablation_ircache` | §5.4 — IR-cache / small-input-trial tuning-time ablation |
//!
//! Sizes default to reduced values so each binary finishes in seconds of
//! host time (the *virtual* times reported are what the paper's axes
//! correspond to); pass `--full` for the paper's input sizes.

use petal_apps::Benchmark;
use petal_farm::net::Endpoint;
use petal_gpu::profile::MachineProfile;
use petal_registry::{ConfigStore, DirStore, RemoteStore};
use petal_tuner::{Autotuner, Tuned, TunerSettings, WarmStart};

pub mod baselines;

/// Standard benchmark set at harness sizes.
#[must_use]
pub fn harness_benchmarks(full: bool) -> Vec<Box<dyn Benchmark>> {
    use petal_apps::*;
    if full {
        vec![
            Box::new(blackscholes::BlackScholes::new(500_000)),
            Box::new(poisson::Poisson2D::new(2048, 8)),
            Box::new(convolution::SeparableConvolution::new(3520, 7)),
            Box::new(sort::Sort::new(1 << 20)),
            Box::new(strassen::Strassen::new(1024)),
            Box::new(svd::Svd::new(256, 0.15)),
            Box::new(tridiagonal::Tridiagonal::new(1 << 20)),
        ]
    } else {
        petal_apps::all_benchmarks()
    }
}

/// The harness command line, parsed once: every flag the `fig*` binaries
/// understand, plus whatever positional arguments remain. One parser
/// means a flag added here can never silently leak into another
/// accessor's positional arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// `--full`: run at the paper's input sizes.
    pub full: bool,
    /// `--shards N` / `--shards=N` (or `PETAL_SHARDS=N`): evaluate on
    /// `N` `petal-shard` worker processes; 0 stays in-process.
    pub shards: usize,
    /// `--farmd <endpoint>` / `--farmd=<endpoint>` (or
    /// `PETAL_FARMD=<endpoint>`): evaluate against the `petal-farmd`
    /// dispatcher at `host:port`, `tcp:host:port` or `unix:<path>`.
    /// Wins over `--shards`. Both endpoint flags go through the one
    /// [`Endpoint`] grammar, so a form that works here works everywhere.
    pub farmd: Option<Endpoint>,
    /// `--registry <endpoint>` / `--registry=<endpoint>` (or
    /// `PETAL_REGISTRY=<endpoint>`): the tuned-config registry — a local
    /// directory (`dir:<path>`, or a bare path) or a
    /// `petal-farmd --registry` service (`tcp:host:port` / `unix:<path>`).
    /// Harnesses that support it store their tunes there and warm-start
    /// re-tuning from it (`fig7_migration`'s repair curves).
    pub registry: Option<Endpoint>,
    /// Everything else, in order (e.g. `fig7_migration`'s name filter).
    pub positionals: Vec<String>,
}

impl HarnessArgs {
    /// Parse an argument list (without `argv[0]`). Malformed flag values
    /// are a loud error, never a silent default.
    ///
    /// # Errors
    /// A human-readable message for a missing or non-integer `--shards`
    /// value, or a missing or malformed `--farmd` / `--registry`
    /// endpoint.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        Self::parse_with_env(
            args,
            std::env::var("PETAL_SHARDS").ok().as_deref(),
            std::env::var("PETAL_FARMD").ok().as_deref(),
            std::env::var("PETAL_REGISTRY").ok().as_deref(),
        )
    }

    /// [`Self::parse`] with the `PETAL_SHARDS` / `PETAL_FARMD` /
    /// `PETAL_REGISTRY` values passed explicitly — the actual parser, and
    /// what tests call so they never have to mutate the process
    /// environment (a data race under libtest's concurrent test threads).
    fn parse_with_env<I: IntoIterator<Item = String>>(
        args: I,
        env_shards: Option<&str>,
        env_farmd: Option<&str>,
        env_registry: Option<&str>,
    ) -> Result<Self, String> {
        let parse_shards = |raw: &str| {
            raw.parse().map_err(|_| {
                format!("bad shard count `{raw}`; expected `--shards <N>` (or PETAL_SHARDS=<N>)")
            })
        };
        // Both endpoint flags share the one `Endpoint` grammar; `none`
        // (`Endpoint::Disabled`) is the escape hatch back to local
        // operation when PETAL_FARMD / PETAL_REGISTRY are exported.
        let parse_farmd = |raw: &str| -> Result<Option<Endpoint>, String> {
            match Endpoint::parse(raw)? {
                Endpoint::Disabled => Ok(None),
                Endpoint::Dir(d) => Err(format!(
                    "--farmd needs a dispatcher socket, not the directory `{}`",
                    d.display()
                )),
                Endpoint::Fallback(elements)
                    if elements.iter().any(|e| matches!(e, Endpoint::Dir(_))) =>
                {
                    Err(format!(
                        "--farmd needs dispatcher sockets; the list `{raw}` contains a directory"
                    ))
                }
                e => Ok(Some(e)),
            }
        };
        let parse_registry = |raw: &str| -> Result<Option<Endpoint>, String> {
            match Endpoint::parse_store(raw)? {
                Endpoint::Disabled => Ok(None),
                e => Ok(Some(e)),
            }
        };
        let mut out = HarnessArgs {
            full: false,
            shards: 0,
            farmd: None,
            registry: None,
            positionals: Vec::new(),
        };
        // An explicit `--shards 0` must win over PETAL_SHARDS: the flag
        // is the documented escape hatch back to in-process evaluation.
        let mut shards_from_cli = false;
        let mut farmd_from_cli = false;
        let mut registry_from_cli = false;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--shards" => {
                    let raw = args.next().ok_or("--shards is missing its value")?;
                    out.shards = parse_shards(&raw)?;
                    shards_from_cli = true;
                }
                a if a.starts_with("--shards=") => {
                    out.shards = parse_shards(&a["--shards=".len()..])?;
                    shards_from_cli = true;
                }
                "--farmd" => {
                    let raw = args.next().ok_or("--farmd is missing its value")?;
                    out.farmd = parse_farmd(&raw)?;
                    farmd_from_cli = true;
                }
                a if a.starts_with("--farmd=") => {
                    out.farmd = parse_farmd(&a["--farmd=".len()..])?;
                    farmd_from_cli = true;
                }
                "--registry" => {
                    let raw = args.next().ok_or("--registry is missing its value")?;
                    out.registry = parse_registry(&raw)?;
                    registry_from_cli = true;
                }
                a if a.starts_with("--registry=") => {
                    out.registry = parse_registry(&a["--registry=".len()..])?;
                    registry_from_cli = true;
                }
                _ => out.positionals.push(a),
            }
        }
        if !shards_from_cli {
            if let Some(raw) = env_shards {
                out.shards = parse_shards(raw)?;
            }
        }
        if !farmd_from_cli {
            if let Some(raw) = env_farmd {
                out.farmd = parse_farmd(raw)?;
            }
        }
        if !registry_from_cli {
            if let Some(raw) = env_registry {
                out.registry = parse_registry(raw)?;
            }
        }
        Ok(out)
    }

    /// Parse the process's real command line, exiting loudly on a
    /// malformed flag. Parsed once per process; the free-function
    /// accessors all read the same cached result.
    #[must_use]
    pub fn from_env() -> Self {
        static PARSED: std::sync::OnceLock<HarnessArgs> = std::sync::OnceLock::new();
        PARSED
            .get_or_init(|| {
                Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            })
            .clone()
    }
}

/// `--full` flag shared by the harness binaries.
#[must_use]
pub fn full_flag() -> bool {
    HarnessArgs::from_env().full
}

/// `--shards N` flag (or `PETAL_SHARDS=N`) shared by the harness
/// binaries: run candidate evaluation on `N` `petal-shard` worker
/// processes instead of in-process threads. 0 (the default) stays
/// in-process. Results are bit-identical either way; build the worker
/// first (`cargo build --release -p petal_shard`) or point
/// `PETAL_SHARD_BIN` at it.
#[must_use]
pub fn shards_flag() -> usize {
    HarnessArgs::from_env().shards
}

/// `--farmd <endpoint>` flag (or `PETAL_FARMD=<endpoint>`) shared by the
/// harness binaries: evaluate against the `petal-farmd` dispatcher at
/// `host:port`, `tcp:host:port` or `unix:<path>` instead of local
/// workers — or a comma-separated fallback list of dispatcher sockets,
/// walked in order on every connect. Results are bit-identical to every
/// local mode; `--farmd none` forces local evaluation when the
/// environment variable is exported.
#[must_use]
pub fn farmd_flag() -> Option<Endpoint> {
    HarnessArgs::from_env().farmd
}

/// `--registry <endpoint>` flag (or `PETAL_REGISTRY=<endpoint>`) shared
/// by the harness binaries: the tuned-config registry, either a local
/// directory (`dir:<path>` or a bare path) or a served registry
/// (`tcp:host:port` / `unix:<path>`, a `petal-farmd --registry`
/// dispatcher). A comma-separated list (`tcp:a:1,tcp:b:1,dir:/srv/reg`)
/// fails over across registry hosts, with a `dir:` element as the
/// terminal local fallback. `--registry none` forces registry-free
/// operation when the environment variable is exported.
#[must_use]
pub fn registry_flag() -> Option<Endpoint> {
    HarnessArgs::from_env().registry
}

/// Positional (non-flag) arguments, for binaries like `fig7_migration`
/// that take a benchmark-name filter.
#[must_use]
pub fn positional_args() -> Vec<String> {
    HarnessArgs::from_env().positionals
}

/// The farm settings the harness binaries run with: a remote dispatcher
/// when `--farmd`/`PETAL_FARMD` names one, `--shards N` worker processes
/// when sharding was requested, otherwise one thread per hardware thread.
#[must_use]
pub fn harness_farm_settings() -> petal_farm::FarmSettings {
    if let Some(endpoint) = farmd_flag() {
        return petal_farm::FarmSettings::remote(endpoint.to_string());
    }
    match shards_flag() {
        0 => petal_farm::FarmSettings::host_parallel(),
        n => petal_farm::FarmSettings::sharded(n),
    }
}

/// Criterion sample size for the bench suites: tiny under `PETAL_SMOKE=1`
/// (the CI smoke run only checks the suites still execute), normal
/// otherwise.
#[must_use]
pub fn bench_sample_size() -> usize {
    if petal_apps::workload::smoke_mode() {
        3
    } else {
        10
    }
}

/// Shrink a bench workload size under `PETAL_SMOKE=1`.
#[must_use]
pub fn bench_size(full: usize, smoke: usize) -> usize {
    if petal_apps::workload::smoke_mode() {
        smoke
    } else {
        full
    }
}

/// Tuner settings used by the harnesses (slightly larger than smoke).
///
/// Evaluation runs on the farm with one worker per available hardware
/// thread: results are bit-identical to a sequential search (the farm's
/// determinism contract), only wall-clock time changes.
#[must_use]
pub fn harness_tuner_settings() -> TunerSettings {
    TunerSettings {
        seed: 0xf1675,
        trials_per_round: 40,
        population: 5,
        size_schedule: vec![1.0 / 16.0, 1.0 / 4.0, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: true,
        farm: harness_farm_settings(),
        kick_after: 2,
        kick_strength: 3,
        warm_start: None,
    }
}

/// Autotune `bench` for `machine` with harness settings.
#[must_use]
pub fn tune(bench: &dyn Benchmark, machine: &MachineProfile) -> Tuned {
    Autotuner::new(bench, machine, harness_tuner_settings()).run()
}

/// Open the config store a registry endpoint names: `dir:` endpoints
/// open the directory in-process, `tcp:`/`unix:` endpoints connect to a
/// `petal-farmd --registry` dispatcher. The two are indistinguishable
/// behind the returned [`ConfigStore`].
///
/// A comma-separated fallback list walks its elements in order: socket
/// elements are tried first (the [`RemoteStore`] walks them on every
/// connect), and a `dir:` element — if present — is the terminal local
/// fallback when no service answers, so `tcp:a:1,tcp:b:1,dir:/srv/reg`
/// degrades from the primary registry host to a standby to a plain
/// directory without killing the run.
///
/// # Errors
/// A human-readable message when the directory cannot be opened, the
/// service cannot be reached (and no `dir:` fallback exists), or the
/// endpoint is `none`.
pub fn open_config_store(endpoint: &Endpoint) -> Result<Box<dyn ConfigStore>, String> {
    let open_dir = |dir: &std::path::Path| {
        DirStore::open(dir.to_path_buf())
            .map(|s| Box::new(s) as Box<dyn ConfigStore>)
            .map_err(|e| format!("cannot open registry directory `{}`: {e}", dir.display()))
    };
    match endpoint {
        Endpoint::Dir(dir) => open_dir(dir),
        Endpoint::Disabled => Err("the registry is disabled (`none`)".to_owned()),
        Endpoint::Fallback(elements) => {
            let dir = elements.iter().find_map(|e| match e {
                Endpoint::Dir(d) => Some(d.clone()),
                _ => None,
            });
            let service_err = if endpoint.socket_elements().is_empty() {
                None
            } else {
                match RemoteStore::connect(endpoint) {
                    Ok(s) => return Ok(Box::new(s)),
                    Err(e) => Some(e),
                }
            };
            match (dir, service_err) {
                (Some(d), Some(e)) => {
                    eprintln!(
                        "warning: registry service unreachable ({e}); \
                         falling back to directory `{}`",
                        d.display()
                    );
                    open_dir(&d)
                }
                (Some(d), None) => open_dir(&d),
                (None, Some(e)) => {
                    Err(format!("cannot reach the registry service at `{endpoint}`: {e}"))
                }
                (None, None) => {
                    Err(format!("registry endpoint list `{endpoint}` has nothing to open"))
                }
            }
        }
        remote => RemoteStore::connect(remote)
            .map(|s| Box::new(s) as Box<dyn ConfigStore>)
            .map_err(|e| format!("cannot reach the registry service at `{remote}`: {e}")),
    }
}

/// The store `--registry`/`PETAL_REGISTRY` names, opened, or `None`
/// with a stderr warning when it cannot be (the registry is an
/// optimization — an unreachable one must not kill a harness run).
#[must_use]
pub fn registry_store() -> Option<Box<dyn ConfigStore>> {
    let endpoint = registry_flag()?;
    match open_config_store(&endpoint) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("warning: {e}");
            None
        }
    }
}

/// The store's nearest config for `(machine, bench)` as a tuner
/// [`WarmStart`], with a provenance label naming the match tier and
/// donor machine (`registry:family:Laptop`; cross-size donors append
/// the size they were rescaled from). `None` when the store has no
/// usable entry — a warm start is an optimization, never a hard
/// failure, but store errors are reported on stderr so an operator
/// sees why a run tuned cold.
#[must_use]
pub fn registry_warm_start(
    store: &dyn ConfigStore,
    machine: &MachineProfile,
    bench: &dyn Benchmark,
) -> Option<WarmStart> {
    match store.lookup(machine, &bench.spec(), bench.input_size(), false) {
        Ok(Some(m)) => Some(WarmStart {
            source: match m.scaled_from {
                None => format!("registry:{}:{}", m.tier, m.entry.machine.codename),
                Some(size) => {
                    format!("registry:{}:{}:from-size-{size}", m.tier, m.entry.machine.codename)
                }
            },
            config: m.entry.config,
        }),
        Ok(None) => None,
        Err(e) => {
            eprintln!("warning: registry warm-start unavailable: {e}");
            None
        }
    }
}

/// Autotune with a warm start from `store` (when it has a usable
/// donor), then offer the improved result back with keep-best semantics
/// — the tune → store → warm-start loop one deployment iteration
/// performs, against a local directory and a served registry alike.
#[must_use]
pub fn tune_warm(
    store: &dyn ConfigStore,
    bench: &dyn Benchmark,
    machine: &MachineProfile,
) -> Tuned {
    let settings = TunerSettings {
        warm_start: registry_warm_start(store, machine, bench),
        ..harness_tuner_settings()
    };
    let tuned = Autotuner::new(bench, machine, settings).run();
    store_tuned(store, bench, machine, &tuned, "tune_warm");
    tuned
}

/// Offer a tuning result to `store` (keep-best). Failures are reported,
/// not fatal: a read-only registry must not kill a run.
pub fn store_tuned(
    store: &dyn ConfigStore,
    bench: &dyn Benchmark,
    machine: &MachineProfile,
    tuned: &Tuned,
    source: &str,
) {
    let entry = petal_registry::StoredEntry {
        machine: machine.clone(),
        bench_spec: bench.spec(),
        size: bench.input_size(),
        config: tuned.config.clone(),
        time_secs: tuned.time_secs,
        source: source.to_owned(),
    };
    if let Err(e) = store.put(&entry, false) {
        eprintln!("warning: could not store tuned config: {e}");
    }
}

/// Render a simple fixed-width table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:<w$} ", w = w));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_benchmark_set_is_complete() {
        let names: Vec<String> =
            harness_benchmarks(false).iter().map(|b| b.name().to_owned()).collect();
        for expected in [
            "Black-Scholes",
            "Poisson2D SOR",
            "SeparableConvolution",
            "Sort",
            "Strassen",
            "SVD",
            "Tridiagonal Solver",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&["a".into(), "bb".into()], &[4, 4]);
        assert_eq!(r, "a    bb");
    }

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn harness_args_parse_flags_and_positionals() {
        let a = parse(&["scholes", "--shards", "4", "--full"]).expect("parses");
        assert_eq!(
            a,
            HarnessArgs {
                full: true,
                shards: 4,
                farmd: None,
                registry: None,
                positionals: vec!["scholes".into()],
            }
        );
        let a = parse(&["--shards=2"]).expect("parses");
        assert_eq!(a.shards, 2);
        assert!(a.positionals.is_empty(), "--shards=N is a flag, not a filter");
        let a = parse(&["--farmd", "127.0.0.1:7777"]).expect("parses");
        assert_eq!(a.farmd, Some(Endpoint::Tcp("127.0.0.1:7777".to_owned())));
        let a = parse(&["--farmd=unix:/tmp/farm.sock", "scholes"]).expect("parses");
        assert_eq!(a.farmd, Some(Endpoint::Unix("/tmp/farm.sock".into())));
        assert_eq!(a.positionals, vec!["scholes".to_owned()]);
        let a = parse(&["--registry", "/tmp/reg", "scholes"]).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Dir("/tmp/reg".into())));
        assert_eq!(a.positionals, vec!["scholes".to_owned()]);
        let a = parse(&["--registry=dir:/tmp/reg2"]).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Dir("/tmp/reg2".into())));
        assert!(a.positionals.is_empty(), "--registry=DIR is a flag, not a filter");
        // A served registry is the same flag, different endpoint form.
        let a = parse(&["--registry", "tcp:127.0.0.1:7777"]).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Tcp("127.0.0.1:7777".to_owned())));
    }

    #[test]
    fn harness_args_reject_malformed_shards_loudly() {
        assert!(parse(&["--shards"]).is_err(), "missing value");
        assert!(parse(&["--shards", "bogus"]).is_err(), "non-integer value");
        assert!(parse(&["--shards=x"]).is_err(), "non-integer inline value");
        assert!(parse(&["--farmd"]).is_err(), "missing endpoint value");
        assert!(parse(&["--registry"]).is_err(), "missing registry value");
    }

    #[test]
    fn harness_args_reject_malformed_endpoints_loudly() {
        let e = parse(&["--farmd", "tcp:nohost"]).expect_err("port required");
        assert!(e.contains("missing its port"), "{e}");
        let e = parse(&["--farmd", "dir:/srv/reg"]).expect_err("farmd is a socket");
        assert!(e.contains("dispatcher socket"), "{e}");
        // The same grammar misparse is loud through the env path too.
        assert!(parse_env(&[], None, Some("tcp:nohost"), None).is_err());
        assert!(parse_env(&[], None, None, Some("tcp:nohost")).is_err());
    }

    fn parse_env(
        args: &[&str],
        shards: Option<&str>,
        farmd: Option<&str>,
        registry: Option<&str>,
    ) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_with_env(args.iter().map(|s| (*s).to_owned()), shards, farmd, registry)
    }

    #[test]
    fn explicit_shards_zero_beats_the_environment() {
        let a = parse_env(&["--shards", "0"], Some("4"), None, None).expect("parses");
        assert_eq!(a.shards, 0, "CLI escape hatch wins");
        let a = parse_env(&[], Some("4"), None, None).expect("parses");
        assert_eq!(a.shards, 4, "env applies without the flag");
        assert!(parse_env(&[], Some("bogus"), None, None).is_err(), "malformed env is loud too");
    }

    #[test]
    fn explicit_farmd_none_beats_the_environment() {
        let a =
            parse_env(&["--farmd", "none"], None, Some("127.0.0.1:7777"), None).expect("parses");
        assert_eq!(a.farmd, None, "CLI escape hatch wins");
        let a = parse_env(&[], None, Some("127.0.0.1:7777"), None).expect("parses");
        assert_eq!(a.farmd, Some(Endpoint::Tcp("127.0.0.1:7777".to_owned())), "env applies");
        let a =
            parse_env(&["--farmd", "unix:/s"], None, Some("127.0.0.1:1"), None).expect("parses");
        assert_eq!(a.farmd, Some(Endpoint::Unix("/s".into())), "flag beats env");
    }

    #[test]
    fn explicit_registry_none_beats_the_environment() {
        let a = parse_env(&["--registry", "none"], None, None, Some("/srv/reg")).expect("parses");
        assert_eq!(a.registry, None, "CLI escape hatch wins");
        let a = parse_env(&[], None, None, Some("/srv/reg")).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Dir("/srv/reg".into())), "env applies");
        let a = parse_env(&["--registry=/cli/reg"], None, None, Some("/srv/reg")).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Dir("/cli/reg".into())), "flag beats env");
        // Served endpoints ride the same env-vs-flag path as directories.
        let a = parse_env(&[], None, None, Some("tcp:10.0.0.1:7777")).expect("parses");
        assert_eq!(a.registry, Some(Endpoint::Tcp("10.0.0.1:7777".to_owned())), "env applies");
    }

    #[test]
    fn warm_tuning_round_trips_through_a_registry() {
        use petal_apps::blackscholes::BlackScholes;
        let dir = std::env::temp_dir().join(format!("petal-bench-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = BlackScholes::new(50_000);
        let machine = MachineProfile::desktop();
        let store = DirStore::open(&dir).expect("open");
        assert!(
            registry_warm_start(&store, &machine, &bench).is_none(),
            "empty registry yields no warm start"
        );
        let settings = TunerSettings {
            farm: petal_tuner::FarmSettings::sequential(),
            ..TunerSettings::smoke()
        };
        let tuned = Autotuner::new(&bench, &machine, settings).run();
        store_tuned(&store, &bench, &machine, &tuned, "unit-test");
        let ws = registry_warm_start(&store, &machine, &bench).expect("stored entry found");
        assert_eq!(ws.config, tuned.config);
        assert_eq!(ws.source, "registry:exact:Desktop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

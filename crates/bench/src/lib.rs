//! # petal-bench — harness regenerating every figure and table of §6
//!
//! Each `fig*` binary reproduces one artifact of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_convolution` | Fig. 2 — convolution mapping sweep over kernel widths |
//! | `fig6_configs` | Fig. 6 — autotuned configuration table |
//! | `fig7_migration` | Fig. 7(a–g) — configuration-migration matrices + baselines |
//! | `fig8_properties` | Fig. 8 — benchmark properties table |
//! | `fig9_machines` | Fig. 9 — test-system table |
//! | `ablation_ircache` | §5.4 — IR-cache / small-input-trial tuning-time ablation |
//!
//! Sizes default to reduced values so each binary finishes in seconds of
//! host time (the *virtual* times reported are what the paper's axes
//! correspond to); pass `--full` for the paper's input sizes.

use petal_apps::Benchmark;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, Tuned, TunerSettings};

pub mod baselines;

/// Standard benchmark set at harness sizes.
#[must_use]
pub fn harness_benchmarks(full: bool) -> Vec<Box<dyn Benchmark>> {
    use petal_apps::*;
    if full {
        vec![
            Box::new(blackscholes::BlackScholes::new(500_000)),
            Box::new(poisson::Poisson2D::new(2048, 8)),
            Box::new(convolution::SeparableConvolution::new(3520, 7)),
            Box::new(sort::Sort::new(1 << 20)),
            Box::new(strassen::Strassen::new(1024)),
            Box::new(svd::Svd::new(256, 0.15)),
            Box::new(tridiagonal::Tridiagonal::new(1 << 20)),
        ]
    } else {
        petal_apps::all_benchmarks()
    }
}

/// `--full` flag shared by the harness binaries.
#[must_use]
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Criterion sample size for the bench suites: tiny under `PETAL_SMOKE=1`
/// (the CI smoke run only checks the suites still execute), normal
/// otherwise.
#[must_use]
pub fn bench_sample_size() -> usize {
    if petal_apps::workload::smoke_mode() {
        3
    } else {
        10
    }
}

/// Shrink a bench workload size under `PETAL_SMOKE=1`.
#[must_use]
pub fn bench_size(full: usize, smoke: usize) -> usize {
    if petal_apps::workload::smoke_mode() {
        smoke
    } else {
        full
    }
}

/// Tuner settings used by the harnesses (slightly larger than smoke).
///
/// Evaluation runs on the farm with one worker per available hardware
/// thread: results are bit-identical to a sequential search (the farm's
/// determinism contract), only wall-clock time changes.
#[must_use]
pub fn harness_tuner_settings() -> TunerSettings {
    TunerSettings {
        seed: 0xf1675,
        trials_per_round: 40,
        population: 5,
        size_schedule: vec![1.0 / 16.0, 1.0 / 4.0, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: true,
        farm: petal_farm::FarmSettings::host_parallel(),
        kick_after: 2,
        kick_strength: 3,
    }
}

/// Autotune `bench` for `machine` with harness settings.
#[must_use]
pub fn tune(bench: &dyn Benchmark, machine: &MachineProfile) -> Tuned {
    Autotuner::new(bench, machine, harness_tuner_settings()).run()
}

/// Render a simple fixed-width table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:<w$} ", w = w));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_benchmark_set_is_complete() {
        let names: Vec<String> =
            harness_benchmarks(false).iter().map(|b| b.name().to_owned()).collect();
        for expected in [
            "Black-Scholes",
            "Poisson2D SOR",
            "SeparableConvolution",
            "Sort",
            "Strassen",
            "SVD",
            "Tridiagonal Solver",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&["a".into(), "bb".into()], &[4, 4]);
        assert_eq!(r, "a    bb");
    }
}

//! Regenerates Figure 2: execution time of the four OpenCL mappings of
//! SeparableConvolution (plus the autotuned configuration) over kernel
//! widths 3..=17, on each of the three machines.
//!
//! The paper's claim to reproduce: every mapping is optimal for at least
//! one (machine, width) point, and the autotuner always matches the best.

use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::Benchmark;
use petal_bench::{full_flag, harness_farm_settings, row};
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, TunerSettings};

fn main() {
    let n = if full_flag() { 1024 } else { 256 };
    // PETAL_SMOKE=1 samples the sweep (one machine, three widths) so the
    // CI farmd loopback smoke finishes in seconds; the paper claim is
    // still asserted at every sampled point.
    let smoke = petal_apps::workload::smoke_mode();
    println!("Figure 2: SeparableConvolution mappings, input {n}x{n} (virtual seconds)\n");
    let widths = [22, 12, 12, 12, 12, 12];
    let settings = TunerSettings {
        seed: 2,
        trials_per_round: 48,
        population: 5,
        size_schedule: vec![0.25, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: false,
        farm: harness_farm_settings(),
        kick_after: 1,
        kick_strength: 3,
        warm_start: None,
    };
    let mut machines = MachineProfile::all();
    if smoke {
        machines.truncate(1);
    }
    for machine in machines {
        println!("--- {} ---", machine.codename);
        let mut header = vec!["Kernel width".to_owned()];
        header.extend(ConvMapping::all().iter().map(|m| m.label().to_owned()));
        header.push("Autotuner".to_owned());
        println!("{}", row(&header, &widths));
        for k in (3..=17).step_by(2) {
            if smoke && !matches!(k, 3 | 9 | 17) {
                continue;
            }
            let bench = SeparableConvolution::new(n, k);
            let mut cells = vec![k.to_string()];
            let mut best_pinned = f64::INFINITY;
            for mapping in ConvMapping::all() {
                let cfg = bench.mapping_config(&machine, mapping);
                let t = bench
                    .run_with_config(&machine, &cfg)
                    .expect("mapping runs")
                    .virtual_time_secs();
                best_pinned = best_pinned.min(t);
                cells.push(format!("{t:.6}"));
            }
            let tuned = Autotuner::new(&bench, &machine, settings.clone()).run();
            cells.push(format!("{:.6}", tuned.time_secs));
            println!("{}", row(&cells, &widths));
            // Paper claim: the autotuner matches (or beats — it may also
            // choose CPU backends and splits the pinned mappings cannot)
            // the best pinned mapping at every point. The perturbation
            // restarts ("kicks") in the mutation schedule carry the search
            // across the separable+scratchpad fitness valley that used to
            // strand it at Desktop kernel widths >= 13.
            assert!(
                tuned.time_secs <= best_pinned * 1.05,
                "{}, width {k}: autotuner {:.2}x the best pinned mapping",
                machine.codename,
                tuned.time_secs / best_pinned
            );
        }
        println!();
    }
    println!("Paper claim holds: the autotuner matched the best pinned mapping everywhere.");
}

//! Regenerates Figure 6: the table of autotuned configurations per
//! benchmark per machine, summarized as poly-algorithm descriptions.

use petal_bench::{full_flag, harness_benchmarks, tune};
use petal_gpu::profile::MachineProfile;
use petal_tuner::describe_config;

fn main() {
    println!("Figure 6: autotuned configurations (summary of primary differences)\n");
    for bench in harness_benchmarks(full_flag()) {
        println!("=== {} ===", bench.name());
        for machine in MachineProfile::all() {
            let tuned = tune(&*bench, &machine);
            println!(
                "{:8} ({:.5}s): {}",
                machine.codename,
                tuned.time_secs,
                describe_config(&tuned.config)
            );
        }
        println!();
    }
}

//! Host-time throughput harness for the simulator's hot loop.
//!
//! Where `bench_baseline` pins *virtual* reference numbers (the cost
//! model), this binary pins **host-side throughput**: how fast the engine
//! chews through scheduling events and how many autotuner trials one
//! thread completes per wall-clock second. Because the optimized
//! scheduler's predecessor is retained as
//! [`petal_rt::SchedPolicy::NaiveScan`] (bit-identical behavior, original
//! full-scan cost), the before/after table is *regenerated live* on every
//! run — both columns always come from the same host, same build, same
//! workloads.
//!
//! Metrics:
//!
//! * `engine_events_per_sec` — scheduling decisions (`RunReport::
//!   sched_steps`) per host second of plan execution (`Executor::run`)
//!   under scheduler-stressing recursive configurations, per
//!   machine/workload;
//! * `tuner_trials_per_sec` — autotuner trials per host second on one
//!   farm thread, per machine profile.
//!
//! Modes:
//!
//! * no args — print the table JSON to stdout;
//! * `--write` — regenerate `BENCH_hotpath.json` at the repo root;
//! * `--check` — re-measure and fail if the committed speedup eroded: the
//!   live `naive → incremental` ratio must stay above a *generous*
//!   regression floor (a third of the committed gain, at least 1.05×) so
//!   host noise never makes CI flaky, but a PR that quietly reverts the
//!   scheduler to quadratic scanning fails loudly.

use petal_apps::Benchmark;
use petal_core::executor::Executor;
use petal_core::{Config, Selector, Tunable};
use petal_gpu::profile::MachineProfile;
use petal_rt::{set_default_sched_policy, SchedPolicy};
use petal_tuner::{Autotuner, TunerSettings};
use std::fmt::Write as _;
use std::time::Instant;

/// One before/after row.
struct Entry {
    key: String,
    metric: &'static str,
    /// Throughput under [`SchedPolicy::NaiveScan`] (the retained original
    /// scheduler), in metric units per host second.
    naive_per_sec: f64,
    /// Throughput under [`SchedPolicy::Incremental`].
    incremental_per_sec: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.incremental_per_sec / self.naive_per_sec
    }
}

/// The engine-throughput workloads: three machines spanning the worker
/// axis × the scheduler-bound benchmarks. Sort and Strassen run under
/// their recursive poly-algorithm configurations — the candidate shapes
/// the autotuner actually explores, and the ones that spawn deep task
/// trees (a *default* config runs nearly serial and measures matrix
/// math, not the scheduler). The convolution rides along under its
/// default mapping as an end-to-end, GPU-chain-bound control row.
fn engine_rows() -> Vec<(MachineProfile, Box<dyn Benchmark>, Config)> {
    let mut rows: Vec<(MachineProfile, Box<dyn Benchmark>, Config)> = Vec::new();
    // 4, 32 and 64 cores: per-event cost of the old scan scheduler grows
    // with worker count, so the machine axis is the point of the table.
    for machine in [MachineProfile::desktop(), MachineProfile::server(), MachineProfile::manycore()]
    {
        // Sort: recursive 2-way merge down to 32-element insertion leaves,
        // parallel merges throughout — thousands of tiny tasks.
        let sort = petal_apps::sort::Sort::new(1 << 15);
        let mut cfg = sort.program(&machine).default_config(&machine);
        cfg.set_selector("sort", Selector::new(vec![32], vec![0, 4], 8));
        cfg.set_tunable("merge_parallel_cutoff", Tunable::new(32, 16, 1 << 24));
        rows.push((machine.clone(), Box::new(sort), cfg));

        // Strassen: 8-multiply recursive decomposition down to 16x16
        // blocked leaves — a four-level 8-ary spawn tree (~6k tasks) whose
        // fan-out points flood the deques, so the naive scheduler's
        // O(workers x queue) scan cost is fully visible while the working
        // set still fits in cache (larger sizes drown the scheduler in
        // memory-bound quadrant copies).
        let strassen = petal_apps::strassen::Strassen::new(256);
        let mut cfg = strassen.program(&machine).default_config(&machine);
        cfg.set_selector("matmul", Selector::new(vec![9], vec![0, 4], 7));
        rows.push((machine.clone(), Box::new(strassen), cfg));

        // GPU-chain-bound control row (ManyCore has no OpenCL device).
        if machine.has_opencl() {
            let conv = petal_apps::convolution::SeparableConvolution::new(128, 7);
            let cfg = conv.program(&machine).default_config(&machine);
            rows.push((machine.clone(), Box::new(conv), cfg));
        }
    }
    rows
}

fn reps(full: usize, smoke: usize) -> usize {
    if petal_apps::workload::smoke_mode() {
        smoke
    } else {
        full
    }
}

/// `[NaiveScan, Incremental]` throughputs, measured interleaved.
type Columns = [f64; 2];

const POLICIES: [SchedPolicy; 2] = [SchedPolicy::NaiveScan, SchedPolicy::Incremental];

/// Events/sec of plan execution under both policies.
///
/// Only [`Executor::run`] is inside the timer: instance construction and
/// the reference-implementation check are host-side scaffolding that
/// costs the same under both policies and would otherwise drown the
/// number this harness exists to watch. The executor persists across
/// repetitions, so kernels are warm after the first (untimed) run — the
/// steady state of an autotuning trial stream.
///
/// Noise discipline: every repetition replays the *identical* simulated
/// run (the simulator is deterministic), so repetitions differ only by
/// host interference. The two policies therefore alternate within every
/// repetition (slow host drift lands on both columns equally) and each
/// column reports its **fastest** repetition — the time closest to the
/// machine's uncontended capability — rather than a mean that a single
/// background spike can ruin.
fn measure_engine(machine: &MachineProfile, bench: &dyn Benchmark, cfg: &Config) -> Columns {
    let mut ex = Executor::new(machine);
    // Warm-up run: first-touch allocation, kernel compiles, lazy statics.
    let inst = bench.instantiate(machine, cfg);
    let mut world = inst.world;
    let _ = ex.run(inst.plan, &mut world).expect("hotpath workload runs");
    let n = reps(12, 3);
    let mut events = [0usize; 2];
    let mut best = [f64::INFINITY; 2];
    for _ in 0..n {
        for (k, policy) in POLICIES.into_iter().enumerate() {
            set_default_sched_policy(policy);
            let inst = bench.instantiate(machine, cfg);
            let mut world = inst.world;
            let t0 = Instant::now();
            let report = ex.run(inst.plan, &mut world).expect("hotpath workload runs");
            best[k] = best[k].min(t0.elapsed().as_secs_f64());
            events[k] = report.rt.sched_steps;
        }
    }
    set_default_sched_policy(SchedPolicy::Incremental);
    [events[0] as f64 / best[0], events[1] as f64 / best[1]]
}

/// Trials/sec of a small single-threaded tuning run under both policies
/// (interleaved + best-repetition, like [`measure_engine`]).
fn measure_tuner(machine: &MachineProfile, bench: &dyn Benchmark) -> Columns {
    let settings = TunerSettings {
        seed: 0x407,
        trials_per_round: 10,
        population: 3,
        size_schedule: vec![0.25, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: true,
        farm: petal_farm::FarmSettings::default(),
        kick_after: 2,
        kick_strength: 3,
        warm_start: None,
    };
    let n = reps(4, 1);
    let mut trials = [0usize; 2];
    let mut best = [f64::INFINITY; 2];
    for _ in 0..n {
        for (k, policy) in POLICIES.into_iter().enumerate() {
            set_default_sched_policy(policy);
            let t0 = Instant::now();
            let tuned = Autotuner::new(bench, machine, settings.clone()).run();
            best[k] = best[k].min(t0.elapsed().as_secs_f64());
            trials[k] = tuned.stats.trials;
        }
    }
    set_default_sched_policy(SchedPolicy::Incremental);
    [trials[0] as f64 / best[0], trials[1] as f64 / best[1]]
}

fn entries() -> Vec<Entry> {
    let mut out = Vec::new();
    for (machine, bench, cfg) in engine_rows() {
        let [naive, incremental] = measure_engine(&machine, &*bench, &cfg);
        out.push(Entry {
            key: format!("{}/{}", machine.codename, bench.name().replace(' ', "_")),
            metric: "engine_events_per_sec",
            naive_per_sec: naive,
            incremental_per_sec: incremental,
        });
    }
    // One tuner row per machine, on the most scheduler-bound benchmark.
    for machine in [MachineProfile::desktop(), MachineProfile::server()] {
        let bench = petal_apps::sort::Sort::new(1024);
        let [naive, incremental] = measure_tuner(&machine, &bench);
        out.push(Entry {
            key: format!("{}/tuner_Sort", machine.codename),
            metric: "tuner_trials_per_sec",
            naive_per_sec: naive,
            incremental_per_sec: incremental,
        });
    }
    out
}

fn render(entries: &[Entry]) -> String {
    let mut s = String::from(
        "{\n  \"comment\": \"host-time throughput of the engine hot loop; both columns are \
         measured live on the generating machine (naive = retained SchedPolicy::NaiveScan \
         oracle, incremental = shipping scheduler); see docs/benchmarks.md\",\n  \"entries\": [\n",
    );
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"key\": \"{}\", \"metric\": \"{}\", \"naive_per_sec\": {:.4e}, \
             \"incremental_per_sec\": {:.4e}, \"speedup\": {:.3}}}{}",
            e.key,
            e.metric,
            e.naive_per_sec,
            e.incremental_per_sec,
            e.speedup(),
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// One committed row: key, speedup, and the absolute incremental-column
/// throughput (the flat-regression guard's reference point).
struct Committed {
    key: String,
    speedup: f64,
    incremental_per_sec: f64,
}

/// Pull `"name": <number>` out of one rendered line.
fn field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

/// Parse the committed table (flat format written by [`render`]; no JSON
/// dependency offline).
fn parse_committed(text: &str) -> Vec<Committed> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(kstart) = line.find("\"key\": \"") else { continue };
        let rest = &line[kstart + 8..];
        let Some(kend) = rest.find('"') else { continue };
        let key = rest[..kend].to_owned();
        let (Some(speedup), Some(incremental_per_sec)) =
            (field(line, "speedup"), field(line, "incremental_per_sec"))
        else {
            continue;
        };
        out.push(Committed { key, speedup, incremental_per_sec });
    }
    out
}

fn table_path() -> std::path::PathBuf {
    // crates/bench/src/bin -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
}

fn main() {
    let mode = std::env::args().nth(1);
    let entries = entries();
    let rendered = render(&entries);
    match mode.as_deref() {
        Some("--write") => {
            std::fs::write(table_path(), &rendered).expect("write BENCH_hotpath.json");
            println!("wrote {} entries to BENCH_hotpath.json", entries.len());
        }
        Some("--check") => {
            let committed =
                std::fs::read_to_string(table_path()).expect("BENCH_hotpath.json present");
            let committed = parse_committed(&committed);
            assert_eq!(committed.len(), entries.len(), "row set drifted; rerun with --write");
            let mut lost = 0;
            for (c, got) in committed.iter().zip(&entries) {
                assert_eq!(&c.key, &got.key, "row order drifted; rerun with --write");
                // Generous regression floor: keep a third of the committed
                // gain (at least 1.05x) so host noise cannot flake CI, but
                // losing the scheduler speedup outright fails. Rows whose
                // committed speedup is below 1.2x claim nothing (compute-
                // bound control rows, noisy tuner rows) and are report-only.
                let floor = (c.speedup >= 1.2).then(|| (1.0 + (c.speedup - 1.0) / 3.0).max(1.05));
                let live = got.speedup();
                let ok = !floor.is_some_and(|f| live < f);
                if !ok {
                    lost += 1;
                }
                println!(
                    "{} {}: committed speedup {:.2}x, live {live:.2}x \
                     (floor {}; {:.3e} -> {:.3e} events-or-trials/s)",
                    if ok { "ok  " } else { "LOST" },
                    c.key,
                    c.speedup,
                    floor.map_or_else(|| "none".to_owned(), |f| format!("{f:.2}x")),
                    got.naive_per_sec,
                    got.incremental_per_sec,
                );
                // Flat-regression guard. The speedup floor above is blind
                // to a slowdown that hits both scheduler columns equally —
                // e.g. new per-trial overhead on the tuner path keeps
                // `tuner_trials_per_sec`'s *ratio* flat while the absolute
                // trials/sec quietly collapses. Hold the incremental
                // column to a third of its committed absolute throughput:
                // far below any plausible host-to-host or noise spread,
                // but a 3x flat regression fails loudly.
                let drift_floor = c.incremental_per_sec / 3.0;
                if got.incremental_per_sec < drift_floor {
                    lost += 1;
                    println!(
                        "DRIFT {}: {} fell to {:.3e}/s, under a third of the committed \
                         {:.3e}/s — a flat regression the speedup ratio cannot see; if \
                         this host is really that much slower (or the workload \
                         intentionally grew), rerun `bench_hotpath --write` on the \
                         reference host and commit the diff",
                        c.key, got.metric, got.incremental_per_sec, c.incremental_per_sec,
                    );
                }
            }
            assert!(
                lost == 0,
                "{lost} hot-path row(s) regressed below their floor (LOST) or drifted \
                 flat (DRIFT); if the scheduler or workloads intentionally changed, \
                 rerun `bench_hotpath --write` and commit the diff"
            );
            println!("hotpath check passed ({} entries)", entries.len());
        }
        _ => print!("{rendered}"),
    }
}

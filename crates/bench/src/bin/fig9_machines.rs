//! Regenerates Figure 9: the table of representative test systems.

use petal_bench::row;
use petal_gpu::profile::MachineProfile;

fn main() {
    println!("Figure 9: properties of the representative test systems");
    println!("(the paper's three machines plus the iGPU/ManyCore extension profiles)\n");
    let widths = [9, 26, 6, 26, 22, 28];
    println!(
        "{}",
        row(
            &["Codename", "CPU(s)", "Cores", "GPU", "OS", "OpenCL Runtime"].map(String::from),
            &widths
        )
    );
    for m in MachineProfile::extended() {
        println!(
            "{}",
            row(
                &[
                    m.codename.clone(),
                    m.cpu.name.clone(),
                    m.cpu.cores.to_string(),
                    m.gpu.as_ref().map_or_else(|| "None".into(), |g| g.name.clone()),
                    m.os.clone(),
                    m.opencl_runtime.clone(),
                ],
                &widths
            )
        );
    }
}

//! Reference-number baseline for `crates/bench`.
//!
//! Runs a fixed, deterministic set of simulator workloads and reports, per
//! entry, the **virtual** seconds (a pure function of the cost model —
//! identical on every host) and the **host** milliseconds (meaningful only
//! on the pinned machine that generated the committed baseline).
//!
//! Modes:
//!
//! * no args — print the baseline JSON to stdout;
//! * `--write` — regenerate `BENCH_baseline.json` at the repo root (do
//!   this, and commit the diff, in any PR that intentionally changes the
//!   cost model or the simulator's hot paths);
//! * `--check` — recompute and compare virtual seconds against the
//!   committed file (relative tolerance 1e-6); host times are reported but
//!   never asserted. Exits nonzero on drift, making cost-model changes
//!   conscious instead of accidental.
//! * `--check-virtual` — the strict form: every recomputed `virtual_secs`
//!   must match the committed `virtual_bits` **exactly** (not even one ULP
//!   of drift). Virtual time is a pure function of the cost model, so this
//!   is deterministic on every host; CI runs it after host-side perf work
//!   to prove the simulator's *answers* did not move.

use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::{all_benchmarks, Benchmark};
use petal_gpu::profile::MachineProfile;
use std::fmt::Write as _;
use std::time::Instant;

struct Entry {
    key: String,
    virtual_secs: f64,
    host_ms: f64,
}

fn measure(bench: &dyn Benchmark, machine: &MachineProfile, key: String) -> Entry {
    let cfg = bench.program(machine).default_config(machine);
    let t0 = Instant::now();
    let report = bench.run_with_config(machine, &cfg).expect("baseline workload runs");
    Entry {
        key,
        virtual_secs: report.virtual_time_secs(),
        host_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn entries() -> Vec<Entry> {
    let mut out = Vec::new();
    // Default-config runs of every benchmark on the two machines whose
    // balance differs most (discrete GPU vs. CPU-backed OpenCL).
    for machine in [MachineProfile::desktop(), MachineProfile::server()] {
        for bench in all_benchmarks() {
            let small = bench.resized(bench.input_size().min(4096)).unwrap_or(bench);
            let key = format!("{}/{}", machine.codename, small.name().replace(' ', "_"));
            out.push(measure(&*small, &machine, key));
        }
    }
    // The four pinned Fig. 2 convolution mappings on the Desktop.
    let machine = MachineProfile::desktop();
    let bench = SeparableConvolution::new(128, 7);
    for mapping in ConvMapping::all() {
        let cfg = bench.mapping_config(&machine, mapping);
        let t0 = Instant::now();
        let report = bench.run_with_config(&machine, &cfg).expect("mapping runs");
        out.push(Entry {
            key: format!("Desktop/fig2_{}", mapping.label().replace(' ', "_")),
            virtual_secs: report.virtual_time_secs(),
            host_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
    }
    out
}

fn render(entries: &[Entry]) -> String {
    let mut s = String::from("{\n  \"comment\": \"reference numbers from crates/bench; virtual_secs is host-independent, host_ms is from the pinned baseline machine\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"key\": \"{}\", \"virtual_secs\": {:.9e}, \"virtual_bits\": \"{}\", \
             \"host_ms\": {:.3}}}{}",
            e.key,
            e.virtual_secs,
            petal_apps::spec_f64(e.virtual_secs),
            e.host_ms,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// One committed-baseline row: `(key, virtual_secs, exact bits if the
/// file carries them)`.
struct Committed {
    key: String,
    virtual_secs: f64,
    virtual_bits: Option<f64>,
}

/// Parse the committed baseline (flat format written by [`render`]; no
/// JSON dependency available offline).
fn parse_baseline(text: &str) -> Vec<Committed> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(kstart) = line.find("\"key\": \"") else { continue };
        let rest = &line[kstart + 8..];
        let Some(kend) = rest.find('"') else { continue };
        let key = rest[..kend].to_owned();
        let Some(vstart) = line.find("\"virtual_secs\": ") else { continue };
        let vrest = &line[vstart + 16..];
        let vend = vrest.find([',', '}']).unwrap_or(vrest.len());
        let Ok(v) = vrest[..vend].trim().parse::<f64>() else { continue };
        let bits = line.find("\"virtual_bits\": \"").and_then(|bstart| {
            let brest = &line[bstart + 17..];
            let bend = brest.find('"')?;
            petal_apps::spec_f64_parse(&brest[..bend]).ok()
        });
        out.push(Committed { key, virtual_secs: v, virtual_bits: bits });
    }
    out
}

fn baseline_path() -> std::path::PathBuf {
    // crates/bench/src/bin -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

fn main() {
    let mode = std::env::args().nth(1);
    let entries = entries();
    let rendered = render(&entries);
    match mode.as_deref() {
        Some("--write") => {
            std::fs::write(baseline_path(), &rendered).expect("write BENCH_baseline.json");
            println!("wrote {} entries to BENCH_baseline.json", entries.len());
        }
        Some(mode @ ("--check" | "--check-virtual")) => {
            let strict = mode == "--check-virtual";
            let committed =
                std::fs::read_to_string(baseline_path()).expect("BENCH_baseline.json present");
            let baseline = parse_baseline(&committed);
            assert_eq!(baseline.len(), entries.len(), "entry count drifted; rerun with --write");
            let mut drift = 0;
            for (want, got) in baseline.iter().zip(&entries) {
                let key = &want.key;
                assert_eq!(key, &got.key, "entry order drifted; rerun with --write");
                let ok = if strict {
                    // Not even one ULP of drift: virtual time is a pure
                    // function of the cost model, identical on every host.
                    let bits = want.virtual_bits.unwrap_or_else(|| {
                        panic!(
                            "{key}: no virtual_bits in BENCH_baseline.json; \
                             regenerate it once with --write"
                        )
                    });
                    bits.to_bits() == got.virtual_secs.to_bits()
                } else {
                    let rel = (got.virtual_secs - want.virtual_secs).abs()
                        / want.virtual_secs.abs().max(1e-300);
                    rel <= 1e-6
                };
                if !ok {
                    drift += 1;
                }
                println!(
                    "{} {key}: virtual {:.6e} -> {:.6e} (host {:.2} ms)",
                    if ok { "ok  " } else { "DRIFT" },
                    want.virtual_bits.unwrap_or(want.virtual_secs),
                    got.virtual_secs,
                    got.host_ms
                );
            }
            assert!(
                drift == 0,
                "{drift} virtual-time baselines drifted{}; if intentional, \
                 rerun `bench_baseline --write` and commit the diff",
                if strict { " (bit-exact comparison)" } else { "" }
            );
            println!(
                "baseline check passed ({} entries{})",
                entries.len(),
                if strict { ", bit-exact" } else { "" }
            );
        }
        _ => print!("{rendered}"),
    }
}

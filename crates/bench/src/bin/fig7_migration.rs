//! Regenerates Figure 7(a–g): configuration migration between machines.
//!
//! For every benchmark, autotune on each of the three machines; then run
//! all three tuned configurations on all three machines, normalizing to
//! the natively tuned configuration (1.0x = tuned in place; higher is
//! worse). Baselines from the paper are included where applicable:
//! CPU-only (Black-Scholes, Poisson), GPU-only bitonic (Sort), and
//! hand-coded OpenCL (Convolution, Strassen).
//!
//! Usage: `fig7_migration [benchmark-substring] [--full] [--shards N]`

use petal_apps::Benchmark;
use petal_bench::{baselines, full_flag, harness_benchmarks, positional_args, row, tune};
use petal_core::Config;
use petal_gpu::profile::MachineProfile;

fn time_on(bench: &dyn Benchmark, machine: &MachineProfile, cfg: &Config) -> Option<f64> {
    bench.run_with_config(machine, cfg).ok().map(|r| r.virtual_time_secs())
}

fn main() {
    let filter: Option<String> = positional_args().first().map(|s| s.to_lowercase());
    // The extended matrix: the paper's three machines plus the iGPU and
    // ManyCore extension profiles (migration penalties are sharpest when
    // the device balance differs most).
    let machines = MachineProfile::extended();
    let widths = [22, 12, 12, 12, 12, 12];

    for bench in harness_benchmarks(full_flag()) {
        if let Some(f) = &filter {
            if !bench.name().to_lowercase().contains(f) {
                continue;
            }
        }
        println!("=== Figure 7: {} ===", bench.name());
        // Tune natively on each machine.
        let tuned: Vec<_> = machines.iter().map(|m| tune(&*bench, m)).collect();
        let native: Vec<f64> = tuned.iter().map(|t| t.time_secs).collect();

        let mut header = vec!["Config \\ Machine".to_owned()];
        header.extend(machines.iter().map(|m| m.codename.clone()));
        println!("{}", row(&header, &widths));
        for (ci, cm) in machines.iter().enumerate() {
            let mut cells = vec![format!("{} Config", cm.codename)];
            for (mi, m) in machines.iter().enumerate() {
                let cell = match time_on(&*bench, m, &tuned[ci].config) {
                    Some(t) => format!("{:.2}x", t / native[mi]),
                    None => "n/a".to_owned(),
                };
                cells.push(cell);
            }
            println!("{}", row(&cells, &widths));
        }
        // Baselines.
        let mut baseline_rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
        match bench.name() {
            "Black-Scholes" | "Poisson2D SOR" => {
                let times = machines
                    .iter()
                    .map(|m| time_on(&*bench, m, &baselines::cpu_only(&*bench, m)))
                    .collect();
                baseline_rows.push(("CPU-only Config".into(), times));
            }
            "Sort" => {
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::gpu_bitonic_sort(&*bench, m)
                            .and_then(|cfg| time_on(&*bench, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("GPU-only Config".into(), times));
            }
            "Strassen" => {
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::handcoded_matmul(&*bench, m)
                            .and_then(|cfg| time_on(&*bench, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("Hand-coded OpenCL".into(), times));
            }
            "SeparableConvolution" => {
                let conv = petal_apps::convolution::SeparableConvolution::new(
                    if full_flag() { 3520 } else { 256 },
                    7,
                );
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::handcoded_convolution(&conv, m)
                            .and_then(|cfg| time_on(&conv, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("Hand-coded OpenCL".into(), times));
            }
            _ => {}
        }
        for (label, times) in baseline_rows {
            let mut cells = vec![label];
            for (mi, t) in times.iter().enumerate() {
                cells.push(t.map_or("n/a".into(), |t| format!("{:.2}x", t / native[mi])));
            }
            println!("{}", row(&cells, &widths));
        }
        println!(
            "native tuned times: {}\n",
            machines
                .iter()
                .zip(&native)
                .map(|(m, t)| format!("{}={t:.5}s", m.codename))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }
}

//! Regenerates Figure 7(a–g): configuration migration between machines.
//!
//! For every benchmark, autotune on each of the three machines; then run
//! all three tuned configurations on all three machines, normalizing to
//! the natively tuned configuration (1.0x = tuned in place; higher is
//! worse). Baselines from the paper are included where applicable:
//! CPU-only (Black-Scholes, Poisson), GPU-only bitonic (Sort), and
//! hand-coded OpenCL (Convolution, Strassen).
//!
//! With `--registry <endpoint>` (or `PETAL_REGISTRY=<endpoint>`) — a
//! directory or a `petal-farmd --registry` service — every native tune
//! is stored in the tuned-config registry, and the matrix gains a
//! **repair-curve** table: for each (src→dst) pair, the migration
//! penalty plus how fast a warm-started re-tune (generation 0 seeded
//! with the migrated config) closes the gap — `parity@gen N (S vs)` is
//! the first generation, and the cumulative virtual tuning seconds, at
//! which the search came within 5% of the natively tuned time. The
//! scratch column prices the same parity for the cold search, so the
//! saving is the difference.
//!
//! Usage: `fig7_migration [benchmark-substring] [--full] [--shards N]
//! [--registry <endpoint>]`

use petal_apps::workload::smoke_mode;
use petal_apps::Benchmark;
use petal_bench::{
    baselines, full_flag, harness_benchmarks, harness_tuner_settings, positional_args,
    registry_store, row, store_tuned, tune,
};
use petal_core::Config;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, Tuned, TunerSettings, WarmStart};

fn time_on(bench: &dyn Benchmark, machine: &MachineProfile, cfg: &Config) -> Option<f64> {
    bench.run_with_config(machine, cfg).ok().map(|r| r.virtual_time_secs())
}

/// `parity@gen N (S vs)` or `n/a` for one tuning run against a target.
fn parity_cell(tuned: &Tuned, target: f64) -> String {
    match tuned.stats.parity_point(target) {
        Some((generation, secs)) => format!("parity@gen {generation} ({secs:.3} vs)"),
        None => "n/a".to_owned(),
    }
}

/// The repair-curve table for one benchmark: every src→dst migration,
/// warm-started from the src config, priced against the scratch tune.
fn repair_table(
    bench: &dyn Benchmark,
    machines: &[MachineProfile],
    tuned: &[Tuned],
    native: &[f64],
) {
    let widths = [22, 10, 10, 26, 26];
    println!("--- Repair curves (warm-start re-tuning after migration) ---");
    let header =
        ["src -> dst", "penalty", "repair", "warm re-tune", "scratch tune"].map(str::to_owned);
    println!("{}", row(&header, &widths));
    for (si, src) in machines.iter().enumerate() {
        for (di, dst) in machines.iter().enumerate() {
            if si == di {
                continue;
            }
            let Some(migrated) = time_on(bench, dst, &tuned[si].config) else {
                // The migrated config cannot run here at all (e.g. it
                // commits to OpenCL on a machine without a device) —
                // the strongest possible argument for re-tuning.
                println!(
                    "{}",
                    row(
                        &[
                            format!("{} -> {}", src.codename, dst.codename),
                            "inf".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ],
                        &widths
                    )
                );
                continue;
            };
            // Warm-start the dst re-tune from the migrated config —
            // exactly what a registry hit from the src machine seeds.
            let warm = Autotuner::new(
                bench,
                dst,
                TunerSettings {
                    warm_start: Some(WarmStart {
                        config: tuned[si].config.clone(),
                        source: format!("registry:family:{}", src.codename),
                    }),
                    ..harness_tuner_settings()
                },
            )
            .run();
            let target = native[di] * 1.05;
            let repair = warm
                .stats
                .repair_generations
                .map_or_else(|| "-".to_owned(), |g| format!("gen {g}"));
            println!(
                "{}",
                row(
                    &[
                        format!("{} -> {}", src.codename, dst.codename),
                        format!("{:.2}x", migrated / native[di]),
                        repair,
                        parity_cell(&warm, target),
                        parity_cell(&tuned[di], target),
                    ],
                    &widths
                )
            );
        }
    }
}

fn main() {
    let filter: Option<String> = positional_args().first().map(|s| s.to_lowercase());
    // A directory or a served registry — the same store from here on.
    let registry = registry_store();
    // The extended matrix: the paper's three machines plus the iGPU and
    // ManyCore extension profiles (migration penalties are sharpest when
    // the device balance differs most).
    let machines = MachineProfile::extended();
    let widths = [22, 12, 12, 12, 12, 12];

    for bench in harness_benchmarks(full_flag()) {
        if let Some(f) = &filter {
            if !bench.name().to_lowercase().contains(f) {
                continue;
            }
        }
        println!("=== Figure 7: {} ===", bench.name());
        // Tune natively on each machine.
        let tuned: Vec<_> = machines.iter().map(|m| tune(&*bench, m)).collect();
        let native: Vec<f64> = tuned.iter().map(|t| t.time_secs).collect();
        if let Some(store) = &registry {
            for (m, t) in machines.iter().zip(&tuned) {
                store_tuned(&**store, &*bench, m, t, "fig7");
            }
        }

        let mut header = vec!["Config \\ Machine".to_owned()];
        header.extend(machines.iter().map(|m| m.codename.clone()));
        println!("{}", row(&header, &widths));
        for (ci, cm) in machines.iter().enumerate() {
            let mut cells = vec![format!("{} Config", cm.codename)];
            for (mi, m) in machines.iter().enumerate() {
                let cell = match time_on(&*bench, m, &tuned[ci].config) {
                    Some(t) => format!("{:.2}x", t / native[mi]),
                    None => "n/a".to_owned(),
                };
                cells.push(cell);
            }
            println!("{}", row(&cells, &widths));
        }
        // Baselines.
        let mut baseline_rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
        match bench.name() {
            "Black-Scholes" | "Poisson2D SOR" => {
                let times = machines
                    .iter()
                    .map(|m| time_on(&*bench, m, &baselines::cpu_only(&*bench, m)))
                    .collect();
                baseline_rows.push(("CPU-only Config".into(), times));
            }
            "Sort" => {
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::gpu_bitonic_sort(&*bench, m)
                            .and_then(|cfg| time_on(&*bench, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("GPU-only Config".into(), times));
            }
            "Strassen" => {
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::handcoded_matmul(&*bench, m)
                            .and_then(|cfg| time_on(&*bench, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("Hand-coded OpenCL".into(), times));
            }
            "SeparableConvolution" => {
                let conv = petal_apps::convolution::SeparableConvolution::new(
                    if full_flag() { 3520 } else { 256 },
                    7,
                );
                let times = machines
                    .iter()
                    .map(|m| {
                        baselines::handcoded_convolution(&conv, m)
                            .and_then(|cfg| time_on(&conv, m, &cfg))
                    })
                    .collect();
                baseline_rows.push(("Hand-coded OpenCL".into(), times));
            }
            _ => {}
        }
        for (label, times) in baseline_rows {
            let mut cells = vec![label];
            for (mi, t) in times.iter().enumerate() {
                cells.push(t.map_or("n/a".into(), |t| format!("{:.2}x", t / native[mi])));
            }
            println!("{}", row(&cells, &widths));
        }
        println!(
            "native tuned times: {}\n",
            machines
                .iter()
                .zip(&native)
                .map(|(m, t)| format!("{}={t:.5}s", m.codename))
                .collect::<Vec<_>>()
                .join("  ")
        );
        if registry.is_some() {
            // Each src→dst cell costs a full warm re-tune; the smoke run
            // keeps the matrix to the paper's three machines.
            let n = if smoke_mode() { 3.min(machines.len()) } else { machines.len() };
            repair_table(&*bench, &machines[..n], &tuned[..n], &native[..n]);
            println!();
        }
    }
}

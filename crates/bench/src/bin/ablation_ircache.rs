//! §5.4 ablation: how the IR cache and the reduced small-input trial count
//! change total autotuning time.

use petal_apps::convolution::SeparableConvolution;
use petal_bench::full_flag;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, TunerSettings};

fn main() {
    let n = if full_flag() { 1024 } else { 256 };
    let bench = SeparableConvolution::new(n, 7);
    let machine = MachineProfile::desktop();
    let base = TunerSettings {
        seed: 7,
        trials_per_round: 24,
        population: 4,
        size_schedule: vec![1.0 / 16.0, 1.0 / 4.0, 1.0],
        small_size_trial_fraction: 0.5,
        model_process_restarts: true,
        farm: petal_farm::FarmSettings::host_parallel(),
        kick_after: 2,
        kick_strength: 3,
        warm_start: None,
    };
    println!("Section 5.4 ablation: SeparableConvolution {n}x{n} on Desktop\n");

    let run = |label: &str, settings: TunerSettings, ir_cache: bool| {
        let mut tuner = Autotuner::new(&bench, &machine, settings);
        tuner.set_ir_cache(ir_cache);
        let tuned = tuner.run();
        println!(
            "{label:44} tuning={:8.1} virt-s  compile={:8.1} virt-s  trials={}",
            tuned.stats.tuning_secs, tuned.stats.compile_secs, tuned.stats.trials
        );
        tuned.stats.tuning_secs
    };

    let naive = run(
        "no IR cache, full trials at small sizes",
        TunerSettings { small_size_trial_fraction: 1.0, ..base.clone() },
        false,
    );
    let cache_only = run(
        "IR cache, full trials at small sizes",
        TunerSettings { small_size_trial_fraction: 1.0, ..base.clone() },
        true,
    );
    let both = run("IR cache + fewer small-size trials (paper)", base, true);
    println!(
        "\nspeedup from IR cache: {:.2}x; combined (paper's setup): {:.2}x",
        naive / cache_only,
        naive / both
    );
    assert!(cache_only < naive, "the IR cache must reduce tuning time");
    // Note: with a fixed search budget the *trajectories* of the two
    // regimes differ (fewer small-size trials explore a different kernel
    // mix), so this comparison is for the pinned seed above — the
    // qualitative §5.4 claim, not a universal invariant.
    assert!(both <= cache_only, "fewer small trials must not increase it");
}

//! Regenerates Figure 8: properties of the benchmarks — configuration
//! space size, generated OpenCL kernels, autotuning time, testing input
//! size.

use petal_bench::{full_flag, harness_benchmarks, row, tune};
use petal_gpu::profile::MachineProfile;

fn main() {
    let machine = MachineProfile::desktop();
    println!("Figure 8: benchmark properties (autotuning on Desktop)\n");
    let widths = [22, 18, 16, 20, 14];
    println!(
        "{}",
        row(
            &[
                "Name".to_owned(),
                "# PossibleConfigs".to_owned(),
                "OpenCL Kernels".to_owned(),
                "Autotuning Time".to_owned(),
                "Input Size".to_owned(),
            ],
            &widths
        )
    );
    for bench in harness_benchmarks(full_flag()) {
        let program = bench.program(&machine);
        let tuned = tune(&*bench, &machine);
        println!(
            "{}",
            row(
                &[
                    bench.name().to_owned(),
                    format!("10^{:.0}", program.log10_config_space(&machine, bench.input_size())),
                    program.generated_kernels().to_string(),
                    format!("{:.1} virt-min", tuned.stats.tuning_secs / 60.0),
                    bench.input_size().to_string(),
                ],
                &widths
            )
        );
    }
    println!("\n(Autotuning time is virtual: execution + per-trial kernel re-JIT, as in §5.4.)");
}

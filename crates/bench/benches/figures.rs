//! Criterion benches mirroring the paper's figures: host time to simulate
//! one configured run of each benchmark per machine. (The *virtual* times
//! these runs report are what the `fig*` binaries print; these benches
//! track the simulator's own cost so regressions in the reproduction
//! pipeline are caught.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::{all_benchmarks, Benchmark};
use petal_bench::{bench_sample_size, bench_size};
use petal_gpu::profile::MachineProfile;
use std::hint::black_box;

fn bench_fig2_mappings(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_conv_mappings");
    let machine = MachineProfile::desktop();
    let bench = SeparableConvolution::new(bench_size(128, 48), 7);
    for mapping in ConvMapping::all() {
        let cfg = bench.mapping_config(&machine, mapping);
        g.bench_function(BenchmarkId::new("desktop", mapping.label()), |bch| {
            bch.iter(|| black_box(bench.run_with_config(&machine, &cfg).unwrap()));
        });
    }
    g.finish();
}

fn bench_fig7_default_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_default_runs");
    g.sample_size(bench_sample_size());
    for bench in all_benchmarks() {
        // Shrink to bench-friendly sizes where the benchmark allows it.
        let target = bench_size(4096, 1024) as u64;
        let small = bench.resized(bench.input_size().min(target)).unwrap_or(bench);
        for machine in [MachineProfile::desktop(), MachineProfile::server()] {
            let cfg = small.program(&machine).default_config(&machine);
            g.bench_function(
                BenchmarkId::new(small.name().replace(' ', "_"), &machine.codename),
                |bch| {
                    bch.iter(|| black_box(small.run_with_config(&machine, &cfg).unwrap()));
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(bench_sample_size());
    targets = bench_fig2_mappings, bench_fig7_default_runs
}
criterion_main!(benches);

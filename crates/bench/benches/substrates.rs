//! Criterion benches over the substrate crates: BLAS kernels, tridiagonal
//! solvers, sort primitives, and the runtime engine's scheduling
//! throughput. These measure *host* time of the building blocks (the
//! figure binaries report virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petal_bench::{bench_sample_size, bench_size};
use petal_blas::gemm::{blocked_gemm, lapack_gemm, naive_gemm, transposed_gemm};
use petal_blas::tridiag::{cyclic_reduction_solve, diagonally_dominant_system, thomas_solve};
use petal_blas::Matrix;
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, Engine};
use std::hint::black_box;

fn sample(n: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17 + seed) % 13) as f64 - 6.0)
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    let n = bench_size(96, 32);
    let a = sample(n, 1);
    let b = sample(n, 2);
    g.bench_function(BenchmarkId::new("naive", n), |bch| {
        bch.iter(|| naive_gemm(black_box(&a), black_box(&b)));
    });
    g.bench_function(BenchmarkId::new("transposed", n), |bch| {
        bch.iter(|| transposed_gemm(black_box(&a), black_box(&b)));
    });
    g.bench_function(BenchmarkId::new("blocked64", n), |bch| {
        bch.iter(|| blocked_gemm(black_box(&a), black_box(&b), 64));
    });
    g.bench_function(BenchmarkId::new("lapack", n), |bch| {
        bch.iter(|| lapack_gemm(black_box(&a), black_box(&b)));
    });
    g.finish();
}

fn bench_tridiag(c: &mut Criterion) {
    let mut g = c.benchmark_group("tridiag");
    for n in [1 << 10, bench_size(1 << 14, 1 << 11)] {
        let sys = diagonally_dominant_system(n, 3);
        g.bench_with_input(BenchmarkId::new("thomas", n), &sys, |bch, s| {
            bch.iter(|| thomas_solve(black_box(s)));
        });
        g.bench_with_input(BenchmarkId::new("cyclic_reduction", n), &sys, |bch, s| {
            bch.iter(|| cyclic_reduction_solve(black_box(s)));
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    // Scheduling throughput: how fast the virtual-time engine retires
    // dependent task graphs (fan-out/fan-in diamonds).
    for tasks in [256usize, bench_size(2048, 512)] {
        g.bench_function(BenchmarkId::new("diamond", tasks), |bch| {
            bch.iter(|| {
                let m = MachineProfile::desktop();
                let mut e: Engine<u64> = Engine::new(&m, 1);
                let root = e.add_cpu_task(|s, _| {
                    *s += 1;
                    Charge::Work(CpuWork::new(100.0, 0.0))
                });
                let join = e.add_cpu_task(|s, _| {
                    *s += 1;
                    Charge::Work(CpuWork::new(100.0, 0.0))
                });
                for _ in 0..tasks {
                    let mid = e.add_cpu_task(|s, _| {
                        *s += 1;
                        Charge::Work(CpuWork::new(1000.0, 0.0))
                    });
                    e.add_dependency(mid, root).unwrap();
                    e.add_dependency(join, mid).unwrap();
                }
                let mut state = 0u64;
                e.run(&mut state).unwrap();
                black_box(state)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(bench_sample_size());
    targets = bench_gemm, bench_tridiag, bench_engine
}
criterion_main!(benches);

//! Ablation benches for the design choices called out in DESIGN.md:
//! scratchpad staging on/off, eager vs. lazy copy-out, and compile-cache
//! behavior. Each measures host time of the full simulated pipeline under
//! the two alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::Benchmark;
use petal_bench::{bench_sample_size, bench_size};
use petal_gpu::compile::CompileCache;
use petal_gpu::profile::MachineProfile;
use std::hint::black_box;

fn bench_local_memory_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_local_memory");
    let machine = MachineProfile::desktop();
    let bench = SeparableConvolution::new(bench_size(128, 48), 9);
    for (label, mapping) in [
        ("local_mem", ConvMapping::SeparableLocalMem),
        ("global_only", ConvMapping::SeparableNoLocal),
    ] {
        let cfg = bench.mapping_config(&machine, mapping);
        g.bench_function(BenchmarkId::new("separable_k9", label), |bch| {
            bch.iter(|| black_box(bench.run_with_config(&machine, &cfg).unwrap()));
        });
    }
    g.finish();
}

fn bench_compile_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_compile_cache");
    let gpu = MachineProfile::desktop().gpu.unwrap();
    g.bench_function("ir_cache_hit_path", |bch| {
        bch.iter(|| {
            let mut cache = CompileCache::new();
            let (_, cold) = cache.compile(&gpu, "k", "source-text");
            cache.reset_process();
            let (_, warm) = cache.compile(&gpu, "k", "source-text");
            black_box((cold, warm))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(bench_sample_size());
    targets = bench_local_memory_ablation, bench_compile_cache
}
criterion_main!(benches);

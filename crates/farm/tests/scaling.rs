//! Wall-clock scaling of the evaluation farm.
//!
//! The determinism contract says thread count never changes *results*;
//! this test checks it does change *speed*. It only asserts on hosts with
//! real parallelism (>= 4 hardware threads) — on smaller machines it still
//! exercises both paths and verifies result equality, but skips the
//! wall-clock comparison instead of flaking.

use petal_apps::convolution::{ConvMapping, SeparableConvolution};
use petal_apps::Benchmark;
use petal_farm::{job_seed, EvalFarm, EvalJob, FarmSettings};
use petal_gpu::profile::MachineProfile;
use std::time::Instant;

#[test]
fn eight_threads_beat_one_on_parallel_hosts() {
    let bench = SeparableConvolution::new(256, 7);
    let machine = MachineProfile::desktop();
    let cfg = bench.mapping_config(&machine, ConvMapping::SeparableLocalMem);
    let jobs: Vec<EvalJob> = (0..16)
        .map(|i| EvalJob {
            config: cfg.clone(),
            size: bench.input_size(),
            engine_seed: job_seed(3, 0, i),
        })
        .collect();

    let time = |threads: usize| {
        let mut farm = EvalFarm::new(&FarmSettings { threads, ..FarmSettings::sequential() }, true);
        let t0 = Instant::now();
        let results = farm.evaluate(&bench, &machine, &jobs);
        (t0.elapsed(), results)
    };
    // Warm up (page cache, lazy init), then measure.
    let _ = time(1);
    let (serial, r1) = time(1);
    let (parallel, r8) = time(8);
    for (a, b) in r1.iter().zip(&r8) {
        // Identical up to the worker label (which names the pool slot and
        // so legitimately differs between pool sizes).
        assert_eq!(a.fitness, b.fitness, "thread count must not change results");
        assert_eq!(a.trial_secs, b.trial_secs);
        assert_eq!(a.compile_secs, b.compile_secs);
        assert_eq!(a.ran, b.ran);
    }

    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if hw < 4 {
        eprintln!(
            "skipping wall-clock assertion: only {hw} hardware thread(s) \
             (serial {serial:?}, 8-thread {parallel:?})"
        );
        return;
    }
    assert!(
        parallel.as_secs_f64() < serial.as_secs_f64() * 0.75,
        "8 threads should be measurably faster: serial {serial:?} vs parallel {parallel:?}"
    );
}

//! Property tests for the shard wire format: encode/decode round-trips
//! over adversarial payloads (the ISSUE's "wire-format round-trip
//! proptest"). The format is the contract future cross-machine
//! transports implement, so the round-trip must hold for *any* record —
//! including fields full of newlines, backslashes, colons, spaces and
//! multi-byte characters, and any f64 bit pattern (NaNs included, since
//! they compare by bits here).

use petal_core::config::{Selector, Tunable};
use petal_core::Config;
use petal_farm::net::Endpoint;
use petal_farm::wire::{negotiate, version_supported, Message, Record, RegEntry, WIRE_VERSION};
use petal_farm::{EvalJob, JobOutcome};
use proptest::collection::vec;
use proptest::prelude::*;

/// Map a u64 onto a short string over a hostile alphabet: escapes,
/// separators, framing characters and multi-byte code points.
fn hostile_string(seed: u64) -> String {
    const PALETTE: [&str; 12] = ["\\", "\n", "\r", ":", " ", "a", "7", "é", "∞", "\\n", "0x", ""];
    let mut s = String::new();
    let mut z = seed;
    for _ in 0..(seed % 9) {
        s.push_str(PALETTE[(z % PALETTE.len() as u64) as usize]);
        z = z.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    s
}

/// Build a valid `Config` from raw integers (selectors need strictly
/// increasing cutoffs and in-range algorithm indices).
fn config_from(raw: &[(u64, u64)], tunables: &[(i64, i64)]) -> Config {
    let mut cfg = Config::new();
    for (i, &(cut_seed, alg_seed)) in raw.iter().enumerate() {
        let num_algs = 2 + (alg_seed % 5) as usize;
        let cutoff = 1 + cut_seed % 1_000_000;
        cfg.set_selector(
            &format!("site{i}"),
            Selector::new(
                vec![cutoff],
                vec![(alg_seed % num_algs as u64) as usize, (cut_seed % num_algs as u64) as usize],
                num_algs,
            ),
        );
    }
    for (i, &(value, span)) in tunables.iter().enumerate() {
        let min = value.min(0);
        let max = value.max(0) + span.abs() % 1024 + 1;
        cfg.set_tunable(&format!("knob{i}"), Tunable::new(value, min, max));
    }
    cfg
}

/// Build a registry entry over hostile text fields and an arbitrary
/// time bit pattern (keep-best times travel by bits, NaNs included).
fn reg_entry(spec_seed: u64, size: u64, time_bits: u64, which: usize) -> RegEntry {
    let mut machine = petal_gpu::profile::MachineProfile::extended().remove(which);
    machine.codename = hostile_string(spec_seed.wrapping_add(2));
    RegEntry {
        machine: Box::new(machine),
        bench_spec: hostile_string(spec_seed),
        size,
        config: config_from(
            &[(size | 1, spec_seed)],
            &[((spec_seed % 1000) as i64 - 500, (size % 1024) as i64)],
        ),
        time_secs: f64::from_bits(time_bits),
        source: hostile_string(spec_seed.wrapping_add(1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip_over_hostile_fields(seeds in vec(any::<u64>(), 0..8)) {
        let record = Record::new("RESULT", seeds.iter().map(|&s| hostile_string(s)).collect());
        let line = record.encode();
        prop_assert!(!line.contains('\n'), "encoding must stay line-delimited");
        prop_assert!(!line.contains('\r'));
        prop_assert_eq!(Record::parse(&line).expect("round-trip parse"), record);
    }

    #[test]
    fn job_messages_round_trip(
        index in any::<u64>(),
        size in any::<u64>(),
        engine_seed in any::<u64>(),
        selectors in vec((1u64..u64::MAX, any::<u64>()), 0..4),
        tunables in vec((-1000i64..1000, any::<i64>()), 0..4),
    ) {
        let job = EvalJob { config: config_from(&selectors, &tunables), size, engine_seed };
        let msg = Message::Job { index, job };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn result_messages_round_trip_any_bit_pattern(
        index in any::<u64>(),
        ran in any::<bool>(),
        fitness_bits in any::<u64>(),
        has_fitness in any::<bool>(),
        makespan_bits in any::<u64>(),
        compiles in vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..6),
    ) {
        let outcome = JobOutcome {
            fitness: has_fitness.then(|| f64::from_bits(fitness_bits)),
            ran,
            makespan: f64::from_bits(makespan_bits),
            compiles: compiles
                .iter()
                .map(|&(h, f, j)| (h, f64::from_bits(f), f64::from_bits(j)))
                .collect(),
        };
        let msg = Message::Result { index, outcome };
        let decoded = Message::decode(&msg.encode()).expect("decodes");
        // Compare by bits, not by PartialEq: NaN payloads must survive too.
        let Message::Result { index: di, outcome: dout } = decoded else {
            panic!("wrong tag");
        };
        let Message::Result { index: ei, outcome: eout } = msg else { unreachable!() };
        prop_assert_eq!(di, ei);
        prop_assert_eq!(dout.ran, eout.ran);
        prop_assert_eq!(dout.fitness.map(f64::to_bits), eout.fitness.map(f64::to_bits));
        prop_assert_eq!(dout.makespan.to_bits(), eout.makespan.to_bits());
        prop_assert_eq!(dout.compiles.len(), eout.compiles.len());
        for (d, e) in dout.compiles.iter().zip(&eout.compiles) {
            prop_assert_eq!(d.0, e.0);
            prop_assert_eq!(d.1.to_bits(), e.1.to_bits());
            prop_assert_eq!(d.2.to_bits(), e.2.to_bits());
        }
    }

    #[test]
    fn init_messages_round_trip_mutated_machines(
        which in 0usize..5,
        cores in 1usize..256,
        flops_bits in any::<u64>(),
        spec_seed in any::<u64>(),
    ) {
        // Mutate a preset so the wire proves it carries *arbitrary*
        // profiles, not just the five built-ins a codename could name.
        let mut machine = petal_gpu::profile::MachineProfile::extended().remove(which);
        machine.cpu.cores = cores;
        machine.cpu.flops_per_core = f64::from_bits(flops_bits);
        machine.codename = hostile_string(spec_seed);
        let msg = Message::Init {
            version: WIRE_VERSION,
            bench_spec: hostile_string(spec_seed.wrapping_add(1)),
            machine: Box::new(machine.clone()),
        };
        let Message::Init { machine: decoded, bench_spec, .. } =
            Message::decode(&msg.encode()).expect("decodes")
        else {
            panic!("wrong tag");
        };
        prop_assert_eq!(bench_spec, hostile_string(spec_seed.wrapping_add(1)));
        prop_assert_eq!(decoded.codename, machine.codename);
        prop_assert_eq!(decoded.cpu.cores, machine.cpu.cores);
        prop_assert_eq!(
            decoded.cpu.flops_per_core.to_bits(),
            machine.cpu.flops_per_core.to_bits()
        );
        prop_assert_eq!(decoded.gpu.is_some(), machine.gpu.is_some());
    }

    // ---- the v2 farm-control messages (HELLO/REGISTER/HEARTBEAT/GOODBYE) ----

    #[test]
    fn hello_messages_round_trip_any_version_range(
        min_version in any::<u64>(),
        max_version in any::<u64>(),
    ) {
        let msg = Message::Hello { min_version, max_version };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn register_messages_round_trip_hostile_names(
        name_seed in any::<u64>(),
        slots in any::<u64>(),
        pid in any::<u64>(),
    ) {
        let msg = Message::Register { name: hostile_string(name_seed), slots, pid };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn heartbeat_messages_round_trip(seq in any::<u64>()) {
        let msg = Message::Heartbeat { seq };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn goodbye_messages_round_trip_hostile_reasons(reason_seed in any::<u64>()) {
        let msg = Message::Goodbye { reason: hostile_string(reason_seed) };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    // ---- the v3 registry records (REG_GET/REG_PUT/REG_HIT/REG_MISS) ----

    #[test]
    fn reg_get_messages_round_trip_hostile_ops(
        op_seed in any::<u64>(),
        spec_seed in any::<u64>(),
        size in any::<u64>(),
        which in 0usize..5,
        has_machine in any::<bool>(),
    ) {
        // The op and spec fields are free text on the wire — the server,
        // not the framing, decides what a legal op is.
        let msg = Message::RegGet {
            op: hostile_string(op_seed),
            bench_spec: hostile_string(spec_seed),
            size,
            machine: has_machine
                .then(|| Box::new(petal_gpu::profile::MachineProfile::extended().remove(which))),
        };
        let line = msg.encode();
        prop_assert!(!line.contains('\n'), "records must stay line-delimited");
        prop_assert_eq!(Message::decode(&line).expect("decodes"), msg);
    }

    #[test]
    fn reg_put_and_hit_messages_round_trip_any_bit_pattern(
        spec_seed in any::<u64>(),
        size in any::<u64>(),
        time_bits in any::<u64>(),
        distance_bits in any::<u64>(),
        scaled_size in any::<u64>(),
        has_scaled in any::<bool>(),
        force in any::<bool>(),
        verdict_seed in any::<u64>(),
        which in 0usize..5,
    ) {
        // Times and distances travel by bits, so NaN payloads defeat
        // PartialEq; the encoding is bit-canonical, so a lossless round
        // trip is exactly `encode ∘ decode = id` on the line.
        let entry = Box::new(reg_entry(spec_seed, size, time_bits, which));
        for msg in [
            Message::RegPut { force, entry: entry.clone() },
            Message::RegHit {
                verdict: hostile_string(verdict_seed),
                distance: f64::from_bits(distance_bits),
                scaled_from: has_scaled.then_some(scaled_size),
                entry,
            },
        ] {
            let line = msg.encode();
            prop_assert!(!line.contains('\n'), "records must stay line-delimited");
            let decoded = Message::decode(&line).expect("decodes");
            prop_assert_eq!(decoded.encode(), line, "re-encoding is lossless");
        }
    }

    #[test]
    fn reg_miss_messages_round_trip_hostile_reasons(reason_seed in any::<u64>()) {
        // Miss reasons are multi-line reports client-side; the embedded
        // newlines must survive the one-line framing.
        let msg = Message::RegMiss { reason: hostile_string(reason_seed) };
        prop_assert_eq!(Message::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn truncated_registry_lines_never_panic_the_decoder(
        spec_seed in any::<u64>(),
        time_bits in any::<u64>(),
        cut_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        // A hostile or half-written line must come back as Ok or Err,
        // never a panic — the dispatcher feeds these straight off sockets.
        let line = Message::RegPut {
            force: false,
            entry: Box::new(reg_entry(spec_seed, 4096, time_bits, 0)),
        }
        .encode();
        let boundaries: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
        let truncated = &line[..boundaries[(cut_seed % boundaries.len() as u64) as usize]];
        let _ = Message::decode(truncated);
        // And with one character replaced by a framing-hostile byte.
        let mut mutated: Vec<char> = line.chars().collect();
        let at = (flip_seed % mutated.len() as u64) as usize;
        mutated[at] = ':';
        let _ = Message::decode(&mutated.into_iter().collect::<String>());
    }

    // ---- negotiation properties ----

    #[test]
    fn negotiation_is_symmetric_and_lands_in_both_ranges(
        ours in (0u64..100, 0u64..100),
        theirs in (0u64..100, 0u64..100),
    ) {
        let ours = (ours.0.min(ours.1), ours.0.max(ours.1));
        let theirs = (theirs.0.min(theirs.1), theirs.0.max(theirs.1));
        let forward = negotiate(ours, theirs);
        let backward = negotiate(theirs, ours);
        // Both sides must independently pick the same version.
        prop_assert_eq!(forward.clone().ok(), backward.ok());
        match forward {
            Ok(v) => {
                prop_assert!((ours.0..=ours.1).contains(&v));
                prop_assert!((theirs.0..=theirs.1).contains(&v));
                // Highest common version: nothing above it is shared.
                prop_assert!(v == ours.1.min(theirs.1));
            }
            Err(e) => {
                // Disjoint ranges — and the diagnostic names both.
                prop_assert!(ours.1 < theirs.0 || theirs.1 < ours.0);
                let text = e.to_string();
                prop_assert!(text.contains("no common wire version"), "{}", text);
                prop_assert!(
                    text.contains(&format!("{}..={}", ours.0, ours.1)),
                    "{}", text
                );
                prop_assert!(
                    text.contains(&format!("{}..={}", theirs.0, theirs.1)),
                    "{}", text
                );
            }
        }
    }

    #[test]
    fn negotiating_with_this_build_agrees_iff_versions_are_supported(
        min in 0u64..10,
        span in 0u64..10,
    ) {
        let theirs = (min, min + span);
        let ours = (petal_farm::wire::MIN_WIRE_VERSION, WIRE_VERSION);
        let agreed = negotiate(ours, theirs);
        let overlap = (theirs.0..=theirs.1).any(version_supported);
        prop_assert_eq!(agreed.is_ok(), overlap);
        if let Ok(v) = agreed {
            prop_assert!(version_supported(v));
        }
    }

    // ---- session-resume records (wire v4) ----

    #[test]
    fn session_and_resume_records_round_trip(token in any::<u64>(), nonce in any::<u64>()) {
        for msg in [Message::Session { token, nonce }, Message::Resume { token, nonce }] {
            let line = msg.encode();
            prop_assert_eq!(Message::decode(&line).expect("decodes"), msg);
        }
    }

    // ---- endpoint grammar (fallback lists) ----

    #[test]
    fn endpoint_display_parse_is_the_identity_on_canonical_lists(
        kinds in vec((0u64..3, any::<u64>()), 1..5),
    ) {
        // Canonical spellings only: TCP displays bare (its historical
        // form), unix/dir keep their prefixes.
        let elements: Vec<String> = kinds
            .iter()
            .map(|&(kind, seed)| match kind {
                0 => format!("h{}:{}", seed % 100, seed % 65_536),
                1 => format!("unix:/tmp/s{}.sock", seed % 1_000),
                _ => format!("dir:/srv/r{}", seed % 1_000),
            })
            .collect();
        let text = elements.join(",");
        let parsed = Endpoint::parse(&text).expect("canonical list parses");
        prop_assert_eq!(parsed.to_string(), text);
        // And re-parsing the displayed form gives back the same value.
        prop_assert_eq!(Endpoint::parse(&parsed.to_string()), Ok(parsed));
    }

    #[test]
    fn endpoint_rejections_echo_the_input_and_the_grammar(
        kinds in vec((0u64..3, any::<u64>()), 0..4),
        bad_kind in 0u64..5,
        at_seed in any::<u64>(),
    ) {
        // Inject one malformed element into an otherwise valid list; the
        // diagnostic must echo the offender and teach the grammar.
        let bad = match bad_kind {
            0 => "tcp:portless",
            1 => "unix:",
            2 => "dir:",
            3 => "nocolon",
            _ => "none", // legal alone, illegal inside a list
        };
        let mut elements: Vec<String> = kinds
            .iter()
            .map(|&(kind, seed)| match kind {
                0 => format!("h{}:{}", seed % 100, seed % 65_536),
                1 => format!("unix:/tmp/s{}.sock", seed % 1_000),
                _ => format!("dir:/srv/r{}", seed % 1_000),
            })
            .collect();
        let at = (at_seed % (elements.len() as u64 + 1)) as usize;
        elements.insert(at, bad.to_owned());
        let text = elements.join(",");
        if elements.len() == 1 && bad == "none" {
            prop_assert_eq!(Endpoint::parse(&text), Ok(Endpoint::Disabled));
        } else {
            let e = Endpoint::parse(&text).expect_err("malformed element must be rejected");
            prop_assert!(e.contains(bad), "error must echo `{}`: {}", bad, e);
            prop_assert!(e.contains("tcp:host:port"), "error must teach the grammar: {}", e);
        }
    }
}

//! The dispatch seam between [`crate::EvalFarm`] and whatever actually
//! ships jobs out of the process.
//!
//! The farm's determinism contract lives entirely *above* this trait:
//! raw [`JobOutcome`]s come back keyed by submission index, and the
//! parent's submission-order merge (compile re-pricing included) turns
//! them into results — so any correct `Dispatch` implementation yields
//! bit-identical tuning runs. Two implementations exist today:
//! `ShardPool` (local `petal-shard` child processes over
//! pipes) and `RemotePool` (a `petal-farmd` dispatcher
//! over TCP or unix sockets, fanning out to an elastic worker fleet).

use crate::shard::ShardError;
use crate::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;

/// A job-dispatch backend: owns a pool of workers initialized for one
/// `(benchmark, machine)` session and evaluates batches against it.
pub trait Dispatch: std::fmt::Debug {
    /// Whether this pool was initialized for `(bench_spec, machine)`; a
    /// mismatch makes [`crate::EvalFarm`] tear the pool down and build a
    /// fresh one.
    fn matches(&self, bench_spec: &str, machine: &MachineProfile) -> bool;

    /// Evaluate a batch, returning raw outcomes in submission order
    /// (`result[i]` answers `jobs[i]`). `effective` is the worker count
    /// the round-robin accounting above assumes; backends with their own
    /// scheduling (farmd) may ignore it.
    ///
    /// Implementations recover from individual worker loss themselves
    /// when survivors remain (jobs are pure, so re-running one anywhere
    /// is sound).
    ///
    /// # Errors
    /// Only when the batch cannot be completed at all — every worker is
    /// gone or the transport died. The error names the last failed
    /// worker and the jobs still outstanding so the caller can respawn
    /// and retry.
    fn evaluate(
        &mut self,
        jobs: &[EvalJob],
        effective: usize,
    ) -> Result<Vec<JobOutcome>, ShardError>;
}

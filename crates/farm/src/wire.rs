//! The shard wire format: line-delimited records with length-prefixed
//! fields.
//!
//! This is the contract between the farm's shard dispatcher (parent side)
//! and a `petal-shard` worker process — and the contract any future
//! cross-machine transport (sockets, a work queue) must implement. The
//! workspace is offline and carries no serde, so the format is hand-rolled
//! and deliberately tiny:
//!
//! * **One record per line.** A record is a `TAG` followed by zero or more
//!   fields, terminated by `\n`. Tags are upper-case ASCII plus `_`
//!   (`INIT`, `READY`, `JOB`, `RESULT`, `DONE`; since wire version 2,
//!   for the socket-served farm, `HELLO`, `REGISTER`, `HEARTBEAT`,
//!   `GOODBYE`; since version 3, for the served config registry,
//!   `REG_GET`, `REG_PUT`, `REG_HIT`, `REG_MISS`; since version 4, for
//!   crash-safe client sessions, `SESSION` and `RESUME`).
//! * **Length-prefixed fields.** Each field is ` <len>:<bytes>` where
//!   `len` is the decimal byte length of `<bytes>` *after* escaping. The
//!   prefix makes spaces inside fields unambiguous without quoting.
//! * **Escaping keeps records line-delimited.** Field bytes escape `\`,
//!   `\n` and `\r` as `\\`, `\n`, `\r` (two characters each), so a record
//!   never contains a literal newline and a transport can frame on lines.
//! * **Exact floats.** `f64` values travel as exact IEEE-754 bit
//!   patterns (`0x` + 16 hex digits, the shared
//!   [`petal_apps::spec_f64`] codec) — determinism across the process
//!   boundary is the whole point, so decimal round-trips are not
//!   trusted.
//! * **Versioned handshake.** `INIT` and `READY` carry a wire version;
//!   a worker refuses a version it does not speak and the parent refuses
//!   a worker that answers with a different one. Over sockets, `HELLO`
//!   goes first and carries the sender's *supported range*
//!   ([`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]); both sides settle on
//!   the highest version both speak ([`negotiate`]) or reject the peer
//!   with a clean diagnostic — never a parse error, because a `HELLO`'s
//!   first two fields are frozen across all future versions and any
//!   trailing fields are ignored.
//!
//! Pipe message flow (versions 1+): parent sends `INIT` (version,
//! benchmark spec, machine profile), worker answers `READY` (version).
//! Then any number of `JOB` records (index, size, engine seed, config
//! text), each answered by one `RESULT` (index, raw outcome incl. the
//! trial's compile events — pricing happens in the parent's
//! submission-order merge, never in a worker). `DONE` (or EOF) ends the
//! session.
//!
//! Socket message flow (version 2, see `docs/farmd.md`): every
//! connection opens with a `HELLO` exchange. A **worker** then sends
//! `REGISTER` (name, slots, pid) and `HEARTBEAT`s on a period, and
//! serves interleaved `INIT`/`JOB` records from the dispatcher;
//! `GOODBYE` (either direction) ends the connection gracefully. A
//! **client** (the tuner) follows its `HELLO` with the same
//! `INIT`/`JOB`/`RESULT`/`DONE` flow as a pipe session, except `RESULT`s
//! may arrive in any order (the dispatcher merges many workers).
//!
//! Registry message flow (version 3, see `docs/registry.md`): after the
//! `HELLO` exchange a **registry client** sends `REG_GET` (a lookup,
//! listing or gc query) or `REG_PUT` (publish one tuned entry) records;
//! the dispatcher answers each `REG_GET` with one `REG_HIT` (or a
//! `REG_HIT` stream for listings) terminated/answered by `REG_MISS`, and
//! each `REG_PUT` with a `REG_HIT` carrying the entry that now wins the
//! key — so a publisher that lost a keep-best race receives the better
//! config in the acknowledgement. `DONE` (or EOF) ends the session.
//! Keep-best merge and persistence happen dispatcher-side, so
//! concurrent `REG_PUT`s from many clients are serialized and
//! deterministic.
//!
//! Session resume flow (version 4, see `docs/farmd.md`): when a v4
//! client's `INIT` is accepted the dispatcher follows its `READY` with
//! one `SESSION` record carrying a (token, nonce) pair. If the
//! connection later breaks — including across a dispatcher restart that
//! recovered its state from a `--journal` — the client reconnects,
//! exchanges `HELLO`s, and sends `RESUME` (token, nonce) instead of
//! `INIT`; the dispatcher re-attaches the session (answering `READY`
//! then `SESSION` again) or refuses with a `GOODBYE` naming the unknown
//! token. After a resume the client re-submits exactly its unanswered
//! `JOB` indices; the dispatcher deduplicates queued/in-flight indices
//! and re-serves already-completed ones from its result log, so replays
//! are idempotent and the merged trajectory is bit-identical.

use crate::{EvalJob, JobOutcome};
use petal_core::Config;
use petal_gpu::profile::{CpuProfile, GpuProfile, MachineProfile};
use std::fmt;

/// Protocol version spoken by this build (bumped on any wire change).
/// Version 2 added the socket-served farm records (`HELLO`, `REGISTER`,
/// `HEARTBEAT`, `GOODBYE`) and out-of-order `RESULT` delivery to
/// clients. Version 3 added the served-registry records (`REG_GET`,
/// `REG_PUT`, `REG_HIT`, `REG_MISS`). Version 4 added the crash-safe
/// session records (`SESSION`, `RESUME`).
pub const WIRE_VERSION: u64 = 4;

/// Oldest protocol version this build still speaks. Each version is a
/// pure superset of the one before (older records are unchanged), so a
/// v4 worker serves a v1 parent and a v4 dispatcher serves v2 peers —
/// they simply never see a registry or session record.
pub const MIN_WIRE_VERSION: u64 = 1;

/// First wire version with the crash-safe session records (`SESSION`,
/// `RESUME`). Both sides key resume behavior off the *negotiated*
/// version reaching this, so a v≤3 peer sees exactly the old protocol.
pub const RESUME_WIRE_VERSION: u64 = 4;

/// Settle a common wire version from two advertised `min..=max` ranges:
/// the highest version both sides speak.
///
/// # Errors
/// A diagnostic naming both ranges when they do not overlap — the one
/// place version skew is allowed to surface, so it must never look like
/// a parse error.
pub fn negotiate(ours: (u64, u64), theirs: (u64, u64)) -> Result<u64, WireError> {
    let agreed = ours.1.min(theirs.1);
    if agreed >= ours.0.max(theirs.0) {
        Ok(agreed)
    } else {
        Err(WireError::new(format!(
            "no common wire version: peer speaks {}..={}, this build speaks {}..={}",
            theirs.0, theirs.1, ours.0, ours.1
        )))
    }
}

/// Whether `version` is one this build speaks (for single-version
/// handshakes like `INIT`).
#[must_use]
pub fn version_supported(version: u64) -> bool {
    (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version)
}

/// A wire-format violation (framing, field count/type, version skew).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed, for the operator.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError { message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire protocol error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Byte length of `s` after escaping (each of `\`, `\n`, `\r` becomes two
/// bytes). Lets the length prefix be written *before* the payload without
/// staging the escaped bytes anywhere.
fn escaped_len(s: &str) -> usize {
    s.bytes().map(|b| if matches!(b, b'\\' | b'\n' | b'\r') { 2 } else { 1 }).sum()
}

/// Append the escaped form of `s` to `out` so the record stays on one
/// line (inverse of [`unescape`]).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

/// Append one ` <len>:<escaped bytes>` field to `out`.
fn push_field_raw(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push(' ');
    let _ = write!(out, "{}", escaped_len(s));
    out.push(':');
    escape_into(s, out);
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(WireError::new(format!("bad escape `\\{other:?}`"))),
        }
    }
    Ok(out)
}

/// One parsed line: a tag plus decoded field payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record kind (`INIT`, `READY`, `JOB`, `RESULT`, `DONE`).
    pub tag: String,
    /// Decoded (unescaped) field payloads, in order.
    pub fields: Vec<String>,
}

impl Record {
    /// New record from a tag and decoded fields.
    #[must_use]
    pub fn new(tag: &str, fields: Vec<String>) -> Self {
        Record { tag: tag.to_owned(), fields }
    }

    /// Encode as one line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = self.tag.clone();
        for f in &self.fields {
            push_field_raw(&mut out, f);
        }
        out
    }

    /// Parse one line (without its newline) back into a record.
    ///
    /// # Errors
    /// Any framing violation: empty line, malformed length prefix, short
    /// field, missing separator, or a bad escape sequence.
    pub fn parse(line: &str) -> Result<Record, WireError> {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.is_empty() {
            return Err(WireError::new("empty record"));
        }
        let (tag, mut rest) = match line.split_once(' ') {
            Some((t, r)) => (t, r),
            None => (line, ""),
        };
        if tag.is_empty() || !tag.bytes().all(|b| b.is_ascii_uppercase() || b == b'_') {
            return Err(WireError::new(format!("bad tag `{tag}`")));
        }
        let mut fields = Vec::new();
        while !rest.is_empty() {
            let (len_str, tail) = rest
                .split_once(':')
                .ok_or_else(|| WireError::new("field without `len:` prefix"))?;
            let len: usize = len_str
                .parse()
                .map_err(|_| WireError::new(format!("bad field length `{len_str}`")))?;
            if tail.len() < len {
                return Err(WireError::new("truncated field"));
            }
            if !tail.is_char_boundary(len) {
                return Err(WireError::new("field length splits a UTF-8 character"));
            }
            fields.push(unescape(&tail[..len])?);
            rest = match tail[len..].strip_prefix(' ') {
                Some(r) => r,
                None if tail.len() == len => "",
                None => return Err(WireError::new("missing field separator")),
            };
        }
        Ok(Record { tag: tag.to_owned(), fields })
    }
}

/// Typed cursor over a record's fields.
struct FieldReader<'a> {
    record: &'a Record,
    next: usize,
}

impl<'a> FieldReader<'a> {
    fn new(record: &'a Record) -> Self {
        FieldReader { record, next: 0 }
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let f = self
            .record
            .fields
            .get(self.next)
            .ok_or_else(|| WireError::new(format!("{} record too short", self.record.tag)))?;
        self.next += 1;
        Ok(f)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.str()?;
        s.parse().map_err(|_| WireError::new(format!("bad integer `{s}`")))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let s = self.str()?;
        s.parse().map_err(|_| WireError::new(format!("bad integer `{s}`")))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.str()? {
            "0" => Ok(false),
            "1" => Ok(true),
            s => Err(WireError::new(format!("bad bool `{s}`"))),
        }
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let s = self.str()?;
        petal_apps::spec_f64_parse(s).map_err(|e| WireError::new(format!("bad f64 field: {e}")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.next == self.record.fields.len() {
            Ok(())
        } else {
            Err(WireError::new(format!("{} record has trailing fields", self.record.tag)))
        }
    }
}

/// Reusable [`Message`] line encoder.
///
/// The shard dispatcher encodes one `JOB` per trial and a worker encodes
/// one `RESULT` per trial; with a `WireEncoder` (plus a caller-held output
/// line) both run allocation-free in steady state — every buffer keeps its
/// capacity across messages. This is the only encoding implementation:
/// [`Message::encode`] is a convenience wrapper around it.
#[derive(Debug, Default)]
pub struct WireEncoder {
    /// Scratch for numeric/float field text (fields are length-prefixed,
    /// so a value must be rendered before its prefix can be written).
    scratch: String,
}

impl WireEncoder {
    /// Encode `msg` as one line (no trailing newline) into `out`, clearing
    /// `out` first and reusing its capacity.
    pub fn encode_into(&mut self, msg: &Message, out: &mut String) {
        out.clear();
        match msg {
            Message::Init { version, bench_spec, machine } => {
                out.push_str("INIT");
                self.field_display(out, version);
                push_field_raw(out, bench_spec);
                self.encode_machine_into(machine, out);
            }
            Message::Ready { version } => {
                out.push_str("READY");
                self.field_display(out, version);
            }
            Message::Job { index, job } => {
                out.push_str("JOB");
                self.field_display(out, index);
                self.field_display(out, job.size);
                self.field_display(out, job.engine_seed);
                self.field_display(out, &job.config);
            }
            Message::Result { index, outcome } => {
                out.push_str("RESULT");
                self.field_display(out, index);
                self.field_display(out, u64::from(outcome.ran));
                self.field_display(out, u64::from(outcome.fitness.is_some()));
                self.field_f64(out, outcome.fitness.unwrap_or(0.0));
                self.field_f64(out, outcome.makespan);
                self.field_display(out, outcome.compiles.len());
                for &(hash, frontend, jit) in &outcome.compiles {
                    self.field_display(out, hash);
                    self.field_f64(out, frontend);
                    self.field_f64(out, jit);
                }
            }
            Message::Done => out.push_str("DONE"),
            Message::Hello { min_version, max_version } => {
                out.push_str("HELLO");
                self.field_display(out, min_version);
                self.field_display(out, max_version);
            }
            Message::Register { name, slots, pid } => {
                out.push_str("REGISTER");
                push_field_raw(out, name);
                self.field_display(out, slots);
                self.field_display(out, pid);
            }
            Message::Heartbeat { seq } => {
                out.push_str("HEARTBEAT");
                self.field_display(out, seq);
            }
            Message::Goodbye { reason } => {
                out.push_str("GOODBYE");
                push_field_raw(out, reason);
            }
            Message::RegGet { op, bench_spec, size, machine } => {
                out.push_str("REG_GET");
                push_field_raw(out, op);
                push_field_raw(out, bench_spec);
                self.field_display(out, size);
                match machine {
                    None => push_field_raw(out, "0"),
                    Some(m) => {
                        push_field_raw(out, "1");
                        self.encode_machine_into(m, out);
                    }
                }
            }
            Message::RegPut { force, entry } => {
                out.push_str("REG_PUT");
                self.field_display(out, u64::from(*force));
                self.encode_reg_entry_into(entry, out);
            }
            Message::RegHit { verdict, distance, scaled_from, entry } => {
                out.push_str("REG_HIT");
                push_field_raw(out, verdict);
                self.field_f64(out, *distance);
                match scaled_from {
                    None => push_field_raw(out, "0"),
                    Some(size) => {
                        push_field_raw(out, "1");
                        self.field_display(out, size);
                    }
                }
                self.encode_reg_entry_into(entry, out);
            }
            Message::RegMiss { reason } => {
                out.push_str("REG_MISS");
                push_field_raw(out, reason);
            }
            Message::Session { token, nonce } => {
                out.push_str("SESSION");
                self.field_display(out, token);
                self.field_display(out, nonce);
            }
            Message::Resume { token, nonce } => {
                out.push_str("RESUME");
                self.field_display(out, token);
                self.field_display(out, nonce);
            }
        }
    }

    fn field_display(&mut self, out: &mut String, v: impl fmt::Display) {
        use fmt::Write as _;
        self.scratch.clear();
        let _ = write!(self.scratch, "{v}");
        push_field_raw(out, &self.scratch);
    }

    /// Exact-bit f64 text, shared with the benchmark-spec format so the
    /// two "exact float" encodings stay one codec
    /// ([`petal_apps::spec_f64_into`]).
    fn field_f64(&mut self, out: &mut String, v: f64) {
        self.scratch.clear();
        petal_apps::spec_f64_into(v, &mut self.scratch);
        push_field_raw(out, &self.scratch);
    }

    /// Flatten a registry entry into wire fields (fixed order, the exact
    /// inverse of `decode_reg_entry`). The config travels as one text
    /// field in its canonical format, like a `JOB`'s; the machine is
    /// flattened like an `INIT`'s.
    fn encode_reg_entry_into(&mut self, e: &RegEntry, out: &mut String) {
        push_field_raw(out, &e.bench_spec);
        self.field_display(out, e.size);
        self.field_f64(out, e.time_secs);
        push_field_raw(out, &e.source);
        self.field_display(out, &e.config);
        self.encode_machine_into(&e.machine, out);
    }

    /// Flatten a machine profile into wire fields (fixed order, the exact
    /// inverse of [`decode_machine`]; see the module docs for why the full
    /// profile travels instead of a codename).
    fn encode_machine_into(&mut self, m: &MachineProfile, out: &mut String) {
        push_field_raw(out, &m.codename);
        push_field_raw(out, &m.os);
        push_field_raw(out, &m.opencl_runtime);
        push_field_raw(out, &m.cpu.name);
        self.field_display(out, m.cpu.cores);
        self.field_f64(out, m.cpu.flops_per_core);
        self.field_f64(out, m.cpu.mem_bw);
        self.field_f64(out, m.cpu.task_overhead);
        self.field_f64(out, m.cpu.steal_latency);
        match &m.gpu {
            None => push_field_raw(out, "0"),
            Some(g) => {
                push_field_raw(out, "1");
                push_field_raw(out, &g.name);
                self.field_f64(out, g.flops);
                self.field_f64(out, g.global_bw);
                self.field_f64(out, g.local_bw);
                self.field_f64(out, g.pcie_bw);
                self.field_f64(out, g.launch_overhead);
                self.field_f64(out, g.transfer_overhead);
                self.field_f64(out, g.alloc_overhead);
                self.field_f64(out, g.alloc_bytes_factor);
                self.field_f64(out, g.read_cache_factor);
                self.field_f64(out, g.group_overhead);
                self.field_f64(out, g.barrier_overhead);
                self.field_f64(out, g.compile_frontend);
                self.field_f64(out, g.compile_jit);
                self.field_display(out, g.max_work_group);
                self.field_display(out, g.warp);
                self.field_display(out, u64::from(g.cpu_backed));
            }
        }
    }
}

/// Everything that travels over a shard pipe.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Parent → worker: handshake carrying the session's benchmark and
    /// machine. Sent exactly once, before any job.
    Init {
        /// Sender's [`WIRE_VERSION`].
        version: u64,
        /// [`petal_apps::Benchmark::spec`] line identifying the benchmark.
        bench_spec: String,
        /// The complete machine profile to evaluate on (full profile, not
        /// a codename: custom-calibrated machines must shard too). Boxed
        /// because it dwarfs every other message variant.
        machine: Box<MachineProfile>,
    },
    /// Worker → parent: handshake acknowledgement.
    Ready {
        /// Responder's [`WIRE_VERSION`].
        version: u64,
    },
    /// Parent → worker: evaluate one candidate.
    Job {
        /// Submission index; echoed back in the matching [`Message::Result`].
        index: u64,
        /// The evaluation request.
        job: EvalJob,
    },
    /// Worker → parent: the raw outcome of one job (un-priced compile
    /// events included — the parent's submission-order merge prices them).
    Result {
        /// The `index` of the [`Message::Job`] this answers.
        index: u64,
        /// Raw trial outcome.
        outcome: JobOutcome,
    },
    /// Parent → worker: end of session; the worker exits cleanly.
    Done,
    /// Either direction, first record on a socket connection: version
    /// negotiation. Fields 0 and 1 (min and max supported version) are
    /// frozen across all future wire versions, and decoding ignores any
    /// trailing fields, so skew is always reported as skew.
    Hello {
        /// Oldest wire version the sender speaks.
        min_version: u64,
        /// Newest wire version the sender speaks.
        max_version: u64,
    },
    /// Worker → dispatcher, after `HELLO`: join the worker pool.
    Register {
        /// Operator-facing worker name (shows up in dispatcher logs and
        /// error messages).
        name: String,
        /// Jobs the dispatcher may keep in flight at this worker — the
        /// pipelining depth, not a parallelism claim (workers evaluate
        /// serially).
        slots: u64,
        /// Worker process id, for operator diagnostics.
        pid: u64,
    },
    /// Worker → dispatcher: liveness proof, sent on a period even while
    /// a long trial is evaluating. Any traffic counts as liveness; the
    /// heartbeat exists for workers that are busy or idle.
    Heartbeat {
        /// Monotonic per-connection sequence number.
        seq: u64,
    },
    /// Either direction: graceful leave (worker draining, dispatcher
    /// rejecting or shutting down). Carries the reason so version skew
    /// and policy rejections surface as diagnostics, not EOFs.
    Goodbye {
        /// Human-readable reason for the disconnect.
        reason: String,
    },
    /// Registry client → dispatcher (v3): one registry query. `get` and
    /// `exact` queries carry the spec/size/machine key; `ls` and `gc`
    /// ignore those fields (send empty/zero/absent).
    RegGet {
        /// Query kind: `get` (nearest-key lookup), `exact` (exact
        /// fingerprint only), `ls` (stream every entry), `gc` (sweep
        /// unusable files).
        op: String,
        /// [`petal_apps::Benchmark::spec`] line being looked up.
        bench_spec: String,
        /// Input size being looked up.
        size: u64,
        /// The querying machine (presence-flagged; absent for `ls`/`gc`).
        machine: Option<Box<MachineProfile>>,
    },
    /// Registry client → dispatcher (v3): publish one tuned entry. The
    /// dispatcher merges keep-best under its own lock and answers with a
    /// [`Message::RegHit`] carrying whichever entry now wins the key.
    RegPut {
        /// Overwrite even a better stored time (the CLI's `put --force`).
        force: bool,
        /// The entry being published.
        entry: Box<RegEntry>,
    },
    /// Dispatcher → registry client (v3): one stored entry. Answers a
    /// `get`/`exact` query (verdict = match tier), acknowledges a
    /// `REG_PUT` (verdict = keep-best outcome), and streams `ls` rows
    /// (verdict = `ls`).
    RegHit {
        /// `exact`/`family`/`fallback` for lookups,
        /// `inserted`/`replaced`/`kept-existing` for put acks, `ls` for
        /// listing rows.
        verdict: String,
        /// Machine distance of the match (0 for exact hits, put acks and
        /// listings).
        distance: f64,
        /// When the donor was rescaled from another input size, the size
        /// it was stored under (presence-flagged).
        scaled_from: Option<u64>,
        /// The entry itself.
        entry: Box<RegEntry>,
    },
    /// Dispatcher → registry client (v3): no entry. Answers a missed
    /// `get`/`exact`, terminates an `ls` stream, reports a `gc` sweep,
    /// and carries per-query failures. The first line of `reason` is the
    /// headline; any further lines are per-item diagnostics (`ls`
    /// issues, `gc` removals). A reason starting with `error:` is a
    /// store failure, not a miss.
    RegMiss {
        /// Human-readable outcome, newline-separated as described above.
        reason: String,
    },
    /// Dispatcher → client (v4): the session's resume credentials, sent
    /// immediately after the `READY` that accepted an `INIT` (and again
    /// after each successful `RESUME`). A client that never resumes can
    /// ignore it.
    Session {
        /// The dispatcher-assigned session id.
        token: u64,
        /// Dispatcher-chosen secret the client must echo on resume, so a
        /// stale or guessed token cannot capture another client's
        /// session.
        nonce: u64,
    },
    /// Client → dispatcher (v4), instead of `INIT` after `HELLO`:
    /// re-attach a live or journal-recovered session. Answered with
    /// `READY` + `SESSION` on success, `GOODBYE` on an unknown or
    /// mismatched (token, nonce).
    Resume {
        /// The token from the session's [`Message::Session`] record.
        token: u64,
        /// The nonce from the same record.
        nonce: u64,
    },
}

/// A tuned-config registry entry as it travels in [`Message::RegPut`]
/// and [`Message::RegHit`] — the wire-level mirror of the registry's
/// stored entry, here so the transport does not depend on the store.
#[derive(Debug, Clone, PartialEq)]
pub struct RegEntry {
    /// The machine the config was tuned on (full profile; its
    /// fingerprint is the store key's machine component).
    pub machine: Box<MachineProfile>,
    /// [`petal_apps::Benchmark::spec`] line the config was tuned for.
    pub bench_spec: String,
    /// Input size the config was tuned at.
    pub size: u64,
    /// The tuned configuration.
    pub config: Config,
    /// Best virtual time the config achieved when stored (keep-best
    /// compares these).
    pub time_secs: f64,
    /// Provenance note (who tuned it, from what donor).
    pub source: String,
}

impl Message {
    /// Encode as one line (no trailing newline). One-shot convenience
    /// around [`WireEncoder::encode_into`]; per-job senders should hold a
    /// `WireEncoder` and an output line instead.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        WireEncoder::default().encode_into(self, &mut out);
        out
    }

    /// Parse one line back into a message.
    ///
    /// # Errors
    /// Framing errors from [`Record::parse`], unknown tags, wrong field
    /// counts or types, and config texts that do not parse.
    pub fn decode(line: &str) -> Result<Message, WireError> {
        let record = Record::parse(line)?;
        let mut r = FieldReader::new(&record);
        let msg = match record.tag.as_str() {
            "INIT" => {
                let version = r.u64()?;
                let bench_spec = r.str()?.to_owned();
                let machine = Box::new(decode_machine(&mut r)?);
                Message::Init { version, bench_spec, machine }
            }
            "READY" => Message::Ready { version: r.u64()? },
            "JOB" => {
                let index = r.u64()?;
                let size = r.u64()?;
                let engine_seed = r.u64()?;
                let config: Config = r
                    .str()?
                    .parse()
                    .map_err(|e| WireError::new(format!("bad config in JOB: {e}")))?;
                Message::Job { index, job: EvalJob { config, size, engine_seed } }
            }
            "RESULT" => {
                let index = r.u64()?;
                let ran = r.bool()?;
                let has_fitness = r.bool()?;
                let fitness_bits = r.f64()?;
                let makespan = r.f64()?;
                let n = r.usize()?;
                let mut compiles = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    compiles.push((r.u64()?, r.f64()?, r.f64()?));
                }
                Message::Result {
                    index,
                    outcome: JobOutcome {
                        fitness: has_fitness.then_some(fitness_bits),
                        ran,
                        makespan,
                        compiles,
                    },
                }
            }
            "DONE" => Message::Done,
            "HELLO" => {
                // Forward compatibility: a future version may append
                // capability fields, so a HELLO never rejects trailing
                // fields — version skew must surface through
                // `negotiate`, not as a parse error.
                return Ok(Message::Hello { min_version: r.u64()?, max_version: r.u64()? });
            }
            "REGISTER" => {
                Message::Register { name: r.str()?.to_owned(), slots: r.u64()?, pid: r.u64()? }
            }
            "HEARTBEAT" => Message::Heartbeat { seq: r.u64()? },
            "GOODBYE" => Message::Goodbye { reason: r.str()?.to_owned() },
            "REG_GET" => {
                let op = r.str()?.to_owned();
                let bench_spec = r.str()?.to_owned();
                let size = r.u64()?;
                let machine =
                    if r.bool()? { Some(Box::new(decode_machine(&mut r)?)) } else { None };
                Message::RegGet { op, bench_spec, size, machine }
            }
            "REG_PUT" => {
                let force = r.bool()?;
                let entry = Box::new(decode_reg_entry(&mut r)?);
                Message::RegPut { force, entry }
            }
            "REG_HIT" => {
                let verdict = r.str()?.to_owned();
                let distance = r.f64()?;
                let scaled_from = if r.bool()? { Some(r.u64()?) } else { None };
                let entry = Box::new(decode_reg_entry(&mut r)?);
                Message::RegHit { verdict, distance, scaled_from, entry }
            }
            "REG_MISS" => Message::RegMiss { reason: r.str()?.to_owned() },
            "SESSION" => Message::Session { token: r.u64()?, nonce: r.u64()? },
            "RESUME" => Message::Resume { token: r.u64()?, nonce: r.u64()? },
            tag => return Err(WireError::new(format!("unknown tag `{tag}`"))),
        };
        r.finish()?;
        Ok(msg)
    }

    /// The `HELLO` this build opens socket connections with.
    #[must_use]
    pub fn hello() -> Message {
        Message::Hello { min_version: MIN_WIRE_VERSION, max_version: WIRE_VERSION }
    }
}

fn decode_reg_entry(r: &mut FieldReader<'_>) -> Result<RegEntry, WireError> {
    let bench_spec = r.str()?.to_owned();
    let size = r.u64()?;
    let time_secs = r.f64()?;
    let source = r.str()?.to_owned();
    let config: Config =
        r.str()?.parse().map_err(|e| WireError::new(format!("bad config in entry: {e}")))?;
    let machine = Box::new(decode_machine(r)?);
    Ok(RegEntry { machine, bench_spec, size, config, time_secs, source })
}

fn decode_machine(r: &mut FieldReader<'_>) -> Result<MachineProfile, WireError> {
    let codename = r.str()?.to_owned();
    let os = r.str()?.to_owned();
    let opencl_runtime = r.str()?.to_owned();
    let cpu = CpuProfile {
        name: r.str()?.to_owned(),
        cores: r.usize()?,
        flops_per_core: r.f64()?,
        mem_bw: r.f64()?,
        task_overhead: r.f64()?,
        steal_latency: r.f64()?,
    };
    let gpu = if r.bool()? {
        Some(GpuProfile {
            name: r.str()?.to_owned(),
            flops: r.f64()?,
            global_bw: r.f64()?,
            local_bw: r.f64()?,
            pcie_bw: r.f64()?,
            launch_overhead: r.f64()?,
            transfer_overhead: r.f64()?,
            alloc_overhead: r.f64()?,
            alloc_bytes_factor: r.f64()?,
            read_cache_factor: r.f64()?,
            group_overhead: r.f64()?,
            barrier_overhead: r.f64()?,
            compile_frontend: r.f64()?,
            compile_jit: r.f64()?,
            max_work_group: r.usize()?,
            warp: r.usize()?,
            cpu_backed: r.bool()?,
        })
    } else {
        None
    };
    Ok(MachineProfile { codename, os, opencl_runtime, cpu, gpu })
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_core::config::{Selector, Tunable};

    #[test]
    fn records_with_hostile_payloads_round_trip() {
        let r = Record::new(
            "INIT",
            vec![
                String::new(),
                "plain".to_owned(),
                "spaces and 7:colons".to_owned(),
                "line\nbreaks\r\nand \\backslashes\\".to_owned(),
                "unicode: héllo ∞".to_owned(),
            ],
        );
        let line = r.encode();
        assert!(!line.contains('\n'), "records must stay line-delimited");
        assert_eq!(Record::parse(&line).expect("parses"), r);
    }

    #[test]
    fn framing_violations_are_rejected() {
        for bad in [
            "",
            "lower 1:x",
            "INIT 5:abc",
            "INIT x:abc",
            "INIT 3:abcd",
            "INIT 3:abc4:defg extra",
            "INIT 2:a\\q",
        ] {
            assert!(Record::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn every_message_kind_round_trips() {
        let mut config = Config::new();
        config.set_selector("sort", Selector::new(vec![64, 4096], vec![2, 0, 1], 3));
        config.set_tunable("sort.gpu_ratio", Tunable::new(3, 0, 8));
        let outcome = JobOutcome {
            fitness: Some(1.5e-4),
            ran: true,
            makespan: 1.25e-4,
            compiles: vec![(42, 1.2, 0.8), (7, 0.9, 0.5)],
        };
        let messages = vec![
            Message::Init {
                version: WIRE_VERSION,
                bench_spec: "sort n=4096".to_owned(),
                machine: Box::new(MachineProfile::desktop()),
            },
            Message::Init {
                version: WIRE_VERSION,
                bench_spec: "sort n=4096".to_owned(),
                machine: Box::new(MachineProfile::manycore()), // gpu: None path
            },
            Message::Ready { version: WIRE_VERSION },
            Message::Job { index: 9, job: EvalJob { config, size: 4096, engine_seed: 0xfeed } },
            Message::Result { index: 9, outcome },
            Message::Result {
                index: 10,
                outcome: JobOutcome {
                    fitness: None,
                    ran: false,
                    makespan: 0.0,
                    compiles: Vec::new(),
                },
            },
            Message::Done,
            Message::hello(),
            Message::Register { name: "rack7/worker-3".to_owned(), slots: 2, pid: 4242 },
            Message::Heartbeat { seq: u64::MAX },
            Message::Goodbye { reason: "drained: operator shutdown".to_owned() },
            Message::Session { token: 7, nonce: u64::MAX },
            Message::Resume { token: u64::MAX, nonce: 0 },
        ];
        for msg in messages {
            let line = msg.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Message::decode(&line).expect("decodes"), msg);
        }
    }

    #[test]
    fn registry_records_round_trip() {
        let mut config = Config::new();
        config.set_selector("sort", Selector::new(vec![64, 4096], vec![2, 0, 1], 3));
        config.set_tunable("merge_parallel_cutoff", Tunable::new(512, 1, 1 << 20));
        let entry = RegEntry {
            machine: Box::new(MachineProfile::laptop()),
            bench_spec: "sort n=4096".to_owned(),
            size: 4096,
            config,
            time_secs: 2.5e-3,
            source: "tuned:Laptop\nwith a hostile\\source".to_owned(),
        };
        let messages = vec![
            Message::RegGet {
                op: "get".to_owned(),
                bench_spec: "sort n=4096".to_owned(),
                size: 4096,
                machine: Some(Box::new(MachineProfile::desktop())),
            },
            Message::RegGet {
                op: "ls".to_owned(),
                bench_spec: String::new(),
                size: 0,
                machine: None,
            },
            Message::RegPut { force: false, entry: Box::new(entry.clone()) },
            Message::RegHit {
                verdict: "family".to_owned(),
                distance: 3.75,
                scaled_from: Some(1024),
                entry: Box::new(entry.clone()),
            },
            Message::RegHit {
                verdict: "inserted".to_owned(),
                distance: 0.0,
                scaled_from: None,
                entry: Box::new(entry),
            },
            Message::RegMiss { reason: "no entry for `sort n=8192`\nsecond line".to_owned() },
        ];
        for msg in messages {
            let line = msg.encode();
            assert!(!line.contains('\n'), "records must stay line-delimited");
            assert_eq!(Message::decode(&line).expect("decodes"), msg);
        }
    }

    #[test]
    fn underscored_tags_frame_but_arbitrary_punctuation_does_not() {
        // v3 introduced `_` into the tag alphabet; the framing layer must
        // accept it (REG_GET and friends) while still rejecting anything
        // else outside upper-case ASCII.
        let r = Record::new("REG_MISS", vec!["why".to_owned()]);
        assert_eq!(Record::parse(&r.encode()).expect("parses"), r);
        for bad in ["reg_get 1:x", "REG-GET 1:x", "REG GET 1:x", "_ 1:x 1:y", "R3G 1:x"] {
            // `_` alone is a legal tag char, so `_ 1:x 1:y` frames; it
            // must then die as an unknown tag, not a panic.
            if let Ok(rec) = Record::parse(bad) {
                assert!(Message::decode(&rec.encode()).is_err(), "`{bad}`");
            }
        }
        assert!(Record::parse("REG-GET 1:x").is_err());
        assert!(Record::parse("reg_get 1:x").is_err());
    }

    #[test]
    fn reused_encoder_matches_one_shot_encode() {
        let mut config = Config::new();
        config.set_selector("sort", Selector::new(vec![64, 4096], vec![2, 0, 1], 3));
        let messages = vec![
            Message::Init {
                version: WIRE_VERSION,
                bench_spec: "sort n=4096".to_owned(),
                machine: Box::new(MachineProfile::desktop()),
            },
            Message::Ready { version: WIRE_VERSION },
            Message::Job { index: 3, job: EvalJob { config, size: 64, engine_seed: 9 } },
            Message::Result {
                index: 3,
                outcome: JobOutcome {
                    fitness: Some(2.5e-3),
                    ran: true,
                    makespan: 2.0e-3,
                    compiles: vec![(1, 0.25, 0.75)],
                },
            },
            Message::Done,
        ];
        // One encoder + one line buffer across every message: the reuse
        // path must produce byte-identical lines to the one-shot path.
        let mut enc = WireEncoder::default();
        let mut line = String::new();
        for msg in messages {
            enc.encode_into(&msg, &mut line);
            assert_eq!(line, msg.encode());
            assert_eq!(Message::decode(&line).expect("decodes"), msg);
        }
    }

    #[test]
    fn negotiation_picks_the_highest_common_version_or_rejects_cleanly() {
        // Same build on both ends.
        assert_eq!(
            negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (MIN_WIRE_VERSION, WIRE_VERSION)),
            Ok(WIRE_VERSION)
        );
        // A v1-only peer still gets served (v2 is a superset).
        assert_eq!(negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (1, 1)), Ok(1));
        // A future peer that still speaks our versions settles on ours.
        assert_eq!(
            negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (1, WIRE_VERSION + 5)),
            Ok(WIRE_VERSION)
        );
        // A future peer that dropped everything we speak is rejected with
        // a diagnostic naming both ranges.
        let e = negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (WIRE_VERSION + 1, WIRE_VERSION + 3))
            .expect_err("no overlap");
        assert!(e.message.contains("no common wire version"), "{e}");
        assert!(e.message.contains(&format!("{}..={}", WIRE_VERSION + 1, WIRE_VERSION + 3)), "{e}");
    }

    #[test]
    fn hello_tolerates_future_trailing_fields() {
        // A v3 HELLO might append capability fields; decoding must still
        // yield the version range (fields 0 and 1 are frozen), because
        // rejecting it as a parse error would mask the skew diagnostic.
        let future = "HELLO 1:1 1:9 12:gpu-direct=1 4:zstd";
        match Message::decode(future).expect("future HELLO still decodes") {
            Message::Hello { min_version: 1, max_version: 9 } => {}
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn machine_profiles_survive_exactly() {
        for m in MachineProfile::extended() {
            let msg = Message::Init {
                version: WIRE_VERSION,
                bench_spec: "x n=1".to_owned(),
                machine: Box::new(m.clone()),
            };
            let Message::Init { machine, .. } = Message::decode(&msg.encode()).expect("decodes")
            else {
                panic!("wrong tag");
            };
            assert_eq!(*machine, m);
        }
    }
}

//! Socket transport shared by the farmd dispatcher, the remote worker
//! mode of `petal-shard`, and the farm's remote-pool client.
//!
//! The [`crate::wire`] format is transport-agnostic (line-delimited
//! records); this module supplies the two stream transports the tuning
//! farm serves: **TCP** (`tcp:host:port`, or bare `host:port`) for
//! cross-machine pools and **unix-domain sockets** (`unix:<path>`) for
//! same-host pools with no network stack in the loop. [`Endpoint`] is
//! the parsed form of the one string an operator configures (`--listen`,
//! `--connect`, `--farmd`/`PETAL_FARMD`, `--registry`/`PETAL_REGISTRY`);
//! [`FarmListener`] and [`FarmStream`] erase the transport so everything
//! above this module is written once.
//!
//! Two endpoint forms never open a socket: `dir:<path>` names a local
//! directory-backed store (the registry's on-disk form) and `none`
//! explicitly disables a facility (`--farmd none` forces local
//! evaluation; `--registry none` forces a cold run). They exist so
//! every flag that accepts an endpoint shares this one grammar and one
//! parser instead of growing per-flag dialects.
//!
//! An endpoint string may also be an **ordered fallback list** —
//! comma-separated forms, e.g. `tcp:a:1,tcp:b:1,dir:/srv/reg` — parsed
//! as [`Endpoint::Fallback`]. Connecting walks the list in order and
//! uses the first element that answers, which is how a client survives
//! a dead primary dispatcher or fails over from a served registry to
//! its local directory mirror.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A parsed endpoint: where a dispatcher listens, workers/clients
/// connect, a store lives, or an explicit "nothing here".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address in `host:port` form (`tcp:host:port` or bare
    /// `host:port` on the command line).
    Tcp(String),
    /// A unix-domain socket path (`unix:<path>` on the command line).
    Unix(PathBuf),
    /// A local directory (`dir:<path>` on the command line) — no socket;
    /// names an on-disk store such as the registry's directory form.
    Dir(PathBuf),
    /// The explicit "off" endpoint (`none` on the command line): the
    /// escape hatch that beats an environment default.
    Disabled,
    /// An ordered fallback list (`tcp:a:1,tcp:b:1,dir:/srv/reg` on the
    /// command line): connecting tries each element in order and uses
    /// the first that answers. Never nested; never contains `none`.
    Fallback(Vec<Endpoint>),
}

/// The accepted endpoint grammar, echoed verbatim in every parse error
/// so a bad flag value teaches its own fix.
const ENDPOINT_GRAMMAR: &str = "`tcp:host:port` (or bare `host:port`), `unix:<path>`, \
     `dir:<path>`, `none`, or a comma-separated fallback list of those \
     (e.g. `tcp:a:1,tcp:b:1,dir:/srv/reg`)";

impl Endpoint {
    /// Parse an endpoint string: `tcp:<host:port>` (or bare `host:port`)
    /// selects TCP, `unix:<path>` a unix-domain socket, `dir:<path>` a
    /// local directory, and the literal `none` the disabled endpoint. A
    /// string containing `,` parses as an ordered [`Endpoint::Fallback`]
    /// list of those forms (`none` is not a fallback and is rejected
    /// inside a list).
    ///
    /// # Errors
    /// A message echoing the offending input and the accepted grammar.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if s.contains(',') {
            return Self::parse_list(s, Self::parse_one);
        }
        Self::parse_one(s)
    }

    /// One non-list endpoint form.
    fn parse_one(s: &str) -> Result<Endpoint, String> {
        if s == "none" {
            return Ok(Endpoint::Disabled);
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err(format!(
                    "bad endpoint `{s}`: the tcp form is missing its port; \
                     expected {ENDPOINT_GRAMMAR}"
                ));
            }
            return Ok(Endpoint::Tcp(addr.to_owned()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(format!(
                    "bad endpoint `{s}`: the unix form is missing its path; \
                     expected {ENDPOINT_GRAMMAR}"
                ));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(path) = s.strip_prefix("dir:") {
            if path.is_empty() {
                return Err(format!(
                    "bad endpoint `{s}`: the dir form is missing its path; \
                     expected {ENDPOINT_GRAMMAR}"
                ));
            }
            return Ok(Endpoint::Dir(PathBuf::from(path)));
        }
        if s.contains(':') {
            return Ok(Endpoint::Tcp(s.to_owned()));
        }
        Err(format!("bad endpoint `{s}`; expected {ENDPOINT_GRAMMAR}"))
    }

    /// Parse a comma-separated fallback list, each element through
    /// `element` (so `parse` and `parse_store` lists keep their own
    /// bare-string rules).
    fn parse_list(
        s: &str,
        element: impl Fn(&str) -> Result<Endpoint, String>,
    ) -> Result<Endpoint, String> {
        let mut list = Vec::new();
        for part in s.split(',') {
            if part.is_empty() {
                return Err(format!(
                    "bad endpoint list `{s}`: empty element; expected {ENDPOINT_GRAMMAR}"
                ));
            }
            match element(part)? {
                Endpoint::Disabled => {
                    return Err(format!(
                        "bad endpoint list `{s}`: `none` cannot appear in a fallback \
                         list; expected {ENDPOINT_GRAMMAR}"
                    ))
                }
                ep => list.push(ep),
            }
        }
        Ok(Endpoint::Fallback(list))
    }

    /// Like [`Self::parse`], but a bare string with no `:` is taken as a
    /// `dir:` path — the historical `--registry <dir>` spelling, kept so
    /// existing scripts and docs stay valid. Prefix with `dir:` to name
    /// a directory whose path contains a colon. Comma lists apply the
    /// same bare-string rule per element.
    ///
    /// # Errors
    /// A message echoing the offending input and the accepted grammar.
    pub fn parse_store(s: &str) -> Result<Endpoint, String> {
        if s.contains(',') {
            return Self::parse_list(s, Self::parse_store_one);
        }
        Self::parse_store_one(s)
    }

    /// One non-list store-endpoint form (bare no-colon strings are dirs).
    fn parse_store_one(s: &str) -> Result<Endpoint, String> {
        if !s.is_empty() && !s.contains(':') && s != "none" {
            return Ok(Endpoint::Dir(PathBuf::from(s)));
        }
        Self::parse_one(s)
    }

    /// The socket elements this endpoint offers for connecting, in
    /// fallback order: the endpoint itself for a single `tcp:`/`unix:`
    /// form, the socket members of a fallback list, empty for
    /// `dir:`/`none`.
    #[must_use]
    pub fn socket_elements(&self) -> Vec<&Endpoint> {
        match self {
            Endpoint::Tcp(_) | Endpoint::Unix(_) => vec![self],
            Endpoint::Dir(_) | Endpoint::Disabled => Vec::new(),
            Endpoint::Fallback(list) => {
                list.iter().filter(|e| matches!(e, Endpoint::Tcp(_) | Endpoint::Unix(_))).collect()
            }
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Dir(path) => write!(f, "dir:{}", path.display()),
            Endpoint::Disabled => f.write_str("none"),
            Endpoint::Fallback(list) => {
                for (i, ep) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{ep}")?;
                }
                Ok(())
            }
        }
    }
}

/// A listening socket on either transport.
///
/// Accept is non-blocking ([`Self::poll_accept`]) so a server loop can
/// interleave accepting with a stop flag instead of blocking forever in
/// `accept(2)`.
#[derive(Debug)]
pub enum FarmListener {
    /// Listening TCP socket.
    Tcp(TcpListener),
    /// Listening unix-domain socket (the path is unlinked on drop).
    Unix(UnixListener, PathBuf),
}

impl FarmListener {
    /// Bind `endpoint`. A TCP port of `0` binds an ephemeral port
    /// (recover the real one with [`Self::local_endpoint`]); a stale
    /// unix-socket file at the path is removed first.
    ///
    /// # Errors
    /// The underlying `bind(2)` failure; `dir:`/`none` endpoints are not
    /// listenable and fail with `InvalidInput`.
    pub fn bind(endpoint: &Endpoint) -> io::Result<FarmListener> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => FarmListener::Tcp(TcpListener::bind(addr.as_str())?),
            Endpoint::Unix(path) => {
                // A previous dispatcher that died without cleanup leaves
                // the socket file behind; binding over it is the
                // operator-friendly behavior.
                let _ = std::fs::remove_file(path);
                FarmListener::Unix(UnixListener::bind(path)?, path.clone())
            }
            Endpoint::Dir(_) | Endpoint::Disabled | Endpoint::Fallback(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("endpoint `{endpoint}` is not a single socket; cannot listen on it"),
                ))
            }
        };
        match &listener {
            FarmListener::Tcp(l) => l.set_nonblocking(true)?,
            FarmListener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        Ok(listener)
    }

    /// The bound endpoint, with any ephemeral TCP port resolved.
    ///
    /// # Errors
    /// When the local address cannot be read back from the socket.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            FarmListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            FarmListener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// Accept one pending connection, or `None` when nothing is waiting.
    /// The accepted stream is switched back to blocking mode.
    ///
    /// # Errors
    /// Accept failures other than `WouldBlock`.
    pub fn poll_accept(&self) -> io::Result<Option<FarmStream>> {
        let stream = match self {
            FarmListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => FarmStream::Tcp(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            FarmListener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => FarmStream::Unix(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        stream.set_nonblocking(false)?;
        Ok(Some(stream))
    }
}

impl Drop for FarmListener {
    fn drop(&mut self) {
        if let FarmListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream on either transport.
#[derive(Debug)]
pub enum FarmStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    Unix(UnixStream),
}

impl FarmStream {
    /// Connect to `endpoint` once. A fallback list is walked in order
    /// and the first element that answers wins; the error names the
    /// whole list when every element refuses.
    ///
    /// # Errors
    /// The underlying `connect(2)` failure; `dir:`/`none` endpoints are
    /// not sockets and fail with `InvalidInput`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<FarmStream> {
        Ok(match endpoint {
            Endpoint::Tcp(addr) => FarmStream::Tcp(TcpStream::connect(addr.as_str())?),
            Endpoint::Unix(path) => FarmStream::Unix(UnixStream::connect(path)?),
            Endpoint::Dir(_) | Endpoint::Disabled => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("endpoint `{endpoint}` is not a socket; cannot connect to it"),
                ))
            }
            Endpoint::Fallback(_) => {
                let mut last: Option<io::Error> = None;
                for ep in endpoint.socket_elements() {
                    match Self::connect(ep) {
                        Ok(s) => return Ok(s),
                        Err(e) => last = Some(e),
                    }
                }
                return Err(match last {
                    Some(e) => io::Error::new(
                        e.kind(),
                        format!("no endpoint in `{endpoint}` answered; last error: {e}"),
                    ),
                    None => io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("endpoint list `{endpoint}` has no socket element to connect to"),
                    ),
                });
            }
        })
    }

    /// Connect to `endpoint`, retrying until `patience` elapses — covers
    /// the worker-starts-before-dispatcher race in scripted bring-up.
    ///
    /// # Errors
    /// The last connect failure once patience runs out.
    pub fn connect_retry(endpoint: &Endpoint, patience: Duration) -> io::Result<FarmStream> {
        let deadline = Instant::now() + patience;
        loop {
            match Self::connect(endpoint) {
                Ok(s) => return Ok(s),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// An independent handle to the same connection (for split
    /// reader/writer threads).
    ///
    /// # Errors
    /// The underlying `dup(2)` failure.
    pub fn try_clone(&self) -> io::Result<FarmStream> {
        Ok(match self {
            FarmStream::Tcp(s) => FarmStream::Tcp(s.try_clone()?),
            FarmStream::Unix(s) => FarmStream::Unix(s.try_clone()?),
        })
    }

    /// Shut down both directions, unblocking any thread reading the peer.
    pub fn shutdown(&self) {
        match self {
            FarmStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            FarmStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Bound how long one read may block (`None` blocks forever).
    ///
    /// # Errors
    /// The underlying `setsockopt(2)` failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            FarmStream::Tcp(s) => s.set_read_timeout(timeout),
            FarmStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bound how long one write may block (`None` blocks forever). The
    /// dispatcher sets this on every connection so a wedged peer with a
    /// full receive buffer turns into a write error — and the
    /// worker-drain/requeue path — instead of parking the scheduler
    /// thread forever inside a blocked `write(2)`.
    ///
    /// # Errors
    /// The underlying `setsockopt(2)` failure.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            FarmStream::Tcp(s) => s.set_write_timeout(timeout),
            FarmStream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            FarmStream::Tcp(s) => s.set_nonblocking(nonblocking),
            FarmStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Whether an I/O error is a read-timeout expiry rather than a real
    /// failure (the two kinds differ across platforms).
    #[must_use]
    pub fn is_timeout(e: &io::Error) -> bool {
        matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    }
}

impl Read for FarmStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            FarmStream::Tcp(s) => s.read(buf),
            FarmStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for FarmStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            FarmStream::Tcp(s) => s.write(buf),
            FarmStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            FarmStream::Tcp(s) => s.flush(),
            FarmStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!(Endpoint::parse("127.0.0.1:7777"), Ok(Endpoint::Tcp("127.0.0.1:7777".into())));
        assert_eq!(Endpoint::parse("tcp:127.0.0.1:80"), Ok(Endpoint::Tcp("127.0.0.1:80".into())));
        assert_eq!(Endpoint::parse("unix:/tmp/x.sock"), Ok(Endpoint::Unix("/tmp/x.sock".into())));
        assert_eq!(Endpoint::parse("dir:/srv/reg"), Ok(Endpoint::Dir("/srv/reg".into())));
        assert_eq!(Endpoint::parse("none"), Ok(Endpoint::Disabled));
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("dir:").is_err());
        assert!(Endpoint::parse("tcp:portless").is_err());
        assert!(Endpoint::parse("nocolon").is_err());
        assert_eq!(Endpoint::parse("unix:/tmp/x.sock").unwrap().to_string(), "unix:/tmp/x.sock");
        assert_eq!(Endpoint::parse("[::1]:80").unwrap().to_string(), "[::1]:80");
        assert_eq!(Endpoint::parse("dir:/srv/reg").unwrap().to_string(), "dir:/srv/reg");
        assert_eq!(Endpoint::parse("none").unwrap().to_string(), "none");
    }

    #[test]
    fn fallback_lists_parse_display_and_reject() {
        assert_eq!(
            Endpoint::parse("tcp:a:1,unix:/x.sock,dir:/srv/reg"),
            Ok(Endpoint::Fallback(vec![
                Endpoint::Tcp("a:1".into()),
                Endpoint::Unix("/x.sock".into()),
                Endpoint::Dir("/srv/reg".into()),
            ]))
        );
        // Bare host:port elements keep their non-list meaning.
        assert_eq!(
            Endpoint::parse("a:1,b:2"),
            Ok(Endpoint::Fallback(vec![Endpoint::Tcp("a:1".into()), Endpoint::Tcp("b:2".into())]))
        );
        // Display ∘ parse is the identity on canonically spelled lists
        // (TCP displays bare, its historical form), and re-parsing any
        // displayed list gives back the same value.
        for s in ["a:1,unix:/x.sock,dir:/srv/reg", "127.0.0.1:1,127.0.0.2:2"] {
            assert_eq!(Endpoint::parse(s).unwrap().to_string(), s);
        }
        let ep = Endpoint::parse("tcp:a:1,unix:/x.sock,dir:/srv/reg").unwrap();
        assert_eq!(Endpoint::parse(&ep.to_string()), Ok(ep));
        // `none`, empty elements and bad forms are rejected — and the
        // diagnostic echoes the offending input plus the grammar.
        for bad in ["none,tcp:a:1", "tcp:a:1,", ",tcp:a:1", "tcp:a:1,nocolon"] {
            let e = Endpoint::parse(bad).expect_err(bad);
            assert!(e.contains("tcp:host:port"), "`{bad}` → {e}");
        }
        let e = Endpoint::parse("tcp:a:1,none").expect_err("none in list");
        assert!(e.contains("tcp:a:1,none"), "{e}");
        // Socket elements skip the non-socket members, in order.
        let ep = Endpoint::parse("tcp:a:1,dir:/srv/reg,unix:/x.sock").unwrap();
        let socks: Vec<String> = ep.socket_elements().iter().map(|e| e.to_string()).collect();
        assert_eq!(socks, ["a:1", "unix:/x.sock"]);
    }

    #[test]
    fn parse_errors_echo_the_input_and_the_grammar() {
        for bad in ["tcp:portless", "unix:", "dir:", "nocolon", ""] {
            let e = Endpoint::parse(bad).expect_err(bad);
            assert!(e.contains(&format!("`{bad}`")), "`{bad}` → {e}");
            for form in ["tcp:host:port", "unix:<path>", "dir:<path>", "none", "comma"] {
                assert!(e.contains(form), "`{bad}` error must name {form}: {e}");
            }
        }
    }

    #[test]
    fn store_parsing_defaults_bare_paths_to_directories() {
        // The historical `--registry <dir>` spelling: no colon ⇒ a dir.
        assert_eq!(Endpoint::parse_store("/srv/reg"), Ok(Endpoint::Dir("/srv/reg".into())));
        assert_eq!(Endpoint::parse_store("relative"), Ok(Endpoint::Dir("relative".into())));
        // Everything with a scheme (or a bare host:port) keeps the strict
        // grammar, so a served registry is one prefix away.
        assert_eq!(Endpoint::parse_store("none"), Ok(Endpoint::Disabled));
        assert_eq!(Endpoint::parse_store("tcp:h:1"), Ok(Endpoint::Tcp("h:1".into())));
        assert_eq!(Endpoint::parse_store("h:1"), Ok(Endpoint::Tcp("h:1".into())));
        assert_eq!(Endpoint::parse_store("unix:/s.sock"), Ok(Endpoint::Unix("/s.sock".into())));
        assert_eq!(Endpoint::parse_store("dir:a:b"), Ok(Endpoint::Dir("a:b".into())));
        assert!(Endpoint::parse_store("").is_err());
        // List elements keep the bare-string-is-a-dir rule.
        assert_eq!(
            Endpoint::parse_store("tcp:h:1,/srv/reg"),
            Ok(Endpoint::Fallback(vec![
                Endpoint::Tcp("h:1".into()),
                Endpoint::Dir("/srv/reg".into()),
            ]))
        );
    }

    #[test]
    fn non_socket_endpoints_refuse_to_bind_or_connect() {
        for ep in [Endpoint::Dir("/tmp/x".into()), Endpoint::Disabled] {
            let bind = FarmListener::bind(&ep).expect_err("bind must fail");
            assert_eq!(bind.kind(), io::ErrorKind::InvalidInput);
            let connect = FarmStream::connect(&ep).expect_err("connect must fail");
            assert_eq!(connect.kind(), io::ErrorKind::InvalidInput);
        }
        // A fallback list is never listenable (it names many places).
        let list = Endpoint::Fallback(vec![Endpoint::Tcp("127.0.0.1:0".into())]);
        let bind = FarmListener::bind(&list).expect_err("bind must fail");
        assert_eq!(bind.kind(), io::ErrorKind::InvalidInput);
        // Connecting to a list with no live element aggregates the error.
        let dead = Endpoint::Fallback(vec![Endpoint::Dir("/tmp/x".into())]);
        let connect = FarmStream::connect(&dead).expect_err("connect must fail");
        assert_eq!(connect.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fallback_connect_walks_past_a_dead_element() {
        let listener = FarmListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
        let live = listener.local_endpoint().expect("addr");
        // A dead primary (a bound-then-dropped ephemeral port) followed
        // by the live listener: connect must land on the live one.
        let dead = {
            let l = FarmListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
            l.local_endpoint().expect("addr")
        };
        let list = Endpoint::Fallback(vec![dead, live]);
        let mut client = FarmStream::connect(&list).expect("fallback connect");
        let mut server = loop {
            if let Some(s) = listener.poll_accept().expect("accept") {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        client.write_all(b"ok").expect("write");
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ok");
    }

    #[test]
    fn tcp_loopback_round_trips_bytes() {
        let listener = FarmListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
        let ep = listener.local_endpoint().expect("addr");
        let mut client = FarmStream::connect(&ep).expect("connect");
        let mut server = loop {
            if let Some(s) = listener.poll_accept().expect("accept") {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        client.write_all(b"ping\n").expect("write");
        let mut buf = [0u8; 5];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping\n");
    }

    #[test]
    fn unix_socket_binds_over_stale_file_and_cleans_up() {
        let path = std::env::temp_dir().join(format!("petal-net-test-{}.sock", std::process::id()));
        std::fs::write(&path, b"stale").expect("plant stale file");
        let ep = Endpoint::Unix(path.clone());
        let listener = FarmListener::bind(&ep).expect("bind over stale file");
        let mut client = FarmStream::connect(&ep).expect("connect");
        let mut server = loop {
            if let Some(s) = listener.poll_accept().expect("accept") {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        client.write_all(b"hi").expect("write");
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hi");
        drop(listener);
        assert!(!path.exists(), "socket file removed on drop");
    }
}

//! The remote-pool client: [`crate::EvalFarm`]'s connection to a
//! `petal-farmd` dispatcher.
//!
//! A [`RemotePool`] speaks the socket flavor of the [`crate::wire`]
//! protocol as a *client*: `HELLO` exchange (version negotiation), one
//! `INIT` naming the `(benchmark, machine)` session, then batches of
//! `JOB` records answered by `RESULT` records. Unlike the pipe protocol,
//! results may arrive **in any order** — the dispatcher fans jobs out to
//! an elastic worker fleet and relays answers as they land — so the
//! client files each `RESULT` by its echoed index and returns the batch
//! in submission order. That reordering is the entire client-side
//! contribution to determinism; everything else (re-pricing, merge) is
//! the same parent-side code every other backend uses.
//!
//! Worker churn is invisible here by design: the dispatcher re-queues a
//! lost worker's jobs internally and the client just sees the results
//! arrive. Only a dead *dispatcher* surfaces as a [`ShardError`], and
//! [`crate::EvalFarm`] answers that by reconnecting and re-running the
//! batch (sound because jobs are pure).

use crate::dispatch::Dispatch;
use crate::net::{Endpoint, FarmStream};
use crate::shard::ShardError;
use crate::wire::{negotiate, Message, WireEncoder, MIN_WIRE_VERSION, WIRE_VERSION};
use crate::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// How long [`RemotePool::connect`] keeps retrying an endpoint that is
/// not (yet) accepting — covers tuner-before-dispatcher bring-up races.
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

/// A connected, initialized client session against a `petal-farmd`
/// dispatcher, usable as the farm's dispatch backend.
pub struct RemotePool {
    reader: BufReader<FarmStream>,
    writer: FarmStream,
    enc: WireEncoder,
    line_out: String,
    line_in: String,
    /// Session key: the benchmark spec and machine the dispatcher was
    /// initialized with; a mismatch forces a fresh session.
    key: (String, MachineProfile),
    endpoint: Endpoint,
}

impl std::fmt::Debug for RemotePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePool")
            .field("endpoint", &self.endpoint)
            .field("bench", &self.key.0)
            .field("machine", &self.key.1.codename)
            .finish_non_exhaustive()
    }
}

impl RemotePool {
    /// Connect to the dispatcher at `endpoint`, negotiate a wire version,
    /// and open a `(bench_spec, machine)` evaluation session.
    ///
    /// # Errors
    /// Connect failures (after `CONNECT_PATIENCE` of retries), version
    /// negotiation failures, and any protocol violation in the handshake.
    pub fn connect(
        endpoint_str: &str,
        bench_spec: &str,
        machine: &MachineProfile,
    ) -> Result<RemotePool, ShardError> {
        let endpoint = Endpoint::parse(endpoint_str).map_err(ShardError::new)?;
        let stream = FarmStream::connect_retry(&endpoint, CONNECT_PATIENCE)
            .map_err(|e| ShardError::new(format!("connecting to farmd at {endpoint}: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ShardError::new(format!("cloning farmd connection at {endpoint}: {e}")))?;
        let mut pool = RemotePool {
            reader: BufReader::new(stream),
            writer,
            enc: WireEncoder::default(),
            line_out: String::new(),
            line_in: String::new(),
            key: (bench_spec.to_owned(), machine.clone()),
            endpoint,
        };

        // HELLO exchange: both sides advertise their supported range and
        // settle on the highest common version (or fail with a version
        // diagnostic, never a parse error).
        pool.send(&Message::hello())?;
        match pool.recv()? {
            Message::Hello { min_version, max_version } => {
                negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (min_version, max_version))?;
            }
            Message::Goodbye { reason } => {
                return Err(ShardError::new(format!("farmd rejected the connection: {reason}")));
            }
            other => {
                return Err(ShardError::new(format!("farmd answered HELLO with {other:?}")));
            }
        }

        // Session handshake, same as a pipe worker: INIT → READY.
        pool.send(&Message::Init {
            version: WIRE_VERSION,
            bench_spec: bench_spec.to_owned(),
            machine: Box::new(machine.clone()),
        })?;
        match pool.recv()? {
            Message::Ready { version } if version == WIRE_VERSION => {}
            Message::Ready { version } => {
                return Err(ShardError::new(format!(
                    "farmd opened the session at wire version {version}, \
                     this build speaks {WIRE_VERSION}"
                )));
            }
            Message::Goodbye { reason } => {
                return Err(ShardError::new(format!("farmd refused the session: {reason}")));
            }
            other => {
                return Err(ShardError::new(format!("farmd answered INIT with {other:?}")));
            }
        }
        Ok(pool)
    }

    fn send(&mut self, msg: &Message) -> Result<(), ShardError> {
        self.enc.encode_into(msg, &mut self.line_out);
        self.line_out.push('\n');
        self.writer
            .write_all(self.line_out.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ShardError::new(format!("writing to farmd at {}: {e}", self.endpoint)))
    }

    fn recv(&mut self) -> Result<Message, ShardError> {
        loop {
            self.line_in.clear();
            let n = self.reader.read_line(&mut self.line_in).map_err(|e| {
                ShardError::new(format!("reading from farmd at {}: {e}", self.endpoint))
            })?;
            if n == 0 {
                return Err(ShardError::new(format!(
                    "farmd at {} closed the connection",
                    self.endpoint
                )));
            }
            match Message::decode(self.line_in.trim_end_matches('\n'))? {
                // Liveness chatter is legal on any socket; clients ignore it.
                Message::Heartbeat { .. } => {}
                msg => return Ok(msg),
            }
        }
    }
}

impl Drop for RemotePool {
    fn drop(&mut self) {
        // Best-effort graceful close so the dispatcher retires the
        // session instead of logging a dropped client.
        let _ = self.send(&Message::Done);
        if let Ok(s) = self.reader.get_ref().try_clone() {
            s.shutdown();
        }
    }
}

impl Dispatch for RemotePool {
    fn matches(&self, bench_spec: &str, machine: &MachineProfile) -> bool {
        self.key.0 == bench_spec && &self.key.1 == machine
    }

    /// Ship the whole batch, then collect `RESULT`s in whatever order the
    /// dispatcher's workers produce them, filing each by its index.
    ///
    /// Writing everything up front is deadlock-free because the
    /// dispatcher buffers the queue in memory (it is not a pipe peer with
    /// a bounded buffer and a blocked write of its own) — flow control
    /// toward workers is the dispatcher's job.
    fn evaluate(
        &mut self,
        jobs: &[EvalJob],
        _effective: usize,
    ) -> Result<Vec<JobOutcome>, ShardError> {
        let with_outstanding = |mut e: ShardError, outcomes: &[Option<JobOutcome>]| {
            e.outstanding =
                outcomes.iter().enumerate().filter(|(_, o)| o.is_none()).map(|(i, _)| i).collect();
            e
        };
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            if let Err(e) = self.send(&Message::Job { index: i as u64, job: job.clone() }) {
                return Err(with_outstanding(e, &outcomes));
            }
        }
        let mut remaining = jobs.len();
        while remaining > 0 {
            let msg = match self.recv() {
                Ok(m) => m,
                Err(e) => return Err(with_outstanding(e, &outcomes)),
            };
            match msg {
                Message::Result { index, outcome } => {
                    let slot = outcomes.get_mut(index as usize).ok_or_else(|| {
                        ShardError::new(format!(
                            "farmd answered job {index}, batch has {}",
                            jobs.len()
                        ))
                    })?;
                    if slot.replace(outcome).is_some() {
                        return Err(ShardError::new(format!("farmd answered job {index} twice")));
                    }
                    remaining -= 1;
                }
                Message::Goodbye { reason } => {
                    return Err(with_outstanding(
                        ShardError::new(format!("farmd ended the session: {reason}")),
                        &outcomes,
                    ));
                }
                other => {
                    return Err(with_outstanding(
                        ShardError::new(format!("farmd sent {other:?} mid-batch")),
                        &outcomes,
                    ));
                }
            }
        }
        Ok(outcomes.into_iter().map(|o| o.expect("all results filed")).collect())
    }
}

//! The remote-pool client: [`crate::EvalFarm`]'s connection to a
//! `petal-farmd` dispatcher.
//!
//! A [`RemotePool`] speaks the socket flavor of the [`crate::wire`]
//! protocol as a *client*: `HELLO` exchange (version negotiation), one
//! `INIT` naming the `(benchmark, machine)` session, then batches of
//! `JOB` records answered by `RESULT` records. Unlike the pipe protocol,
//! results may arrive **in any order** — the dispatcher fans jobs out to
//! an elastic worker fleet and relays answers as they land — so the
//! client files each `RESULT` by its echoed index and returns the batch
//! in submission order. That reordering is the entire client-side
//! contribution to determinism; everything else (re-pricing, merge) is
//! the same parent-side code every other backend uses.
//!
//! Worker churn is invisible here by design: the dispatcher re-queues a
//! lost worker's jobs internally and the client just sees the results
//! arrive. Since wire version 4 a bounced *dispatcher* is survivable
//! too: the dispatcher hands the client a `SESSION` token after `READY`,
//! and on a transport failure mid-batch the client reconnects (bounded
//! exponential backoff with jitter, overall deadline), presents the
//! token in a `RESUME`, and re-submits only its unanswered jobs. The
//! dispatcher's dedup (`Fresh`/`Duplicate`/`Stale` verdicts plus a
//! per-session result log) makes the replay idempotent, so the batch —
//! and therefore `Tuned.config` and the whole trajectory — stays
//! bit-identical across the bounce. Only an unresumable failure (no
//! token, expired session, exhausted deadline) surfaces as a
//! [`ShardError`], and [`crate::EvalFarm`] answers that by reconnecting
//! and re-running the batch (sound because jobs are pure).

use crate::dispatch::Dispatch;
use crate::net::{Endpoint, FarmStream};
use crate::shard::ShardError;
use crate::wire::{
    negotiate, Message, WireEncoder, MIN_WIRE_VERSION, RESUME_WIRE_VERSION, WIRE_VERSION,
};
use crate::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

/// How long [`RemotePool::connect`] keeps retrying an endpoint that is
/// not (yet) accepting — covers tuner-before-dispatcher bring-up races.
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

/// Overall deadline for resuming a session after a transport failure:
/// the dispatcher gets this long to come back before the client gives
/// up and surfaces the error.
const RESUME_DEADLINE: Duration = Duration::from_secs(60);

/// First reconnect backoff step; doubles per attempt up to
/// [`RESUME_BACKOFF_CAP`], plus a little jitter so a fleet of resuming
/// clients does not stampede the reborn dispatcher in lockstep.
const RESUME_BACKOFF_START: Duration = Duration::from_millis(50);

/// Ceiling on the exponential reconnect backoff.
const RESUME_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// How a single resume attempt failed: `Transient` keeps the backoff
/// loop going, `Fatal` (session refused, version lost) gives up now.
enum ResumeFail {
    Transient(ShardError),
    Fatal(ShardError),
}

/// A connected, initialized client session against a `petal-farmd`
/// dispatcher, usable as the farm's dispatch backend.
pub struct RemotePool {
    reader: BufReader<FarmStream>,
    writer: FarmStream,
    enc: WireEncoder,
    line_out: String,
    line_in: String,
    /// Session key: the benchmark spec and machine the dispatcher was
    /// initialized with; a mismatch forces a fresh session.
    key: (String, MachineProfile),
    endpoint: Endpoint,
    /// Resume credentials from the dispatcher's `SESSION` record, when
    /// the negotiated wire version supports them.
    token: Option<(u64, u64)>,
    /// Absolute wire index of the next batch's first job. Indices are
    /// absolute (never reset per batch) so `(session, index)` uniquely
    /// names a job for the session's whole life — the property that
    /// makes post-resume re-submission dedupable on the dispatcher.
    base: u64,
}

impl std::fmt::Debug for RemotePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePool")
            .field("endpoint", &self.endpoint)
            .field("bench", &self.key.0)
            .field("machine", &self.key.1.codename)
            .finish_non_exhaustive()
    }
}

impl RemotePool {
    /// Connect to the dispatcher at `endpoint`, negotiate a wire version,
    /// and open a `(bench_spec, machine)` evaluation session.
    ///
    /// # Errors
    /// Connect failures (after `CONNECT_PATIENCE` of retries), version
    /// negotiation failures, and any protocol violation in the handshake.
    pub fn connect(
        endpoint_str: &str,
        bench_spec: &str,
        machine: &MachineProfile,
    ) -> Result<RemotePool, ShardError> {
        let endpoint = Endpoint::parse(endpoint_str).map_err(ShardError::new)?;
        let stream = FarmStream::connect_retry(&endpoint, CONNECT_PATIENCE)
            .map_err(|e| ShardError::new(format!("connecting to farmd at {endpoint}: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ShardError::new(format!("cloning farmd connection at {endpoint}: {e}")))?;
        let mut pool = RemotePool {
            reader: BufReader::new(stream),
            writer,
            enc: WireEncoder::default(),
            line_out: String::new(),
            line_in: String::new(),
            key: (bench_spec.to_owned(), machine.clone()),
            endpoint,
            token: None,
            base: 0,
        };

        // HELLO exchange: both sides advertise their supported range and
        // settle on the highest common version (or fail with a version
        // diagnostic, never a parse error).
        pool.send(&Message::hello())?;
        let negotiated = match pool.recv()? {
            Message::Hello { min_version, max_version } => {
                negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (min_version, max_version))?
            }
            Message::Goodbye { reason } => {
                return Err(ShardError::new(format!("farmd rejected the connection: {reason}")));
            }
            other => {
                return Err(ShardError::new(format!("farmd answered HELLO with {other:?}")));
            }
        };

        // Session handshake, same as a pipe worker: INIT → READY.
        pool.send(&Message::Init {
            version: WIRE_VERSION,
            bench_spec: bench_spec.to_owned(),
            machine: Box::new(machine.clone()),
        })?;
        match pool.recv()? {
            Message::Ready { version } if version == WIRE_VERSION => {}
            Message::Ready { version } => {
                return Err(ShardError::new(format!(
                    "farmd opened the session at wire version {version}, \
                     this build speaks {WIRE_VERSION}"
                )));
            }
            Message::Goodbye { reason } => {
                return Err(ShardError::new(format!("farmd refused the session: {reason}")));
            }
            other => {
                return Err(ShardError::new(format!("farmd answered INIT with {other:?}")));
            }
        }
        // A resume-capable dispatcher follows READY with the session's
        // credentials; older dispatchers never send them.
        if negotiated >= RESUME_WIRE_VERSION {
            match pool.recv()? {
                Message::Session { token, nonce } => pool.token = Some((token, nonce)),
                other => {
                    return Err(ShardError::new(format!("farmd answered READY with {other:?}")));
                }
            }
        }
        Ok(pool)
    }

    /// Re-attach to the dispatcher after a transport failure, retrying
    /// with jittered exponential backoff until [`RESUME_DEADLINE`].
    fn resume(&mut self) -> Result<(), ShardError> {
        let (token, nonce) = self
            .token
            .ok_or_else(|| ShardError::new("farmd session has no resume token".to_owned()))?;
        let start = Instant::now();
        let mut backoff = RESUME_BACKOFF_START;
        let mut last = String::from("never attempted");
        while start.elapsed() < RESUME_DEADLINE {
            match self.try_resume(token, nonce) {
                Ok(()) => return Ok(()),
                Err(ResumeFail::Fatal(e)) => return Err(e),
                Err(ResumeFail::Transient(e)) => last = e.to_string(),
            }
            // Jitter only perturbs *timing*, never results, so wall-clock
            // entropy is safe here despite the determinism contract.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| u64::from(d.subsec_nanos()));
            std::thread::sleep(backoff + Duration::from_millis(nanos % 50));
            backoff = (backoff * 2).min(RESUME_BACKOFF_CAP);
        }
        Err(ShardError::new(format!(
            "farmd session {token} could not be resumed within {RESUME_DEADLINE:?}; \
             last error: {last}"
        )))
    }

    /// One resume attempt: dial, HELLO, `RESUME`, expect `READY` +
    /// `SESSION`. Leaves the fresh connection installed on success.
    fn try_resume(&mut self, token: u64, nonce: u64) -> Result<(), ResumeFail> {
        let transient = |e: ShardError| ResumeFail::Transient(e);
        let stream = FarmStream::connect(&self.endpoint).map_err(|e| {
            ResumeFail::Transient(ShardError::new(format!(
                "reconnecting to farmd at {}: {e}",
                self.endpoint
            )))
        })?;
        let writer = stream.try_clone().map_err(|e| {
            ResumeFail::Transient(ShardError::new(format!(
                "cloning farmd connection at {}: {e}",
                self.endpoint
            )))
        })?;
        // Install the fresh streams before the handshake so `send`/`recv`
        // use them; a failed handshake just leaves them to be replaced by
        // the next attempt.
        self.reader = BufReader::new(stream);
        self.writer = writer;
        self.send(&Message::hello()).map_err(transient)?;
        match self.recv().map_err(transient)? {
            Message::Hello { min_version, max_version } => {
                let v = negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (min_version, max_version))
                    .map_err(|e| ResumeFail::Fatal(ShardError::from(e)))?;
                if v < RESUME_WIRE_VERSION {
                    return Err(ResumeFail::Fatal(ShardError::new(format!(
                        "farmd at {} no longer speaks a resume-capable wire version",
                        self.endpoint
                    ))));
                }
            }
            other => {
                return Err(ResumeFail::Transient(ShardError::new(format!(
                    "farmd answered HELLO with {other:?} during resume"
                ))));
            }
        }
        self.send(&Message::Resume { token, nonce }).map_err(transient)?;
        match self.recv().map_err(transient)? {
            Message::Ready { .. } => {}
            Message::Goodbye { reason } => {
                return Err(ResumeFail::Fatal(ShardError::new(format!(
                    "farmd refused to resume the session: {reason}"
                ))));
            }
            other => {
                return Err(ResumeFail::Transient(ShardError::new(format!(
                    "farmd answered RESUME with {other:?}"
                ))));
            }
        }
        match self.recv().map_err(transient)? {
            Message::Session { token: t, nonce: n } if t == token && n == nonce => Ok(()),
            other => Err(ResumeFail::Transient(ShardError::new(format!(
                "farmd confirmed the resume with {other:?}"
            )))),
        }
    }

    fn send(&mut self, msg: &Message) -> Result<(), ShardError> {
        self.enc.encode_into(msg, &mut self.line_out);
        self.line_out.push('\n');
        self.writer
            .write_all(self.line_out.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ShardError::new(format!("writing to farmd at {}: {e}", self.endpoint)))
    }

    fn recv(&mut self) -> Result<Message, ShardError> {
        loop {
            self.line_in.clear();
            let n = self.reader.read_line(&mut self.line_in).map_err(|e| {
                ShardError::new(format!("reading from farmd at {}: {e}", self.endpoint))
            })?;
            if n == 0 {
                return Err(ShardError::new(format!(
                    "farmd at {} closed the connection",
                    self.endpoint
                )));
            }
            match Message::decode(self.line_in.trim_end_matches('\n'))? {
                // Liveness chatter is legal on any socket; clients ignore it.
                Message::Heartbeat { .. } => {}
                msg => return Ok(msg),
            }
        }
    }
}

impl Drop for RemotePool {
    fn drop(&mut self) {
        // Best-effort graceful close so the dispatcher retires the
        // session instead of logging a dropped client.
        let _ = self.send(&Message::Done);
        if let Ok(s) = self.reader.get_ref().try_clone() {
            s.shutdown();
        }
    }
}

impl Dispatch for RemotePool {
    fn matches(&self, bench_spec: &str, machine: &MachineProfile) -> bool {
        self.key.0 == bench_spec && &self.key.1 == machine
    }

    /// Ship the whole batch, then collect `RESULT`s in whatever order the
    /// dispatcher's workers produce them, filing each by its index.
    ///
    /// Writing everything up front is deadlock-free because the
    /// dispatcher buffers the queue in memory (it is not a pipe peer with
    /// a bounded buffer and a blocked write of its own) — flow control
    /// toward workers is the dispatcher's job.
    ///
    /// Jobs travel with *absolute* indices (`base + i`). On a transport
    /// failure mid-batch the client resumes the session (see [`module
    /// docs`](self)) and re-submits only the still-unanswered indices;
    /// the dispatcher re-serves anything it already answered from its
    /// result log and dedups anything still queued or in flight, so the
    /// filed outcomes are identical to an unbounced run.
    fn evaluate(
        &mut self,
        jobs: &[EvalJob],
        _effective: usize,
    ) -> Result<Vec<JobOutcome>, ShardError> {
        let with_outstanding = |mut e: ShardError, outcomes: &[Option<JobOutcome>]| {
            e.outstanding =
                outcomes.iter().enumerate().filter(|(_, o)| o.is_none()).map(|(i, _)| i).collect();
            e
        };
        let base = self.base;
        self.base += jobs.len() as u64;
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        let mut remaining = jobs.len();
        // Set once a resume happens mid-batch: replays may then echo a
        // result we already filed, which is tolerated iff bit-identical.
        let mut resumed = false;
        loop {
            // (Re-)submit every unanswered job: the whole batch on the
            // first pass, only the outstanding tail after a resume.
            let mut transport: Option<ShardError> = None;
            for (i, job) in jobs.iter().enumerate().filter(|(i, _)| outcomes[*i].is_none()) {
                if let Err(e) =
                    self.send(&Message::Job { index: base + i as u64, job: job.clone() })
                {
                    transport = Some(e);
                    break;
                }
            }
            while transport.is_none() && remaining > 0 {
                let msg = match self.recv() {
                    Ok(m) => m,
                    Err(e) => {
                        transport = Some(e);
                        break;
                    }
                };
                match msg {
                    Message::Result { index, outcome } => {
                        let rel = index.checked_sub(base).map(|r| r as usize);
                        let slot = rel.and_then(|r| outcomes.get_mut(r)).ok_or_else(|| {
                            ShardError::new(format!(
                                "farmd answered job {index}, batch is {base}..{}",
                                base + jobs.len() as u64
                            ))
                        })?;
                        match slot {
                            Some(prev) if resumed && *prev == outcome => {
                                // Replay of a result that raced the bounce;
                                // identical by the determinism contract.
                            }
                            Some(_) => {
                                return Err(ShardError::new(format!(
                                    "farmd answered job {index} twice{}",
                                    if resumed { " with different outcomes" } else { "" }
                                )));
                            }
                            None => {
                                *slot = Some(outcome);
                                remaining -= 1;
                            }
                        }
                    }
                    Message::Goodbye { reason } => {
                        return Err(with_outstanding(
                            ShardError::new(format!("farmd ended the session: {reason}")),
                            &outcomes,
                        ));
                    }
                    other => {
                        return Err(with_outstanding(
                            ShardError::new(format!("farmd sent {other:?} mid-batch")),
                            &outcomes,
                        ));
                    }
                }
            }
            let Some(e) = transport else {
                return Ok(outcomes.into_iter().map(|o| o.expect("all results filed")).collect());
            };
            // Transport failure (dispatcher bounce, broken socket): try
            // to resume the session and replay the outstanding tail.
            if self.token.is_none() {
                return Err(with_outstanding(e, &outcomes));
            }
            if let Err(resume_err) = self.resume() {
                let chained = ShardError::new(format!("{e}; {resume_err}"));
                return Err(with_outstanding(chained, &outcomes));
            }
            resumed = true;
        }
    }
}

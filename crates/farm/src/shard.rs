//! The shard front-end: a pool of `petal-shard` worker *processes*.
//!
//! The (crate-private) `ShardPool` spawns N workers with
//! [`std::process::Command`], speaks
//! the [`crate::wire`] protocol over their stdin/stdout pipes, assigns
//! jobs round-robin by submission index (`job i → worker i mod effective`)
//! and hands raw outcomes back to [`crate::EvalFarm`]'s submission-order
//! merge — the same merge the in-process paths use, so compile re-pricing
//! (and therefore the tuning result) is bit-identical at any shard count.
//!
//! Workers are stateless with respect to pricing: they report each trial's
//! charged compile events verbatim and never see the warm-kernel or
//! IR-cache sets. A pool is keyed by `(benchmark spec, machine)` and is
//! respawned when either changes; within one tuning run it persists across
//! generation batches.

use crate::wire::{Message, WireEncoder, WireError, WIRE_VERSION};
use crate::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// A shard-dispatch failure: worker spawn/IO problems or protocol
/// violations. Carries enough context to identify the worker at fault.
#[derive(Debug)]
pub struct ShardError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard farm error: {}", self.message)
    }
}

impl std::error::Error for ShardError {}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError { message: e.to_string() }
    }
}

fn io_err(context: &str, e: &std::io::Error) -> ShardError {
    ShardError { message: format!("{context}: {e}") }
}

/// Locate the `petal-shard` worker binary.
///
/// Resolution order:
/// 1. an explicit path from [`crate::FarmSettings::shard_bin`];
/// 2. the `PETAL_SHARD_BIN` environment variable;
/// 3. a `petal-shard` binary next to the current executable, or one
///    directory above it (covers `target/<profile>/deps/test-*` binaries
///    looking up to `target/<profile>/petal-shard`).
///
/// # Errors
/// When no candidate exists on disk — the message tells the operator to
/// `cargo build -p petal_shard` or set `PETAL_SHARD_BIN`.
pub fn resolve_shard_bin(explicit: Option<&Path>) -> Result<PathBuf, ShardError> {
    if let Some(p) = explicit {
        return Ok(p.to_path_buf());
    }
    if let Some(p) = std::env::var_os("PETAL_SHARD_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe_name = format!("petal-shard{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        for _ in 0..2 {
            if let Some(d) = dir {
                let candidate = d.join(&exe_name);
                if candidate.is_file() {
                    return Ok(candidate);
                }
                dir = d.parent();
            }
        }
    }
    Err(ShardError {
        message: "petal-shard binary not found; build it with \
                  `cargo build -p petal_shard` or point PETAL_SHARD_BIN \
                  (or FarmSettings::shard_bin) at it"
            .to_owned(),
    })
}

/// One spawned worker process with buffered pipes. The encoder and both
/// line buffers persist across jobs, so steady-state dispatch (one `JOB`
/// out, one `RESULT` line read back per trial) allocates nothing on the
/// parent side.
#[derive(Debug)]
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    enc: WireEncoder,
    line_out: String,
    line_in: String,
}

impl Worker {
    fn send(&mut self, msg: &Message) -> Result<(), ShardError> {
        self.enc.encode_into(msg, &mut self.line_out);
        self.line_out.push('\n');
        self.stdin
            .write_all(self.line_out.as_bytes())
            .map_err(|e| io_err("writing to shard worker", &e))
    }

    fn recv(&mut self) -> Result<Message, ShardError> {
        self.line_in.clear();
        let n = self
            .stdout
            .read_line(&mut self.line_in)
            .map_err(|e| io_err("reading from shard worker", &e))?;
        if n == 0 {
            return Err(ShardError {
                message: "shard worker closed its pipe early (it may have \
                          crashed; check its stderr above)"
                    .to_owned(),
            });
        }
        Ok(Message::decode(self.line_in.trim_end_matches('\n'))?)
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Best-effort clean shutdown: DONE, close stdin, reap. A worker
        // that already died is reaped all the same; errors are ignored
        // because drop runs on both success and failure paths.
        let _ = self.send(&Message::Done);
        let _ = self.stdin.flush();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A pool of initialized `petal-shard` worker processes for one
/// `(benchmark, machine)` session.
#[derive(Debug)]
pub(crate) struct ShardPool {
    workers: Vec<Worker>,
    /// Session key: the benchmark spec and machine this pool was
    /// initialized with; a mismatch forces a respawn.
    key: (String, MachineProfile),
}

impl ShardPool {
    /// Spawn and handshake `count` workers for `(bench_spec, machine)`.
    pub(crate) fn spawn(
        bin: &Path,
        count: usize,
        bench_spec: &str,
        machine: &MachineProfile,
    ) -> Result<ShardPool, ShardError> {
        let init = Message::Init {
            version: WIRE_VERSION,
            bench_spec: bench_spec.to_owned(),
            machine: Box::new(machine.clone()),
        };
        let mut workers = Vec::with_capacity(count);
        for i in 0..count.max(1) {
            let mut child = Command::new(bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| {
                    io_err(&format!("spawning shard worker {i} ({})", bin.display()), &e)
                })?;
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
            let mut worker = Worker {
                child,
                stdin,
                stdout,
                enc: WireEncoder::default(),
                line_out: String::new(),
                line_in: String::new(),
            };
            let at = |e: ShardError| ShardError { message: format!("worker {i}: {}", e.message) };
            worker.send(&init).map_err(at)?;
            worker.stdin.flush().map_err(|e| io_err(&format!("worker {i}: flushing INIT"), &e))?;
            match worker.recv().map_err(at)? {
                Message::Ready { version } if version == WIRE_VERSION => {}
                Message::Ready { version } => {
                    return Err(ShardError {
                        message: format!(
                            "shard worker {i} speaks wire version {version}, parent speaks \
                             {WIRE_VERSION}"
                        ),
                    });
                }
                other => {
                    return Err(ShardError {
                        message: format!("shard worker {i} answered INIT with {other:?}"),
                    });
                }
            }
            workers.push(worker);
        }
        Ok(ShardPool { workers, key: (bench_spec.to_owned(), machine.clone()) })
    }

    /// Whether this pool was initialized for `(bench_spec, machine)`.
    pub(crate) fn matches(&self, bench_spec: &str, machine: &MachineProfile) -> bool {
        self.key.0 == bench_spec && &self.key.1 == machine
    }

    /// Evaluate a batch: `jobs[i]` goes to worker `i mod effective`, and
    /// outcomes come back in submission order.
    ///
    /// Writes and reads are interleaved with a bounded number of
    /// outstanding jobs per worker ([`MAX_OUTSTANDING`]), so a batch of
    /// any size can never deadlock on full OS pipe buffers: the parent
    /// only blocks writing when a worker's queue is short, and only
    /// blocks reading results that worker is guaranteed to produce.
    pub(crate) fn evaluate(
        &mut self,
        jobs: &[EvalJob],
        effective: usize,
    ) -> Result<Vec<JobOutcome>, ShardError> {
        /// Cap on un-read jobs queued at one worker. Keeps worst-case
        /// bytes in flight per pipe (jobs out, results back) comfortably
        /// under the smallest common pipe buffer (64 KiB on Linux) even
        /// with multi-kilobyte config texts.
        const MAX_OUTSTANDING: usize = 8;

        let effective = effective.clamp(1, self.workers.len().max(1));
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        // Per-worker FIFO of submitted-but-unread job indices.
        let mut outstanding: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); effective];
        for (i, job) in jobs.iter().enumerate() {
            let w = i % effective;
            if outstanding[w].len() >= MAX_OUTSTANDING {
                let expected = outstanding[w].pop_front().expect("non-empty queue");
                outcomes[expected] = Some(self.read_result(w, expected)?);
            }
            self.workers[w]
                .send(&Message::Job { index: i as u64, job: job.clone() })
                .map_err(|e| ShardError { message: format!("worker {w}: {}", e.message) })?;
            outstanding[w].push_back(i);
        }
        for (w, queue) in outstanding.iter_mut().enumerate() {
            while let Some(expected) = queue.pop_front() {
                outcomes[expected] = Some(self.read_result(w, expected)?);
            }
        }
        Ok(outcomes.into_iter().map(|o| o.expect("every job answered")).collect())
    }

    /// Read the next RESULT from worker `w`, which must answer `expected`
    /// (workers reply strictly in arrival order). Every failure names the
    /// worker, so a dead process in a large pool is identifiable.
    fn read_result(&mut self, w: usize, expected: usize) -> Result<JobOutcome, ShardError> {
        let at = |e: ShardError| ShardError { message: format!("worker {w}: {}", e.message) };
        match self.workers[w].recv().map_err(at)? {
            Message::Result { index, outcome } if index == expected as u64 => Ok(outcome),
            Message::Result { index, .. } => Err(ShardError {
                message: format!("worker {w} answered job {index} when {expected} was expected"),
            }),
            other => Err(ShardError { message: format!("worker {w} answered JOB with {other:?}") }),
        }
    }
}

//! The shard front-end: a pool of `petal-shard` worker *processes*.
//!
//! The (crate-private) `ShardPool` spawns N workers with
//! [`std::process::Command`], speaks
//! the [`crate::wire`] protocol over their stdin/stdout pipes, assigns
//! jobs round-robin by submission index (`job i → worker i mod effective`)
//! and hands raw outcomes back to [`crate::EvalFarm`]'s submission-order
//! merge — the same merge the in-process paths use, so compile re-pricing
//! (and therefore the tuning result) is bit-identical at any shard count.
//!
//! Workers are stateless with respect to pricing: they report each trial's
//! charged compile events verbatim and never see the warm-kernel or
//! IR-cache sets. A pool is keyed by `(benchmark spec, machine)` and is
//! respawned when either changes; within one tuning run it persists across
//! generation batches.
//!
//! **Worker loss is survivable.** Because every job is a pure function of
//! its [`crate::EvalJob`], a worker that dies mid-batch (crash, kill, bad
//! deploy) just has its outstanding jobs re-queued to the surviving
//! workers; the outcome vector — and therefore the tuning result — is
//! unchanged. Only when *every* worker is gone does
//! [`evaluate`](crate::dispatch::Dispatch::evaluate) return a structured
//! [`ShardError`] naming the
//! last failed worker and the jobs still outstanding, so the caller can
//! respawn a pool and retry.

use crate::wire::{Message, WireEncoder, WireError, WIRE_VERSION};
use crate::{EvalJob, JobOutcome};
use petal_gpu::profile::MachineProfile;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// A dispatch failure: worker spawn/IO problems or protocol violations.
///
/// Carries structured context — which worker failed and which batch jobs
/// were still unanswered — so a retry layer (farmd's re-queue, or
/// [`crate::EvalFarm`]'s pool respawn) can recover mechanically instead
/// of parsing prose, and an operator reading the message can see exactly
/// what was lost.
#[derive(Debug)]
pub struct ShardError {
    /// Human-readable description.
    pub message: String,
    /// Index of the worker at fault (pool-local), when one is known.
    pub worker: Option<usize>,
    /// Submission indices of batch jobs still unanswered when the error
    /// was raised (empty outside `evaluate`). These — and only these —
    /// need re-dispatching.
    pub outstanding: Vec<usize>,
}

impl ShardError {
    /// New error with no worker/job context.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ShardError { message: message.into(), worker: None, outstanding: Vec::new() }
    }

    /// New error attributed to worker `w`.
    #[must_use]
    pub fn at_worker(w: usize, message: impl Into<String>) -> Self {
        ShardError { message: message.into(), worker: Some(w), outstanding: Vec::new() }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard farm error: {}", self.message)?;
        if let Some(w) = self.worker {
            write!(f, " (worker {w})")?;
        }
        if !self.outstanding.is_empty() {
            write!(f, "; {} jobs outstanding: {:?}", self.outstanding.len(), self.outstanding)?;
        }
        Ok(())
    }
}

impl std::error::Error for ShardError {}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError::new(e.to_string())
    }
}

fn io_err(context: &str, e: &std::io::Error) -> ShardError {
    ShardError::new(format!("{context}: {e}"))
}

/// Locate the `petal-shard` worker binary.
///
/// Resolution order:
/// 1. an explicit path from [`crate::FarmSettings::shard_bin`];
/// 2. the `PETAL_SHARD_BIN` environment variable;
/// 3. a `petal-shard` binary next to the current executable, or one
///    directory above it (covers `target/<profile>/deps/test-*` binaries
///    looking up to `target/<profile>/petal-shard`).
///
/// # Errors
/// When no candidate exists on disk — the message tells the operator to
/// `cargo build -p petal_shard` or set `PETAL_SHARD_BIN`.
pub fn resolve_shard_bin(explicit: Option<&Path>) -> Result<PathBuf, ShardError> {
    if let Some(p) = explicit {
        return Ok(p.to_path_buf());
    }
    if let Some(p) = std::env::var_os("PETAL_SHARD_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe_name = format!("petal-shard{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        for _ in 0..2 {
            if let Some(d) = dir {
                let candidate = d.join(&exe_name);
                if candidate.is_file() {
                    return Ok(candidate);
                }
                dir = d.parent();
            }
        }
    }
    Err(ShardError::new(
        "petal-shard binary not found; build it with \
         `cargo build -p petal_shard` or point PETAL_SHARD_BIN \
         (or FarmSettings::shard_bin) at it",
    ))
}

/// One spawned worker process with buffered pipes. The encoder and both
/// line buffers persist across jobs, so steady-state dispatch (one `JOB`
/// out, one `RESULT` line read back per trial) allocates nothing on the
/// parent side.
#[derive(Debug)]
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    enc: WireEncoder,
    line_out: String,
    line_in: String,
}

impl Worker {
    fn send(&mut self, msg: &Message) -> Result<(), ShardError> {
        self.enc.encode_into(msg, &mut self.line_out);
        self.line_out.push('\n');
        self.stdin
            .write_all(self.line_out.as_bytes())
            .map_err(|e| io_err("writing to shard worker", &e))
    }

    fn recv(&mut self) -> Result<Message, ShardError> {
        self.line_in.clear();
        let n = self
            .stdout
            .read_line(&mut self.line_in)
            .map_err(|e| io_err("reading from shard worker", &e))?;
        if n == 0 {
            return Err(ShardError::new(
                "shard worker closed its pipe early (it may have \
                 crashed; check its stderr above)",
            ));
        }
        Ok(Message::decode(self.line_in.trim_end_matches('\n'))?)
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Best-effort clean shutdown: DONE, close stdin, reap. A worker
        // that already died is reaped all the same; errors are ignored
        // because drop runs on both success and failure paths.
        let _ = self.send(&Message::Done);
        let _ = self.stdin.flush();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A pool of initialized `petal-shard` worker processes for one
/// `(benchmark, machine)` session. Workers that die stay dead (their
/// slot is `None`) until the pool itself is respawned.
#[derive(Debug)]
pub(crate) struct ShardPool {
    workers: Vec<Option<Worker>>,
    /// Session key: the benchmark spec and machine this pool was
    /// initialized with; a mismatch forces a respawn.
    key: (String, MachineProfile),
}

impl ShardPool {
    /// Spawn and handshake `count` workers for `(bench_spec, machine)`.
    pub(crate) fn spawn(
        bin: &Path,
        count: usize,
        bench_spec: &str,
        machine: &MachineProfile,
    ) -> Result<ShardPool, ShardError> {
        let init = Message::Init {
            version: WIRE_VERSION,
            bench_spec: bench_spec.to_owned(),
            machine: Box::new(machine.clone()),
        };
        let mut workers = Vec::with_capacity(count);
        for i in 0..count.max(1) {
            let mut child = Command::new(bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| {
                    io_err(&format!("spawning shard worker {i} ({})", bin.display()), &e)
                })?;
            let at = |msg: String| ShardError::at_worker(i, msg);
            let Some(stdin) = child.stdin.take() else {
                return Err(at("spawned without a piped stdin".to_owned()));
            };
            let Some(stdout) = child.stdout.take() else {
                return Err(at("spawned without a piped stdout".to_owned()));
            };
            let mut worker = Worker {
                child,
                stdin,
                stdout: BufReader::new(stdout),
                enc: WireEncoder::default(),
                line_out: String::new(),
                line_in: String::new(),
            };
            worker.send(&init).map_err(|e| at(e.message))?;
            worker.stdin.flush().map_err(|e| at(format!("flushing INIT: {e}")))?;
            match worker.recv().map_err(|e| at(e.message))? {
                Message::Ready { version } if version == WIRE_VERSION => {}
                Message::Ready { version } => {
                    return Err(at(format!(
                        "shard worker speaks wire version {version}, parent speaks {WIRE_VERSION}"
                    )));
                }
                other => return Err(at(format!("answered INIT with {other:?}"))),
            }
            workers.push(Some(worker));
        }
        Ok(ShardPool { workers, key: (bench_spec.to_owned(), machine.clone()) })
    }

    /// Workers still alive.
    fn survivors(&self) -> usize {
        self.workers.iter().filter(|w| w.is_some()).count()
    }

    /// Retire worker `w` after `cause`, re-queueing its unanswered jobs
    /// (`outstanding[w]`) onto the front of `todo` in submission order.
    /// The returned error is only raised if no workers survive.
    fn retire(
        &mut self,
        w: usize,
        cause: ShardError,
        outstanding: &mut [VecDeque<usize>],
        todo: &mut VecDeque<usize>,
    ) -> ShardError {
        self.workers[w] = None; // drop reaps the child
        while let Some(i) = outstanding[w].pop_back() {
            todo.push_front(i);
        }
        eprintln!(
            "petal-farm: shard worker {w} lost ({}); re-queueing its jobs to survivors",
            cause.message
        );
        ShardError { worker: Some(w), ..cause }
    }

    /// Read the next RESULT from worker `w`, which must answer `expected`
    /// (workers reply strictly in arrival order). Every failure names the
    /// worker, so a dead process in a large pool is identifiable.
    fn read_result(&mut self, w: usize, expected: usize) -> Result<JobOutcome, ShardError> {
        let at = |msg: String| ShardError::at_worker(w, msg);
        let worker = self.workers[w].as_mut().expect("reading from a live worker");
        match worker.recv().map_err(|e| at(e.message))? {
            Message::Result { index, outcome } if index == expected as u64 => Ok(outcome),
            Message::Result { index, .. } => {
                Err(at(format!("answered job {index} when {expected} was expected")))
            }
            other => Err(at(format!("answered JOB with {other:?}"))),
        }
    }
}

impl crate::dispatch::Dispatch for ShardPool {
    fn matches(&self, bench_spec: &str, machine: &MachineProfile) -> bool {
        self.key.0 == bench_spec && &self.key.1 == machine
    }

    /// Evaluate a batch: `jobs[i]` goes to worker `i mod effective`, and
    /// outcomes come back in submission order.
    ///
    /// Writes and reads are interleaved with a bounded number of
    /// outstanding jobs per worker (`MAX_OUTSTANDING`), so a batch of
    /// any size can never deadlock on full OS pipe buffers: the parent
    /// only blocks writing when a worker's queue is short, and only
    /// blocks reading results that worker is guaranteed to produce.
    ///
    /// A worker that dies mid-batch has its unanswered jobs re-queued to
    /// the survivors (jobs are pure, so the outcomes are identical);
    /// only the loss of *every* worker aborts the batch, with the
    /// unanswered submission indices in [`ShardError::outstanding`].
    fn evaluate(
        &mut self,
        jobs: &[EvalJob],
        effective: usize,
    ) -> Result<Vec<JobOutcome>, ShardError> {
        /// Cap on un-read jobs queued at one worker. Keeps worst-case
        /// bytes in flight per pipe (jobs out, results back) comfortably
        /// under the smallest common pipe buffer (64 KiB on Linux) even
        /// with multi-kilobyte config texts.
        const MAX_OUTSTANDING: usize = 8;

        let effective = effective.clamp(1, self.workers.len().max(1));
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        // Jobs not yet submitted, in submission order (re-queued jobs
        // return to the front so they are retried first).
        let mut todo: VecDeque<usize> = (0..jobs.len()).collect();
        // Per-worker FIFO of submitted-but-unread job indices.
        let mut outstanding: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.workers.len()];
        // The error that killed the last worker, for the all-dead report.
        let mut last_loss: Option<ShardError> = None;

        let all_dead = |pool: &ShardPool,
                        todo: &VecDeque<usize>,
                        outcomes: &[Option<JobOutcome>],
                        last: &Option<ShardError>| {
            let mut unanswered: Vec<usize> = todo.iter().copied().collect();
            unanswered
                .extend(outcomes.iter().enumerate().filter(|(_, o)| o.is_none()).map(|(i, _)| i));
            unanswered.sort_unstable();
            unanswered.dedup();
            debug_assert_eq!(pool.survivors(), 0);
            ShardError {
                message: format!(
                    "every shard worker is gone (last loss: {})",
                    last.as_ref().map_or("unknown", |e| e.message.as_str())
                ),
                worker: last.as_ref().and_then(|e| e.worker),
                outstanding: unanswered,
            }
        };

        loop {
            // Submission phase: place pending jobs on live workers with
            // queue room. The healthy-path placement is the historical
            // `i mod effective` round-robin; a dead target falls through
            // to the next live worker (deterministically, by scanning
            // forward from the target).
            'submit: while let Some(&i) = todo.front() {
                let target = i % effective;
                let Some(w) = (0..self.workers.len())
                    .map(|k| (target + k) % self.workers.len())
                    .find(|&w| self.workers[w].is_some() && outstanding[w].len() < MAX_OUTSTANDING)
                else {
                    break 'submit; // every live worker is full (or none live)
                };
                todo.pop_front();
                let msg = Message::Job { index: i as u64, job: jobs[i].clone() };
                match self.workers[w].as_mut().expect("live worker").send(&msg) {
                    Ok(()) => outstanding[w].push_back(i),
                    Err(e) => {
                        // The job we failed to write is outstanding too.
                        todo.push_front(i);
                        last_loss = Some(self.retire(w, e, &mut outstanding, &mut todo));
                    }
                }
            }

            // Completion check: everything answered?
            if outcomes.iter().all(Option::is_some) {
                return Ok(outcomes.into_iter().map(|o| o.expect("checked above")).collect());
            }

            // Drain phase: read one result from the live worker with the
            // deepest queue (keeps every pipeline moving). If no live
            // worker holds outstanding jobs, either every worker died or
            // the submit phase is stuck with zero survivors.
            let Some(w) = (0..self.workers.len())
                .filter(|&w| self.workers[w].is_some() && !outstanding[w].is_empty())
                .max_by_key(|&w| outstanding[w].len())
            else {
                return Err(all_dead(self, &todo, &outcomes, &last_loss));
            };
            let expected = outstanding[w].front().copied().expect("non-empty queue");
            match self.read_result(w, expected) {
                Ok(outcome) => {
                    outstanding[w].pop_front();
                    outcomes[expected] = Some(outcome);
                }
                Err(e) => {
                    last_loss = Some(self.retire(w, e, &mut outstanding, &mut todo));
                    if self.survivors() == 0 {
                        return Err(all_dead(self, &todo, &outcomes, &last_loss));
                    }
                }
            }
        }
    }
}

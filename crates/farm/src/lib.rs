//! # petal-farm — the multi-threaded candidate-evaluation farm
//!
//! The autotuner spends essentially all of its wall time evaluating
//! candidate configurations, and every evaluation is independent: it builds
//! its own [`petal_core::World`], lowers its own plan through its own
//! [`Executor`] (with a private simulated device), and reports a virtual
//! makespan. This crate turns that independence into wall-clock speed by
//! running batches of trials on a pool of real OS threads — made possible
//! by the `Send` evaluation state across `petal-rt`/`petal-core`/
//! `petal-apps` (task closures, native steps and instance checks all carry
//! `Send` bounds).
//!
//! ## Determinism contract
//!
//! The farm guarantees **bit-identical results at any thread count**:
//!
//! * Each [`EvalJob`] owns an independent `Executor`/`Engine`/`World`
//!   seeded from the job's `engine_seed` (derived by the tuner from
//!   `(tuner_seed, round, trial_index)` via [`job_seed`]); nothing about a
//!   trial depends on which worker runs it or when.
//! * Jobs are assigned to workers by a deterministic round-robin —
//!   `job i → worker i mod min(threads, batch len)` — and results are
//!   merged back in **submission order**.
//! * Virtual compile time is *not* taken from each trial's private device
//!   (that would make totals depend on sharing). Instead every trial logs
//!   its charged compiles ([`petal_gpu::compile::CompileEvent`]) and the
//!   farm re-prices them in submission order against a shared model of the
//!   tuning process: a *warm-kernel* set when one long-lived process is
//!   modeled, or a persistent *IR-cache* set when each trial restarts the
//!   process (§5.4). The pricing is a pure fold over the merged order, so
//!   it is identical at 1 and N threads.
//!
//! At `threads = 1` the farm runs jobs inline on the calling thread through
//! exactly the same code path, so the sequential result is the parallel
//! result by construction.
//!
//! ## Process sharding
//!
//! The same contract extends across *process* boundaries:
//! [`FarmSettings::shards`]` > 0` spawns that many `petal-shard` worker
//! processes (see [`shard`]) and ships jobs to them over stdin/stdout
//! pipes using the hand-rolled [`wire`] format. Workers return raw,
//! un-priced outcomes; compile re-pricing still happens in the parent's
//! submission-order merge, so `shards ∈ {0, 1, 2, 4, …}` all produce the
//! byte-for-byte identical results the in-process farm produces.
//!
//! ## Remote pools
//!
//! The same wire format travels over sockets: point
//! [`FarmSettings::endpoint`] (or `PETAL_FARMD`) at a `petal-farmd`
//! dispatcher and the farm dispatches batches through a [`remote`] client
//! session instead of local pipes. The dispatcher fans jobs out to an
//! elastic fleet of registered workers, health-checks them by heartbeat,
//! and re-queues a lost worker's jobs to survivors — none of which the
//! farm can observe, because raw outcomes still come back keyed by
//! submission index and all pricing happens in the parent's merge. Every
//! backend hangs off the [`dispatch::Dispatch`] seam, so in-process,
//! sharded and remote runs produce byte-for-byte identical results.

#![warn(missing_docs)]

pub mod dispatch;
pub mod net;
pub mod remote;
pub mod shard;
pub mod wire;

use dispatch::Dispatch;
use petal_apps::{Benchmark, Instance};
use petal_core::executor::Executor;
use petal_core::Config;
use petal_gpu::profile::MachineProfile;
use shard::ShardPool;
use std::collections::HashSet;
use std::path::PathBuf;

/// Knobs controlling the evaluation farm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmSettings {
    /// Worker threads evaluating candidates. `1` runs every job inline on
    /// the calling thread; `0` means "one per available hardware thread"
    /// (resolved at farm construction). Results are identical at any value.
    pub threads: usize,
    /// Worker *processes* evaluating candidates. `0` (the default) keeps
    /// evaluation in-process and `threads` governs parallelism; `N > 0`
    /// spawns `N` `petal-shard` workers instead and `threads` is unused.
    /// Results are identical at any value, including `0` (the farm's
    /// determinism contract).
    pub shards: usize,
    /// Explicit path to the `petal-shard` worker binary. `None` resolves
    /// via the `PETAL_SHARD_BIN` environment variable, then a `petal-shard`
    /// next to the current executable (see [`shard::resolve_shard_bin`]).
    pub shard_bin: Option<PathBuf>,
    /// Endpoint of a `petal-farmd` dispatcher (`host:port` or
    /// `unix:<path>`). When set it wins over `shards`/`threads`:
    /// evaluation batches are shipped to the dispatcher's worker fleet
    /// over a [`remote::RemotePool`] session. Results are still identical
    /// to every local mode (the farm's determinism contract).
    pub endpoint: Option<String>,
}

impl FarmSettings {
    /// Evaluate candidates on the calling thread (the default).
    #[must_use]
    pub fn sequential() -> Self {
        FarmSettings { threads: 1, shards: 0, shard_bin: None, endpoint: None }
    }

    /// One worker per available hardware thread.
    #[must_use]
    pub fn host_parallel() -> Self {
        FarmSettings { threads: 0, ..Self::sequential() }
    }

    /// Evaluate candidates on `n` `petal-shard` worker processes.
    /// `n = 0` follows the repo-wide convention — stay in-process
    /// (identical to [`Self::sequential`]), never a one-worker shard
    /// pool — so `sharded(shards_flag())` composes safely.
    #[must_use]
    pub fn sharded(n: usize) -> Self {
        FarmSettings { shards: n, ..Self::sequential() }
    }

    /// Evaluate candidates against the `petal-farmd` dispatcher at
    /// `endpoint` (`host:port` or `unix:<path>`).
    #[must_use]
    pub fn remote(endpoint: impl Into<String>) -> Self {
        FarmSettings { endpoint: Some(endpoint.into()), ..Self::sequential() }
    }

    /// The worker count this setting resolves to on the current host.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

impl Default for FarmSettings {
    fn default() -> Self {
        Self::sequential()
    }
}

/// One candidate evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalJob {
    /// The configuration to evaluate.
    pub config: Config,
    /// Input size (elements) to evaluate at; the benchmark is resized when
    /// this differs from its full size.
    pub size: u64,
    /// Seed for the trial's private scheduler (see [`job_seed`]).
    pub engine_seed: u64,
}

/// Outcome of one candidate evaluation, merged in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Virtual makespan at the job's size, when the trial executed and
    /// passed the benchmark's correctness/accuracy check.
    pub fitness: Option<f64>,
    /// The executor ran to completion (a *trial* in Fig. 8 terms, even if
    /// the check then rejected the output).
    pub ran: bool,
    /// Virtual seconds of runtime kernel compilation charged to this trial
    /// after re-pricing against the shared process/IR-cache model.
    pub compile_secs: f64,
    /// Total virtual cost of the trial: makespan plus `compile_secs`.
    pub trial_secs: f64,
    /// Worker that evaluated the job (`index mod effective threads`).
    pub thread: usize,
}

/// Raw per-job outcome produced on a worker (thread *or* shard process),
/// before the submission-order merge prices its compiles. This is what
/// travels back over the shard wire: pricing state never leaves the
/// parent.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Virtual makespan when the trial executed and passed its check.
    pub fitness: Option<f64>,
    /// The executor ran to completion (even if the check then failed).
    pub ran: bool,
    /// Virtual makespan of the run (0 when it never ran).
    pub makespan: f64,
    /// `(source_hash, frontend_secs, jit_secs)` per charged compile, in
    /// charge order, at the trial's private full price — the merge decides
    /// what each one actually costs under the shared process/IR-cache
    /// model.
    pub compiles: Vec<(u64, f64, f64)>,
}

impl JobOutcome {
    fn invalid() -> Self {
        JobOutcome { fitness: None, ran: false, makespan: 0.0, compiles: Vec::new() }
    }
}

/// Derive the deterministic scheduler seed for one trial from the tuner
/// seed and the trial's coordinates (SplitMix64 finalization).
///
/// ```
/// use petal_farm::job_seed;
/// // Deterministic for fixed coordinates…
/// assert_eq!(job_seed(1, 2, 3), job_seed(1, 2, 3));
/// // …and distinct across neighbouring trial coordinates.
/// assert_ne!(job_seed(1, 2, 3), job_seed(1, 2, 4));
/// assert_ne!(job_seed(1, 2, 3), job_seed(1, 3, 3));
/// ```
#[must_use]
pub fn job_seed(tuner_seed: u64, round: u64, trial_index: u64) -> u64 {
    let mut z = tuner_seed
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(trial_index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The evaluation farm: a worker pool plus the shared compile-cost model
/// that persists across batches of one tuning run.
#[derive(Debug)]
pub struct EvalFarm {
    threads: usize,
    shards: usize,
    shard_bin: Option<PathBuf>,
    endpoint: Option<String>,
    /// Lazily built dispatch backend (shard or remote mode), kept alive
    /// across batches of one tuning run.
    pool: Option<Box<dyn Dispatch>>,
    model_process_restarts: bool,
    ir_cache_enabled: bool,
    /// Kernels compiled by the modeled long-lived tuning process
    /// (`model_process_restarts == false`): later compiles are free.
    warm: HashSet<u64>,
    /// The modeled on-disk IR cache (`model_process_restarts == true`):
    /// later compiles of a cached source skip the frontend (§5.4).
    ir: HashSet<u64>,
    per_thread_trials: Vec<usize>,
}

impl EvalFarm {
    /// New farm. `model_process_restarts` mirrors
    /// `TunerSettings::model_process_restarts`: whether every trial pays a
    /// fresh process launch (re-JIT via the IR cache) or shares one warm
    /// process.
    #[must_use]
    pub fn new(settings: &FarmSettings, model_process_restarts: bool) -> Self {
        let threads = settings.resolved_threads().max(1);
        let shards = settings.shards;
        let workers = if settings.endpoint.is_some() {
            1
        } else if shards > 0 {
            shards
        } else {
            threads
        };
        EvalFarm {
            threads,
            shards,
            shard_bin: settings.shard_bin.clone(),
            endpoint: settings.endpoint.clone(),
            pool: None,
            model_process_restarts,
            ir_cache_enabled: true,
            warm: HashSet::new(),
            ir: HashSet::new(),
            per_thread_trials: vec![0; workers],
        }
    }

    /// Enable or disable the modeled persistent IR cache (§5.4 ablation).
    pub fn set_ir_cache(&mut self, enabled: bool) -> &mut Self {
        self.ir_cache_enabled = enabled;
        self
    }

    /// Worker threads in the in-process pool (meaningful when
    /// [`Self::shards`] is 0).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker *processes* in the shard pool; 0 means in-process evaluation.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Workers of whichever kind this farm uses (shard processes when
    /// sharded, threads otherwise). A remote pool counts as **one**
    /// worker: the dispatcher's fleet size is elastic and invisible, so
    /// the deterministic accounting treats the whole farm as a single
    /// submission-ordered backend.
    fn workers(&self) -> usize {
        if self.endpoint.is_some() {
            1
        } else if self.shards > 0 {
            self.shards
        } else {
            self.threads
        }
    }

    /// Trials evaluated by each worker so far (deterministic: jobs are
    /// round-robin assigned in submission order). One slot per shard
    /// process when sharded, per thread otherwise.
    #[must_use]
    pub fn per_thread_trials(&self) -> &[usize] {
        &self.per_thread_trials
    }

    /// Forget all cached compile state and per-thread accounting (start of
    /// a fresh tuning run).
    pub fn reset(&mut self) {
        self.warm.clear();
        self.ir.clear();
        self.per_thread_trials = vec![0; self.workers()];
    }

    /// Evaluate a batch of jobs against `bench` on `machine`, returning
    /// results in submission order.
    ///
    /// Each job runs on its own `Executor` with a fresh simulated device;
    /// `jobs[i]` runs on worker `i mod workers` (threads in-process, or
    /// `petal-shard` processes when [`FarmSettings::shards`] is set). The
    /// batch is a barrier: all jobs complete before any result is
    /// returned.
    ///
    /// ```
    /// use petal_apps::blackscholes::BlackScholes;
    /// use petal_apps::Benchmark;
    /// use petal_farm::{job_seed, EvalFarm, EvalJob, FarmSettings};
    /// use petal_gpu::profile::MachineProfile;
    ///
    /// let bench = BlackScholes::new(1_000);
    /// let machine = MachineProfile::laptop();
    /// let config = bench.program(&machine).default_config(&machine);
    /// let jobs: Vec<EvalJob> = (0..3)
    ///     .map(|trial| EvalJob {
    ///         config: config.clone(),
    ///         size: bench.input_size(),
    ///         engine_seed: job_seed(42, 0, trial),
    ///     })
    ///     .collect();
    /// let mut farm = EvalFarm::new(&FarmSettings::sequential(), false);
    /// let results = farm.evaluate(&bench, &machine, &jobs);
    /// assert_eq!(results.len(), 3);
    /// assert!(results.iter().all(|r| r.ran && r.fitness.is_some()));
    /// // Identical jobs are deterministic: same fitness every time.
    /// assert_eq!(results[0].fitness, results[1].fitness);
    /// ```
    ///
    /// # Panics
    /// In shard mode, when the worker binary cannot be found or a worker
    /// violates the wire protocol (the error names the worker and cause);
    /// in thread mode, when a worker thread panics.
    pub fn evaluate(
        &mut self,
        bench: &dyn Benchmark,
        machine: &MachineProfile,
        jobs: &[EvalJob],
    ) -> Vec<EvalResult> {
        let effective = self.workers().min(jobs.len()).max(1);
        let raw: Vec<JobOutcome> = if self.endpoint.is_some() || self.shards > 0 {
            self.evaluate_dispatched(bench, machine, jobs, effective)
        } else if effective == 1 {
            jobs.iter().map(|j| evaluate_job(bench, machine, j)).collect()
        } else {
            let mut slots: Vec<Option<JobOutcome>> = Vec::new();
            slots.resize_with(jobs.len(), || None);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..effective)
                    .map(|t| {
                        scope.spawn(move || {
                            jobs.iter()
                                .enumerate()
                                .skip(t)
                                .step_by(effective)
                                .map(|(i, j)| (i, evaluate_job(bench, machine, j)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, out) in h.join().expect("farm worker panicked") {
                        slots[i] = Some(out);
                    }
                }
            });
            slots.into_iter().map(|s| s.expect("every job evaluated")).collect()
        };

        // Submission-order merge: deterministic accounting and compile
        // pricing regardless of which worker finished first.
        raw.into_iter()
            .enumerate()
            .map(|(i, out)| {
                let thread = i % effective;
                if out.ran {
                    self.per_thread_trials[thread] += 1;
                }
                let compile_secs: f64 = out
                    .compiles
                    .iter()
                    .map(|&(hash, frontend, jit)| self.price_compile(hash, frontend, jit))
                    .sum();
                EvalResult {
                    fitness: out.fitness,
                    ran: out.ran,
                    compile_secs,
                    trial_secs: out.makespan + compile_secs,
                    thread,
                }
            })
            .collect()
    }

    /// Build the dispatch backend for the current settings and
    /// `(benchmark, machine)` session: a [`remote::RemotePool`] when an
    /// endpoint is configured, a [`ShardPool`] otherwise.
    fn build_pool(
        &self,
        spec: &str,
        machine: &MachineProfile,
    ) -> Result<Box<dyn Dispatch>, shard::ShardError> {
        if let Some(endpoint) = &self.endpoint {
            Ok(Box::new(remote::RemotePool::connect(endpoint, spec, machine)?))
        } else {
            let bin = shard::resolve_shard_bin(self.shard_bin.as_deref())?;
            Ok(Box::new(ShardPool::spawn(&bin, self.shards, spec, machine)?))
        }
    }

    /// Dispatch one batch to the out-of-process backend (shard pool or
    /// farmd session), (re)building it when the `(benchmark, machine)`
    /// session changed.
    ///
    /// Backends recover from partial worker loss internally; an `Err`
    /// here means the whole backend is gone (every shard dead, or the
    /// dispatcher connection lost). Because jobs are pure and all pricing
    /// happens in the caller's submission-order merge, the recovery is
    /// simply: build a fresh backend and re-run the *whole* batch once —
    /// bit-identical to a run that never failed. A second total loss is
    /// a real outage and panics with the structured error.
    fn evaluate_dispatched(
        &mut self,
        bench: &dyn Benchmark,
        machine: &MachineProfile,
        jobs: &[EvalJob],
        effective: usize,
    ) -> Vec<JobOutcome> {
        let spec = bench.spec();
        if !self.pool.as_ref().is_some_and(|p| p.matches(&spec, machine)) {
            self.pool = None; // drop (and reap/close) any stale backend first
            self.pool = Some(self.build_pool(&spec, machine).unwrap_or_else(|e| panic!("{e}")));
        }
        let first = self.pool.as_mut().expect("pool built above").evaluate(jobs, effective);
        match first {
            Ok(outcomes) => outcomes,
            Err(lost) => {
                eprintln!("petal-farm: evaluation backend lost ({lost}); respawning and retrying the batch");
                self.pool = None;
                self.pool = Some(self.build_pool(&spec, machine).unwrap_or_else(|e| panic!("{e}")));
                self.pool
                    .as_mut()
                    .expect("pool rebuilt above")
                    .evaluate(jobs, effective)
                    .unwrap_or_else(|e| panic!("evaluation backend lost twice (giving up): {e}"))
            }
        }
    }

    /// Price one charged compile against the shared model, updating it.
    fn price_compile(&mut self, hash: u64, frontend: f64, jit: f64) -> f64 {
        if self.model_process_restarts {
            // Every trial launches a fresh process: nothing stays warm, but
            // the on-disk IR cache (when enabled) skips the frontend after
            // the first compile of a source (§5.4).
            if self.ir_cache_enabled && !self.ir.insert(hash) {
                jit
            } else {
                frontend + jit
            }
        } else {
            // One long-lived tuning process: the first compile of a source
            // pays full price, every later trial finds it warm.
            if self.warm.insert(hash) {
                frontend + jit
            } else {
                0.0
            }
        }
    }
}

/// Run one trial: resize, instantiate, execute, check. Everything here is
/// private to the job, so this function is freely parallel — it is the
/// unit of work a farm thread runs in-process and a `petal-shard` worker
/// runs across a pipe.
#[must_use]
pub fn evaluate_job(bench: &dyn Benchmark, machine: &MachineProfile, job: &EvalJob) -> JobOutcome {
    let sized: Box<dyn Benchmark>;
    let b: &dyn Benchmark = if job.size == bench.input_size() {
        bench
    } else {
        match bench.resized(job.size) {
            Some(s) => {
                sized = s;
                &*sized
            }
            None => return JobOutcome::invalid(),
        }
    };
    let Instance { mut world, plan, check } = b.instantiate(machine, &job.config);
    let mut ex = Executor::new(machine);
    ex.set_seed(job.engine_seed);
    let Ok(report) = ex.run(plan, &mut world) else {
        return JobOutcome::invalid();
    };
    let fitness = check(&world).ok().map(|()| report.virtual_time_secs());
    JobOutcome {
        fitness,
        ran: true,
        makespan: report.virtual_time_secs(),
        compiles: report
            .compile_events
            .iter()
            .map(|e| (e.source_hash, e.frontend_secs, e.jit_secs))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_apps::blackscholes::BlackScholes;
    use petal_apps::convolution::{ConvMapping, SeparableConvolution};

    fn jobs_for(bench: &dyn Benchmark, machine: &MachineProfile, n: usize) -> Vec<EvalJob> {
        let cfg = bench.program(machine).default_config(machine);
        (0..n)
            .map(|i| EvalJob {
                config: cfg.clone(),
                size: bench.input_size(),
                engine_seed: job_seed(7, 0, i as u64),
            })
            .collect()
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let bench = BlackScholes::new(20_000);
        let machine = MachineProfile::desktop();
        let jobs = jobs_for(&bench, &machine, 7);
        let run = |threads: usize| {
            let mut farm =
                EvalFarm::new(&FarmSettings { threads, ..FarmSettings::sequential() }, true);
            farm.evaluate(&bench, &machine, &jobs)
        };
        let one = run(1);
        for threads in [2, 3, 8] {
            let many = run(threads);
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.fitness, b.fitness, "threads={threads}");
                assert_eq!(a.compile_secs, b.compile_secs, "threads={threads}");
                assert_eq!(a.trial_secs, b.trial_secs, "threads={threads}");
            }
        }
    }

    #[test]
    fn per_thread_accounting_is_round_robin_and_sums_to_trials() {
        let bench = BlackScholes::new(10_000);
        let machine = MachineProfile::laptop();
        let jobs = jobs_for(&bench, &machine, 6);
        let mut farm =
            EvalFarm::new(&FarmSettings { threads: 4, ..FarmSettings::sequential() }, false);
        let results = farm.evaluate(&bench, &machine, &jobs);
        assert!(results.iter().all(|r| r.ran));
        assert_eq!(farm.per_thread_trials(), &[2, 2, 1, 1]);
        let by_thread: Vec<usize> = results.iter().map(|r| r.thread).collect();
        assert_eq!(by_thread, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn warm_process_model_charges_each_kernel_once() {
        // An all-OpenCL convolution config compiles kernels; without
        // process restarts only the first trial pays for them.
        let bench = SeparableConvolution::new(96, 5);
        let machine = MachineProfile::desktop();
        let cfg = bench.mapping_config(&machine, ConvMapping::SeparableNoLocal);
        let jobs: Vec<EvalJob> = (0..3)
            .map(|i| EvalJob {
                config: cfg.clone(),
                size: bench.input_size(),
                engine_seed: job_seed(1, 0, i),
            })
            .collect();
        let mut farm = EvalFarm::new(&FarmSettings::sequential(), false);
        let r = farm.evaluate(&bench, &machine, &jobs);
        assert!(r[0].compile_secs > 0.0, "first trial compiles");
        assert_eq!(r[1].compile_secs, 0.0, "kernels are warm");
        assert_eq!(r[2].compile_secs, 0.0);
    }

    #[test]
    fn restart_model_pays_jit_on_ir_hits_and_full_without_cache() {
        let bench = SeparableConvolution::new(96, 5);
        let machine = MachineProfile::desktop();
        let gpu = machine.gpu.clone().expect("desktop has a gpu");
        let cfg = bench.mapping_config(&machine, ConvMapping::SeparableNoLocal);
        let jobs: Vec<EvalJob> = (0..2)
            .map(|i| EvalJob {
                config: cfg.clone(),
                size: bench.input_size(),
                engine_seed: job_seed(1, 0, i),
            })
            .collect();

        let mut farm = EvalFarm::new(&FarmSettings::sequential(), true);
        let r = farm.evaluate(&bench, &machine, &jobs);
        // Two kernels (rows + columns): first trial pays full price.
        let full = 2.0 * (gpu.compile_frontend + gpu.compile_jit);
        let jit_only = 2.0 * gpu.compile_jit;
        assert!((r[0].compile_secs - full).abs() < 1e-9, "{}", r[0].compile_secs);
        assert!((r[1].compile_secs - jit_only).abs() < 1e-9, "{}", r[1].compile_secs);

        let mut no_ir = EvalFarm::new(&FarmSettings::sequential(), true);
        no_ir.set_ir_cache(false);
        let r = no_ir.evaluate(&bench, &machine, &jobs);
        assert!((r[1].compile_secs - full).abs() < 1e-9, "no IR cache: full price again");
    }

    #[test]
    fn failing_sizes_are_reported_not_run() {
        let bench = SeparableConvolution::new(96, 5);
        let machine = MachineProfile::desktop();
        let cfg = bench.program(&machine).default_config(&machine);
        // Too small to resize (n must exceed 3k).
        let jobs = vec![EvalJob { config: cfg, size: 4, engine_seed: 1 }];
        let mut farm = EvalFarm::new(&FarmSettings::sequential(), false);
        let r = farm.evaluate(&bench, &machine, &jobs);
        assert!(!r[0].ran);
        assert_eq!(r[0].fitness, None);
    }

    #[test]
    fn job_seed_is_deterministic_and_spreads() {
        assert_eq!(job_seed(1, 2, 3), job_seed(1, 2, 3));
        let mut seen = HashSet::new();
        for round in 0..8u64 {
            for trial in 0..64u64 {
                seen.insert(job_seed(0xa11ce, round, trial));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "no collisions over a tuning run's grid");
    }
}

//! Microbenches over the engine's scheduling hot loop, one per stress
//! shape the incremental scheduler optimizes:
//!
//! * `wide_deque` — one long run of CPU roots seeded into a single deque
//!   (stresses min-arrival maintenance and eligible pops);
//! * `gpu_heavy` — long dependent GPU chains with copy-out-style requeues
//!   (stresses the manager FIFO path);
//! * `steal_heavy` — many tiny tasks rooted on worker 0 of a wide machine
//!   (stresses the steal candidate selection and victim scans).
//!
//! Each shape runs under both [`SchedPolicy`] variants so a plain
//! `cargo bench -p petal_rt` prints the incremental-vs-naive comparison;
//! the `PETAL_SMOKE=1` CI pass shrinks sizes and samples to an
//! executes-at-all check.

use criterion::{criterion_group, criterion_main, Criterion};
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, Engine, GpuOutcome, GpuTaskClass, SchedPolicy};

/// Mirror of `petal_apps::workload::smoke_mode` (petal_rt cannot depend
/// on petal_apps without a cycle).
fn smoke() -> bool {
    std::env::var_os("PETAL_SMOKE").is_some_and(|v| v != "0")
}

fn size(full: usize, smoke_size: usize) -> usize {
    if smoke() {
        smoke_size
    } else {
        full
    }
}

fn samples() -> usize {
    if smoke() {
        2
    } else {
        10
    }
}

fn policies() -> [(&'static str, SchedPolicy); 2] {
    [("incremental", SchedPolicy::Incremental), ("naive", SchedPolicy::NaiveScan)]
}

fn wide_deque(c: &mut Criterion) {
    let n = size(768, 48);
    let machine = MachineProfile::desktop();
    let mut group = c.benchmark_group("engine_step/wide_deque");
    group.sample_size(samples());
    for (label, policy) in policies() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut e: Engine<u64> = Engine::with_workers(&machine, 4, 7);
                e.set_sched_policy(policy);
                for i in 0..n {
                    e.add_cpu_task(move |s: &mut u64, _| {
                        *s = s.wrapping_add(i as u64);
                        Charge::Work(CpuWork::new(1.0e5 * (i % 13 + 1) as f64, 0.0))
                    });
                }
                let mut s = 0u64;
                e.run(&mut s).expect("runs").sched_steps
            });
        });
    }
    group.finish();
}

fn gpu_heavy(c: &mut Criterion) {
    let chains = size(96, 12);
    let machine = MachineProfile::desktop();
    let mut group = c.benchmark_group("engine_step/gpu_heavy");
    group.sample_size(samples());
    for (label, policy) in policies() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut e: Engine<u64> = Engine::with_workers(&machine, 2, 11);
                e.set_sched_policy(policy);
                for chain in 0..chains {
                    let mut prev = None;
                    for link in 0..4 {
                        let requeue = link == 3 && chain % 3 == 0;
                        let mut polled = false;
                        let id = e.add_gpu_task(GpuTaskClass::Execute, move |s: &mut u64, ctx| {
                            if requeue && !polled {
                                polled = true;
                                return Ok(GpuOutcome::Requeue { ready_at: ctx.now + 2.0e-6 });
                            }
                            *s = s.wrapping_add((chain * 7 + link) as u64);
                            Ok(GpuOutcome::Done { manager_secs: 1.0e-6 })
                        });
                        if let Some(p) = prev {
                            e.add_dependency(id, p).expect("fresh task");
                        }
                        prev = Some(id);
                    }
                }
                let mut s = 0u64;
                e.run(&mut s).expect("runs").sched_steps
            });
        });
    }
    group.finish();
}

fn steal_heavy(c: &mut Criterion) {
    let n = size(512, 48);
    let machine = MachineProfile::server();
    let mut group = c.benchmark_group("engine_step/steal_heavy");
    group.sample_size(samples());
    for (label, policy) in policies() {
        group.bench_function(label, |b| {
            b.iter(|| {
                // Every root lands on worker 0 of a wide machine with tiny
                // charges: almost every other worker action is a steal.
                let mut e: Engine<u64> = Engine::with_workers(&machine, 8, 23);
                e.set_sched_policy(policy);
                for i in 0..n {
                    e.add_cpu_task(move |s: &mut u64, _| {
                        *s = s.wrapping_mul(31).wrapping_add(i as u64);
                        Charge::Secs(5.0e-8)
                    });
                }
                let mut s = 0u64;
                e.run(&mut s).expect("runs").steal_attempts
            });
        });
    }
    group.finish();
}

criterion_group!(benches, wide_deque, gpu_heavy, steal_heavy);
criterion_main!(benches);

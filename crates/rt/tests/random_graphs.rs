//! Property tests over the scheduler: arbitrary random task DAGs must run
//! to completion, execute every task exactly once, respect dependency
//! order, and produce causally consistent virtual times.

use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, Engine};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Execution log shared by all tasks: (task index, completion order). Task
/// closures are `Send` (the farm moves whole engines across threads), so
/// the log is `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`.
type Log = Arc<Mutex<Vec<usize>>>;

#[derive(Debug, Clone)]
struct GraphSpec {
    /// Per task: indices of earlier tasks it depends on.
    deps: Vec<Vec<usize>>,
    /// Per task: work in flops.
    work: Vec<u32>,
    machine_idx: usize,
    workers: usize,
    seed: u64,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..40).prop_flat_map(|n| {
        let deps = proptest::collection::vec(proptest::collection::vec(0usize..n.max(1), 0..4), n);
        let work = proptest::collection::vec(1u32..1_000_000, n);
        (deps, work, 0usize..3, 1usize..6, any::<u64>()).prop_map(
            move |(raw_deps, work, machine_idx, workers, seed)| {
                // Only allow edges to strictly earlier tasks: guarantees a DAG.
                let deps = raw_deps
                    .into_iter()
                    .enumerate()
                    .map(|(i, ds)| {
                        let mut ds: Vec<usize> = ds.into_iter().filter(|&d| d < i).collect();
                        ds.sort_unstable();
                        ds.dedup();
                        ds
                    })
                    .collect();
                GraphSpec { deps, work, machine_idx, workers, seed }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_complete_in_dependency_order(spec in graph_strategy()) {
        let machines = MachineProfile::all();
        let machine = &machines[spec.machine_idx];
        let n = spec.deps.len();
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let mut engine: Engine<()> = Engine::with_workers(machine, spec.workers, spec.seed);
        let mut ids = Vec::with_capacity(n);
        for (i, flops) in spec.work.iter().enumerate() {
            let log = Arc::clone(&log);
            let flops = f64::from(*flops);
            let id = engine.add_cpu_task(move |(), _| {
                log.lock().expect("log lock").push(i);
                Charge::Work(CpuWork::new(flops, flops / 2.0))
            });
            ids.push(id);
        }
        for (i, ds) in spec.deps.iter().enumerate() {
            for &d in ds {
                engine.add_dependency(ids[i], ids[d]).expect("valid dependency");
            }
        }
        let report = engine.run(&mut ()).expect("acyclic graphs never deadlock");

        // Every task ran exactly once.
        let order = log.lock().expect("log lock");
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &t in order.iter() {
            prop_assert!(!seen[t], "task {} ran twice", t);
            seen[t] = true;
        }
        // Dependencies execute before dependents.
        let mut position = vec![0usize; n];
        for (pos, &t) in order.iter().enumerate() {
            position[t] = pos;
        }
        for (i, ds) in spec.deps.iter().enumerate() {
            for &d in ds {
                prop_assert!(position[d] < position[i], "dep {} must precede {}", d, i);
            }
        }
        // Virtual-time sanity: makespan at least the critical path, at most
        // the serial sum (both in compute terms).
        let secs: Vec<f64> = spec
            .work
            .iter()
            .map(|w| CpuWork::new(f64::from(*w), f64::from(*w) / 2.0).secs_on(&machine.cpu))
            .collect();
        let mut path = vec![0.0f64; n];
        for i in 0..n {
            let longest_dep =
                spec.deps[i].iter().map(|&d| path[d]).fold(0.0f64, f64::max);
            path[i] = longest_dep + secs[i];
        }
        let critical: f64 = path.iter().fold(0.0f64, |a, &b| a.max(b));
        let serial: f64 = secs.iter().sum();
        prop_assert!(report.makespan >= critical * 0.999,
            "makespan {} below critical path {}", report.makespan, critical);
        // Allow scheduling overhead (steal latency) on top of serial.
        prop_assert!(report.makespan <= serial * 1.5 + 1e-3,
            "makespan {} far above serial bound {}", report.makespan, serial);
        prop_assert_eq!(report.cpu_tasks, n);
    }

    #[test]
    fn same_seed_same_everything(spec in graph_strategy()) {
        let machines = MachineProfile::all();
        let machine = &machines[spec.machine_idx];
        let run = || {
            let mut engine: Engine<u64> =
                Engine::with_workers(machine, spec.workers, spec.seed);
            let mut ids = Vec::new();
            for flops in &spec.work {
                let flops = f64::from(*flops);
                ids.push(engine.add_cpu_task(move |s: &mut u64, _| {
                    *s = s.wrapping_mul(31).wrapping_add(1);
                    Charge::Work(CpuWork::new(flops, 0.0))
                }));
            }
            for (i, ds) in spec.deps.iter().enumerate() {
                for &d in ds {
                    engine.add_dependency(ids[i], ids[d]).unwrap();
                }
            }
            let mut state = 0u64;
            let report = engine.run(&mut state).unwrap();
            (state, report)
        };
        let (s1, r1) = run();
        let (s2, r2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(r1, r2);
    }
}

//! Scheduler-equivalence property tests: the incremental (cached-min /
//! tournament-tree) scheduler must be **bit-identical** to the retained
//! naive scan scheduler — same full `(time, action)` trace, same
//! `RunReport` (steal counters included), same host-state mutations, same
//! RNG consumption — on arbitrary task DAGs mixing CPU and GPU tasks,
//! dynamic spawns, and copy-out-style requeues.

use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, Engine, GpuOutcome, GpuTaskClass, RunReport, SchedAction, SchedPolicy};
use proptest::prelude::*;

/// One task of the random DAG.
#[derive(Debug, Clone)]
enum TaskSpec {
    /// CPU task with some model work, spawning `children` small subtasks.
    Cpu { flops: u32, children: usize },
    /// GPU task; `requeue` models a copy-out poll finding its read still
    /// in flight once before completing.
    Gpu { manager_nanos: u32, requeue: bool },
}

#[derive(Debug, Clone)]
struct GraphSpec {
    tasks: Vec<TaskSpec>,
    /// Per task: indices of strictly earlier tasks it depends on.
    deps: Vec<Vec<usize>>,
    machine_idx: usize,
    workers: usize,
    seed: u64,
}

fn task_strategy() -> impl Strategy<Value = TaskSpec> {
    // 3:1 CPU:GPU mix via an explicit kind selector (the proptest shim has
    // no `prop_oneof!`).
    (0u8..4, 1u32..2_000_000, 0usize..3, 1u32..5_000, any::<bool>()).prop_map(
        |(kind, flops, children, manager_nanos, requeue)| {
            if kind < 3 {
                TaskSpec::Cpu { flops, children }
            } else {
                TaskSpec::Gpu { manager_nanos, requeue }
            }
        },
    )
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..32).prop_flat_map(|n| {
        let tasks = proptest::collection::vec(task_strategy(), n);
        let deps = proptest::collection::vec(proptest::collection::vec(0usize..n.max(1), 0..4), n);
        (tasks, deps, 0usize..3, 1usize..6, any::<u64>()).prop_map(
            move |(tasks, raw_deps, machine_idx, workers, seed)| {
                // Only edges to strictly earlier tasks: guarantees a DAG.
                let deps = raw_deps
                    .into_iter()
                    .enumerate()
                    .map(|(i, ds)| {
                        let mut ds: Vec<usize> = ds.into_iter().filter(|&d| d < i).collect();
                        ds.sort_unstable();
                        ds.dedup();
                        ds
                    })
                    .collect();
                GraphSpec { tasks, deps, machine_idx, workers, seed }
            },
        )
    })
}

/// Build and run the spec's engine under `policy`; return everything
/// observable: final host state, the report, and the full action trace.
fn run(spec: &GraphSpec, policy: SchedPolicy) -> (u64, RunReport, Vec<(f64, SchedAction)>) {
    // All three paper machines have a GPU, so mixed CPU/GPU DAGs are
    // always schedulable.
    let machines = MachineProfile::all();
    let machine = &machines[spec.machine_idx];
    let mut engine: Engine<u64> = Engine::with_workers(machine, spec.workers, spec.seed);
    engine.set_sched_policy(policy);
    engine.enable_trace();
    let mut ids = Vec::with_capacity(spec.tasks.len());
    for (i, t) in spec.tasks.iter().enumerate() {
        let id = match *t {
            TaskSpec::Cpu { flops, children } => engine.add_cpu_task(move |s: &mut u64, ctx| {
                *s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i as u64);
                for c in 0..children {
                    ctx.spawn_cpu(move |s: &mut u64, _| {
                        *s = s.wrapping_add((i * 31 + c + 1) as u64);
                        Charge::Secs(1.0e-7 * (c + 1) as f64)
                    });
                }
                Charge::Work(CpuWork::new(f64::from(flops), f64::from(flops) / 2.0))
            }),
            TaskSpec::Gpu { manager_nanos, requeue } => {
                let mut polled = false;
                engine.add_gpu_task(GpuTaskClass::Execute, move |s: &mut u64, ctx| {
                    if requeue && !polled {
                        polled = true;
                        return Ok(GpuOutcome::Requeue { ready_at: ctx.now + 3.0e-6 });
                    }
                    *s = s.wrapping_mul(31).wrapping_add(i as u64);
                    Ok(GpuOutcome::Done { manager_secs: f64::from(manager_nanos) * 1.0e-9 })
                })
            }
        };
        ids.push(id);
    }
    for (i, ds) in spec.deps.iter().enumerate() {
        for &d in ds {
            engine.add_dependency(ids[i], ids[d]).expect("valid dependency");
        }
    }
    let mut state = 0u64;
    let report = engine.run(&mut state).expect("acyclic graphs never deadlock");
    (state, report, engine.take_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_scheduler_matches_naive_oracle(spec in graph_strategy()) {
        let (state_inc, report_inc, trace_inc) = run(&spec, SchedPolicy::Incremental);
        let (state_scan, report_scan, trace_scan) = run(&spec, SchedPolicy::NaiveScan);

        prop_assert_eq!(state_inc, state_scan, "host-state mutation order diverged");
        // The report comparison covers makespan, per-worker busy time,
        // steal/steal_attempt counters (RNG consumption), requeues, and
        // the new sched_steps / eligibility_rescans counters.
        prop_assert_eq!(&report_inc, &report_scan, "RunReport diverged");
        prop_assert_eq!(trace_inc.len(), trace_scan.len(), "trace length diverged");
        for (k, (a, b)) in trace_inc.iter().zip(&trace_scan).enumerate() {
            prop_assert_eq!(a, b, "decision {} diverged (of {})", k, trace_inc.len());
        }
        prop_assert_eq!(report_inc.sched_steps, trace_inc.len(),
            "sched_steps counts exactly the trace entries");
    }
}

//! # petal-rt — hybrid workstealing / work-pushing runtime in virtual time
//!
//! A faithful implementation of §4 of *Portable Performance on Heterogeneous
//! Architectures* (ASPLOS'13):
//!
//! * **Task model** ([`task`]) — tasks form arbitrary acyclic dependency
//!   graphs with the paper's five states (*new*, *non-runnable*, *runnable*,
//!   *complete*, *continued*), dynamic dependency pointers, dependency
//!   counts, and continuation tasks that inherit their parent's dependents.
//! * **CPU workstealing** ([`engine`]) — each worker owns a THE-style deque;
//!   it pops from the top of its own deque and steals from the bottom of a
//!   random victim's.
//! * **GPU work-pushing** — a dedicated GPU management thread owns a FIFO of
//!   GPU tasks (the four classes of §4.2: *prepare*, *copy-in*, *execute*,
//!   *copy-out completion*), never blocks on device operations, and pushes
//!   CPU tasks it wakes to the bottom of a *random* worker's deque, while
//!   CPU-caused wakeups go to the top of the causing worker's own deque
//!   (Fig. 5).
//!
//! The one deliberate departure from the paper: the engine advances a
//! **virtual clock** instead of wall time. Workers and the GPU manager are
//! simulated entities; every task charges time through the cost model in
//! [`petal_gpu`]. Data transformations are real (closures mutate the host
//! state `S`), so outputs are bit-exact and checkable, while timing is
//! deterministic and machine-profile dependent — which is what the
//! autotuner needs to reproduce the paper's per-machine results.
//!
//! ## `Send` evaluation state
//!
//! Task closures ([`task::CpuFn`], [`task::GpuFn`]) carry a **`Send`
//! bound**, and the engine asserts at compile time that `Engine<S>: Send`
//! whenever `S: Send`. An entire evaluation — engine, task graph, device,
//! host state — can therefore be moved onto another OS thread wholesale.
//! That is the foundation of `petal-farm`, which runs autotuner trials
//! (each owning an independent `Executor`/`Engine`/`World`) on a pool of
//! real threads while keeping results bit-identical at any thread count:
//! the virtual clock inside each engine is untouched by wall-clock
//! scheduling outside it. Shared per-chain state in closures uses
//! `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`; within one engine the
//! lock is uncontended because tasks of a single run never execute
//! concurrently.
//!
//! # Example
//!
//! ```
//! use petal_gpu::cost::CpuWork;
//! use petal_gpu::profile::MachineProfile;
//! use petal_rt::{Charge, Engine};
//!
//! // Sum 1..=3 with three parallel leaf tasks and a dependent reducer.
//! let mut engine: Engine<Vec<f64>> = Engine::new(&MachineProfile::desktop(), 42);
//! let leaves: Vec<_> = (0..3)
//!     .map(|i| {
//!         engine.add_cpu_task(move |state: &mut Vec<f64>, _ctx: &mut petal_rt::CpuCtx<Vec<f64>>| {
//!             state[i] = (i + 1) as f64;
//!             Charge::Work(CpuWork::new(1.0, 8.0))
//!         })
//!     })
//!     .collect();
//! let reduce = engine.add_cpu_task(|state: &mut Vec<f64>, _ctx: &mut petal_rt::CpuCtx<Vec<f64>>| {
//!     let total: f64 = state.iter().sum();
//!     state.push(total);
//!     Charge::Work(CpuWork::new(3.0, 32.0))
//! });
//! for l in &leaves {
//!     engine.add_dependency(reduce, *l)?;
//! }
//! let mut state = vec![0.0; 3];
//! let report = engine.run(&mut state)?;
//! assert_eq!(state[3], 6.0);
//! assert!(report.makespan > 0.0);
//! # Ok::<(), petal_rt::RtError>(())
//! ```

pub mod engine;
pub mod graph;
pub mod stats;
pub mod task;

pub use engine::{
    default_sched_policy, set_default_sched_policy, Engine, SchedAction, SchedPolicy,
};
pub use graph::Reachability;
pub use stats::RunReport;
pub use task::{Charge, CpuCtx, GpuCtx, GpuOutcome, GpuTaskClass, TaskId, TaskState};

use petal_gpu::GpuError;
use std::fmt;

/// Errors produced by the runtime engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RtError {
    /// No entity can make progress but tasks remain incomplete (a
    /// dependency cycle or a dependency on a task that never runs).
    Deadlock {
        /// Number of unfinished tasks.
        remaining: usize,
    },
    /// A GPU task was created on a machine without an OpenCL device, or a
    /// device operation failed.
    Gpu(GpuError),
    /// A dependency was added to a task not in the *new* state (§4.1:
    /// "dependencies may only be added to a task while it is in the new
    /// state").
    DependencyOnStartedTask {
        /// The task whose dependency list was being extended.
        task: TaskId,
    },
    /// An unknown task id was referenced.
    UnknownTask(TaskId),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Deadlock { remaining } => {
                write!(f, "scheduler deadlock: {remaining} tasks can never run")
            }
            RtError::Gpu(e) => write!(f, "gpu: {e}"),
            RtError::DependencyOnStartedTask { task } => {
                write!(f, "dependency added to task {task:?} after it left the new state")
            }
            RtError::UnknownTask(id) => write!(f, "unknown task {id:?}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for RtError {
    fn from(e: GpuError) -> Self {
        RtError::Gpu(e)
    }
}

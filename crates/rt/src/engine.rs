//! The virtual-time scheduler: workstealing CPU workers plus the
//! work-pushing GPU management thread (Fig. 4 / Fig. 5 of the paper).
//!
//! The engine is a deterministic discrete-event simulation. Every entity
//! (CPU worker or GPU manager) has a `free_at` instant; queue items carry
//! the virtual time they *arrived*. An entity acts at
//! `max(free_at, earliest arrival in its queue)`, and the engine always
//! advances the entity with the earliest possible action, so causality is
//! never violated: no task runs before the event that made it runnable.
//!
//! Scheduling rules (exactly the paper's):
//!
//! * A worker pops from the **top of its own deque** (LIFO).
//! * An idle worker **steals from the bottom** (FIFO end) of a uniformly
//!   random victim's deque, paying a latency per attempt.
//! * A task spawned by a CPU task goes to the **top of the spawning
//!   worker's deque**; one made runnable by a CPU-task completion likewise.
//! * A GPU task that becomes runnable is **pushed to the bottom of the GPU
//!   management thread's FIFO** (work-pushing; Fig. 5a).
//! * A CPU task made runnable by a GPU task is pushed to the **bottom of a
//!   random worker's deque** (Fig. 5b).
//! * A copy-out-completion task whose read is still in flight is re-queued
//!   at the back of the FIFO and becomes eligible when the read lands.
//!
//! # Scheduling-core implementation
//!
//! The hot loop is *incremental*: every queue caches its minimum arrival
//! (`MinCache`, updated on push/pop/steal instead of recomputed), and the
//! per-entity next-action times live in small deterministic tournament
//! trees (`MinTree`, keyed by `(time, entity index)` with ties broken
//! toward the smaller index), so one scheduling decision is O(log workers)
//! instead of O(workers × queue length). The previous full-scan scheduler
//! is retained verbatim as [`SchedPolicy::NaiveScan`] — it is the test
//! oracle for `tests/sched_equiv.rs` and the "before" half of the
//! `bench_hotpath` throughput table. Both policies produce bit-identical
//! `(time, action)` sequences, RNG consumption, and [`RunReport`]s; see
//! ARCHITECTURE.md ("Scheduler internals") for the invariants.

use crate::stats::RunReport;
use crate::task::{Arena, Charge, CpuCtx, GpuCtx, GpuOutcome, SpawnRef, TaskId, TaskKind};
use crate::RtError;
use petal_gpu::device::Device;
use petal_gpu::profile::{CpuProfile, MachineProfile};
use petal_gpu::GpuError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

/// Manager time spent re-checking an in-flight read (§4.2 copy-out
/// completion poll).
const POLL_COST: f64 = 1.0e-6;

/// Give up a steal round after this many randomized attempts and fall back
/// to a deterministic scan.
const MAX_STEAL_ATTEMPTS_FACTOR: usize = 4;

/// Which scheduling-core implementation an [`Engine`] uses.
///
/// Both produce **bit-identical behavior** — the same `(time, action)`
/// sequence, the same RNG consumption, the same [`RunReport`] — so the
/// choice only affects host time. `NaiveScan` exists as the property-test
/// oracle and as the "before" measurement in the `bench_hotpath` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Incrementally maintained cached mins + tournament trees: each
    /// scheduling decision is O(log workers). The default.
    Incremental,
    /// The original full-scan scheduler: every decision rescans every
    /// deque (O(workers × queue length)). Kept as the equivalence oracle.
    NaiveScan,
}

/// Process-wide default policy for newly constructed engines
/// (0 = Incremental, 1 = NaiveScan). A bench/diagnostic knob: because the
/// two policies are bit-identical in behavior, flipping it can never
/// change a result, only host time.
static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(0);

/// Set the [`SchedPolicy`] used by engines constructed after this call
/// (e.g. everything inside a benchmark's `run_with_config`). Used by the
/// `bench_hotpath` harness to measure the naive scheduler as its
/// "before" column without threading a knob through every layer.
pub fn set_default_sched_policy(policy: SchedPolicy) {
    DEFAULT_POLICY.store(matches!(policy, SchedPolicy::NaiveScan) as u8, Ordering::SeqCst);
}

/// The [`SchedPolicy`] newly constructed engines start with.
#[must_use]
pub fn default_sched_policy() -> SchedPolicy {
    if DEFAULT_POLICY.load(Ordering::SeqCst) == 1 {
        SchedPolicy::NaiveScan
    } else {
        SchedPolicy::Incremental
    }
}

/// One scheduling decision: which entity acts. Public so the equivalence
/// tests can compare full action traces between policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedAction {
    /// Worker `i` pops the top of its own deque.
    PopOwn(usize),
    /// Worker `i` (whose deque is empty) attempts to steal.
    Steal(usize),
    /// The GPU management thread runs the front of its FIFO.
    Manager,
}

#[derive(Debug, Clone, Copy)]
struct QueueItem {
    task: TaskId,
    arrival: f64,
}

/// Incrementally maintained minimum over a queue's arrival times.
///
/// `count` tracks how many items currently share the minimum, so the
/// common pattern of a batch of children arriving at the same instant
/// costs O(1) per push *and* per pop; a full refold (O(queue)) happens
/// only when the last copy of the minimum leaves the queue.
#[derive(Debug, Clone, Copy)]
struct MinCache {
    min: f64,
    count: usize,
}

impl Default for MinCache {
    fn default() -> Self {
        MinCache { min: f64::INFINITY, count: 0 }
    }
}

impl MinCache {
    fn push(&mut self, arrival: f64) {
        if arrival < self.min {
            self.min = arrival;
            self.count = 1;
        } else if arrival == self.min {
            self.count += 1;
        }
    }

    /// Record a removal; `true` means the last copy of the minimum left
    /// and the caller must [`MinCache::refold`] over the survivors.
    #[must_use]
    fn remove(&mut self, arrival: f64) -> bool {
        if arrival == self.min {
            self.count -= 1;
            if self.count == 0 {
                self.min = f64::INFINITY;
                return true;
            }
        }
        false
    }

    fn refold(&mut self, arrivals: impl Iterator<Item = f64>) {
        self.min = f64::INFINITY;
        self.count = 0;
        for a in arrivals {
            self.push(a);
        }
    }

    fn get(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }
}

/// A flat tournament tree over a fixed set of entity slots, keyed by
/// `f64` with ties broken toward the **leftmost** (smallest-index) slot —
/// exactly the tie order the scan-based scheduler gets from iterating
/// workers in index order with a strict `<` comparison. Empty slots hold
/// `+inf`. Updates are O(log n); the minimum and the deterministic
/// "leftmost slot ≤ bound" query are O(log n) or better.
#[derive(Debug, Clone)]
struct MinTree {
    /// Leaf values, padded with `+inf` to `cap` (a power of two).
    vals: Vec<f64>,
    /// 1-based heap of winners: `win[k]` is the index of the minimal leaf
    /// under internal node `k` (left wins ties); `win[cap + i] == i`.
    win: Vec<u32>,
    cap: usize,
}

impl MinTree {
    fn new(n: usize) -> Self {
        let cap = n.max(1).next_power_of_two();
        let mut win = vec![0u32; 2 * cap];
        for (i, w) in win[cap..].iter_mut().enumerate() {
            *w = i as u32;
        }
        let mut tree = MinTree { vals: vec![f64::INFINITY; cap], win, cap };
        for k in (1..cap).rev() {
            tree.win[k] = tree.winner(tree.win[2 * k], tree.win[2 * k + 1]);
        }
        tree
    }

    fn winner(&self, l: u32, r: u32) -> u32 {
        if self.vals[l as usize] <= self.vals[r as usize] {
            l
        } else {
            r
        }
    }

    fn update(&mut self, i: usize, v: f64) {
        self.vals[i] = v;
        let mut k = (self.cap + i) >> 1;
        while k >= 1 {
            self.win[k] = self.winner(self.win[2 * k], self.win[2 * k + 1]);
            k >>= 1;
        }
    }

    /// `(min value, leftmost slot holding it)`, or `None` if all empty.
    fn min(&self) -> Option<(f64, usize)> {
        let w = self.win[1] as usize;
        let v = self.vals[w];
        v.is_finite().then_some((v, w))
    }

    /// Leftmost slot with value `<= bound`, if any.
    fn leftmost_at_most(&self, bound: f64) -> Option<usize> {
        if self.vals[self.win[1] as usize] > bound {
            return None;
        }
        let mut k = 1;
        while k < self.cap {
            k = if self.vals[self.win[2 * k] as usize] <= bound { 2 * k } else { 2 * k + 1 };
        }
        Some(k - self.cap)
    }
}

#[derive(Debug, Default)]
struct WorkerState {
    /// THE-style deque: the front is the bottom (steal end), the back is
    /// the top (owner end).
    deque: VecDeque<QueueItem>,
    free_at: f64,
    busy: f64,
    min_cache: MinCache,
}

impl WorkerState {
    fn push_top(&mut self, item: QueueItem) {
        self.min_cache.push(item.arrival);
        self.deque.push_back(item);
    }

    fn push_bottom(&mut self, item: QueueItem) {
        self.min_cache.push(item.arrival);
        self.deque.push_front(item);
    }

    fn note_removed(&mut self, arrival: f64) {
        if self.min_cache.remove(arrival) {
            self.min_cache.refold(self.deque.iter().map(|i| i.arrival));
        }
    }

    /// Full-fold min arrival (naive-scan oracle; ignores the cache).
    fn min_arrival_scan(&self) -> Option<f64> {
        self.deque
            .iter()
            .map(|i| i.arrival)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.min(a))))
    }

    /// Pop the topmost item that has arrived by `now`. The common case —
    /// the top item itself is eligible — is O(1); otherwise the fallback
    /// scan is counted in `rescans`.
    fn pop_top_eligible(&mut self, now: f64, rescans: &mut usize) -> Option<TaskId> {
        match self.deque.back() {
            Some(top) if top.arrival <= now => {
                let item = self.deque.pop_back().expect("checked non-empty");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            Some(_) => {
                *rescans += 1;
                let idx = self.deque.iter().rposition(|i| i.arrival <= now)?;
                let item = self.deque.remove(idx).expect("index in range");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            None => None,
        }
    }

    /// Steal the bottommost item that has arrived by `now` (same fast
    /// path / counted-fallback structure as [`Self::pop_top_eligible`]).
    fn steal_bottom_eligible(&mut self, now: f64, rescans: &mut usize) -> Option<TaskId> {
        match self.deque.front() {
            Some(bottom) if bottom.arrival <= now => {
                let item = self.deque.pop_front().expect("checked non-empty");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            Some(_) => {
                *rescans += 1;
                let idx = self.deque.iter().position(|i| i.arrival <= now)?;
                let item = self.deque.remove(idx).expect("index in range");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            None => None,
        }
    }
}

#[derive(Debug, Default)]
struct ManagerState {
    fifo: VecDeque<QueueItem>,
    free_at: f64,
    min_cache: MinCache,
}

impl ManagerState {
    fn push_back(&mut self, item: QueueItem) {
        self.min_cache.push(item.arrival);
        self.fifo.push_back(item);
    }

    fn min_arrival(&self) -> Option<f64> {
        self.min_cache.get()
    }

    fn min_arrival_scan(&self) -> Option<f64> {
        self.fifo
            .iter()
            .map(|i| i.arrival)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.min(a))))
    }

    fn note_removed(&mut self, arrival: f64) {
        if self.min_cache.remove(arrival) {
            self.min_cache.refold(self.fifo.iter().map(|i| i.arrival));
        }
    }

    /// Pop the frontmost item that has arrived by `now`.
    fn pop_front_eligible(&mut self, now: f64, rescans: &mut usize) -> Option<TaskId> {
        match self.fifo.front() {
            Some(front) if front.arrival <= now => {
                let item = self.fifo.pop_front().expect("checked non-empty");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            Some(_) => {
                *rescans += 1;
                let idx = self.fifo.iter().position(|i| i.arrival <= now)?;
                let item = self.fifo.remove(idx).expect("index in range");
                self.note_removed(item.arrival);
                Some(item.task)
            }
            None => None,
        }
    }
}

/// The runtime engine for one machine.
///
/// Generic over the host state `S` that CPU/GPU task closures mutate — the
/// executor in `petal-core` stores matrices there.
pub struct Engine<S> {
    arena: Arena<S>,
    workers: Vec<WorkerState>,
    manager: ManagerState,
    device: Option<Device>,
    cpu: CpuProfile,
    rng: StdRng,
    report: RunReport,
    roots: Vec<TaskId>,
    max_completion: f64,
    policy: SchedPolicy,
    /// Busy workers: `max(free_at, min arrival)` keyed by worker index.
    pop_tree: MinTree,
    /// Idle (empty-deque) workers: `free_at` keyed by worker index.
    steal_tree: MinTree,
    /// Per-worker min arrival; the root is the global min the steal rule
    /// needs, shared with `act_steal` so the two can never disagree.
    arrival_tree: MinTree,
    /// Reused by every completion for the woken-dependents hand-off, so
    /// the hot loop allocates nothing per task.
    woken_scratch: Vec<(TaskId, f64)>,
    trace: Option<Vec<(f64, SchedAction)>>,
}

impl<S> Engine<S> {
    /// Engine for `machine` with one worker per core and a fresh device.
    #[must_use]
    pub fn new(machine: &MachineProfile, seed: u64) -> Self {
        let device = machine.gpu.clone().map(Device::new);
        Self::with_device_and_workers(machine, machine.cpu.cores, device, seed)
    }

    /// Engine with an explicit worker count (the paper removes the thread
    /// count from the search space and pins it to the core count; tests use
    /// other values).
    #[must_use]
    pub fn with_workers(machine: &MachineProfile, workers: usize, seed: u64) -> Self {
        let device = machine.gpu.clone().map(Device::new);
        Self::with_device_and_workers(machine, workers, device, seed)
    }

    /// Engine reusing an existing device (keeps its compile cache warm
    /// across autotuning trials).
    #[must_use]
    pub fn with_device_and_workers(
        machine: &MachineProfile,
        workers: usize,
        device: Option<Device>,
        seed: u64,
    ) -> Self {
        let workers = workers.max(1);
        let mut engine = Engine {
            arena: Arena::new(),
            workers: (0..workers).map(|_| WorkerState::default()).collect(),
            manager: ManagerState::default(),
            device,
            cpu: machine.cpu.clone(),
            rng: StdRng::seed_from_u64(seed),
            report: RunReport::default(),
            roots: Vec::new(),
            max_completion: 0.0,
            policy: default_sched_policy(),
            pop_tree: MinTree::new(workers),
            steal_tree: MinTree::new(workers),
            arrival_tree: MinTree::new(workers),
            woken_scratch: Vec::new(),
            trace: None,
        };
        for i in 0..workers {
            engine.refresh_worker(i);
        }
        engine
    }

    /// Number of CPU workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Override the scheduling-core implementation for this engine
    /// (behavior is identical either way; only host time differs).
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// The scheduling-core implementation this engine uses.
    #[must_use]
    pub fn sched_policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Record every scheduling decision as `(virtual time, action)`;
    /// retrieve with [`Engine::take_trace`]. Costs one `Vec` push per
    /// event, so leave it off outside tests.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The decisions recorded since [`Engine::enable_trace`] (recording
    /// stops and the buffer is handed over).
    pub fn take_trace(&mut self) -> Vec<(f64, SchedAction)> {
        self.trace.take().unwrap_or_default()
    }

    /// The simulated OpenCL device, if the machine has one.
    #[must_use]
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// Mutable device access (to register kernels before running).
    pub fn device_mut(&mut self) -> Option<&mut Device> {
        self.device.as_mut()
    }

    /// Extract the device (to thread its compile cache into the next run).
    pub fn take_device(&mut self) -> Option<Device> {
        self.device.take()
    }

    /// Create a root CPU task (state *new* until [`Engine::run`] starts).
    pub fn add_cpu_task(
        &mut self,
        f: impl FnOnce(&mut S, &mut CpuCtx<S>) -> Charge + Send + 'static,
    ) -> TaskId {
        self.add_cpu_task_boxed(Box::new(f))
    }

    /// [`Engine::add_cpu_task`] for an already-boxed body: callers that
    /// store task closures boxed (the executor's plan lowering) hand the
    /// box over instead of paying a second allocation per task.
    pub fn add_cpu_task_boxed(&mut self, f: crate::task::CpuFn<S>) -> TaskId {
        let id = self.arena.add(TaskKind::Cpu(f));
        self.roots.push(id);
        id
    }

    /// Create a root GPU task of the given class.
    pub fn add_gpu_task(
        &mut self,
        class: crate::task::GpuTaskClass,
        f: impl FnMut(&mut S, &mut GpuCtx<'_>) -> Result<GpuOutcome, GpuError> + Send + 'static,
    ) -> TaskId {
        let id = self.arena.add(TaskKind::Gpu(class, Box::new(f)));
        self.roots.push(id);
        id
    }

    /// Declare that `task` cannot start until `on` completes.
    ///
    /// # Errors
    /// [`RtError::DependencyOnStartedTask`] if `task` already left the *new*
    /// state, [`RtError::UnknownTask`] for dangling ids.
    pub fn add_dependency(&mut self, task: TaskId, on: TaskId) -> Result<(), RtError> {
        self.arena.add_dependency(task, on)
    }

    /// Run every task to completion, mutating `state`, and report timing.
    ///
    /// # Errors
    /// [`RtError::Deadlock`] when unfinished tasks can never run,
    /// [`RtError::Gpu`] when a GPU task exists without a device or a device
    /// operation fails.
    pub fn run(&mut self, state: &mut S) -> Result<RunReport, RtError> {
        // Transition every pre-created task out of *new*, enqueueing the
        // runnable ones: CPU roots seed worker 0 (stealing spreads them),
        // GPU roots seed the manager FIFO.
        for id in std::mem::take(&mut self.roots) {
            if self.arena.finalize(id) {
                self.enqueue_initial(id);
            }
        }
        if !self.manager.fifo.is_empty() && self.device.is_none() {
            return Err(RtError::Gpu(GpuError::NoGpu));
        }

        while let Some((t, action)) = self.next_action() {
            self.report.sched_steps += 1;
            if let Some(trace) = &mut self.trace {
                trace.push((t, action));
            }
            match action {
                SchedAction::PopOwn(i) => self.act_pop_own(i, t, state)?,
                SchedAction::Steal(i) => self.act_steal(i, t, state)?,
                SchedAction::Manager => self.act_manager(t, state)?,
            }
        }

        if self.arena.unfinished() > 0 {
            return Err(RtError::Deadlock { remaining: self.arena.unfinished() });
        }

        self.report.makespan = self.max_completion;
        self.report.worker_busy = self.workers.iter().map(|w| w.busy).collect();
        if let Some(d) = &self.device {
            if self.report.gpu_tasks > 0 {
                // The device timeline may extend past the last manager-side
                // completion only when nothing awaited it; outputs always
                // have copy-out completions, so this is a safety net.
                self.report.makespan = self.report.makespan.max(d.busy_until());
            }
            self.report.device = d.stats();
            self.report.device_busy = d.busy_secs();
        }
        Ok(self.report.clone())
    }

    fn enqueue_initial(&mut self, id: TaskId) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.push_back(QueueItem { task: id, arrival: 0.0 });
        } else {
            self.workers[0].push_top(QueueItem { task: id, arrival: 0.0 });
            self.refresh_worker(0);
        }
    }

    /// Re-derive worker `i`'s tournament-tree keys from its queue state.
    /// A worker is *either* a pop candidate (non-empty deque) *or* a steal
    /// candidate (empty deque) — never both — mirroring the `if/else if`
    /// of the scan scheduler.
    fn refresh_worker(&mut self, i: usize) {
        let w = &self.workers[i];
        match w.min_cache.get() {
            Some(min) => {
                self.arrival_tree.update(i, min);
                self.pop_tree.update(i, w.free_at.max(min));
                self.steal_tree.update(i, f64::INFINITY);
            }
            None => {
                self.arrival_tree.update(i, f64::INFINITY);
                self.pop_tree.update(i, f64::INFINITY);
                self.steal_tree.update(i, w.free_at);
            }
        }
    }

    /// The earliest possible action across all entities; `None` when no
    /// queue holds work. Ties break toward the smaller worker index, with
    /// the manager losing all ties — the exact order the scan scheduler
    /// derives from its iteration order.
    fn next_action(&self) -> Option<(f64, SchedAction)> {
        match self.policy {
            SchedPolicy::Incremental => self.next_action_incremental(),
            SchedPolicy::NaiveScan => self.next_action_naive(),
        }
    }

    fn next_action_incremental(&self) -> Option<(f64, SchedAction)> {
        // Best CPU-side candidate by (time, worker index).
        let mut cpu: Option<(f64, usize, bool)> = self.pop_tree.min().map(|(t, i)| (t, i, false));
        if let Some((global_min, _)) = self.arrival_tree.min() {
            // An idle worker acts at max(free_at, global min arrival):
            // workers already free when the work arrives all act at the
            // global min (leftmost such index wins); otherwise the
            // earliest-free idle worker wins.
            let steal: Option<(f64, usize)> = match self.steal_tree.leftmost_at_most(global_min) {
                Some(i) => Some((global_min, i)),
                None => self.steal_tree.min(),
            };
            if let Some((ts, si)) = steal {
                let better = match cpu {
                    None => true,
                    Some((tp, pi, _)) => ts < tp || (ts == tp && si < pi),
                };
                if better {
                    cpu = Some((ts, si, true));
                }
            }
        }
        let mut best = cpu.map(|(t, i, steal)| {
            (t, if steal { SchedAction::Steal(i) } else { SchedAction::PopOwn(i) })
        });
        if let Some(arr) = self.manager.min_arrival() {
            let tm = self.manager.free_at.max(arr);
            if best.map_or(true, |(bt, _)| tm < bt) {
                best = Some((tm, SchedAction::Manager));
            }
        }
        best
    }

    /// The original scan scheduler, kept as the equivalence oracle: full
    /// O(queue) folds per worker plus a global fold, every event.
    fn next_action_naive(&self) -> Option<(f64, SchedAction)> {
        let mut best: Option<(f64, SchedAction)> = None;
        let consider = |t: f64, a: SchedAction, best: &mut Option<(f64, SchedAction)>| {
            if best.map_or(true, |(bt, _)| t < bt) {
                *best = Some((t, a));
            }
        };
        let global_min_cpu = self
            .workers
            .iter()
            .filter_map(WorkerState::min_arrival_scan)
            .fold(None::<f64>, |acc, a| Some(acc.map_or(a, |m| m.min(a))));
        for (i, w) in self.workers.iter().enumerate() {
            if let Some(arr) = w.min_arrival_scan() {
                consider(w.free_at.max(arr), SchedAction::PopOwn(i), &mut best);
            } else if let Some(arr) = global_min_cpu {
                // Only other deques hold work: this worker can steal.
                consider(w.free_at.max(arr), SchedAction::Steal(i), &mut best);
            }
        }
        if let Some(arr) = self.manager.min_arrival_scan() {
            consider(self.manager.free_at.max(arr), SchedAction::Manager, &mut best);
        }
        best
    }

    /// `t0` is the action time computed by `next_action`
    /// (`free_at.max(min arrival)`), threaded through so it is derived
    /// exactly once.
    fn act_pop_own(&mut self, i: usize, t0: f64, state: &mut S) -> Result<(), RtError> {
        let task = self.workers[i]
            .pop_top_eligible(t0, &mut self.report.eligibility_rescans)
            .expect("eligible item exists at t0 by construction");
        self.run_cpu_task(i, task, t0, state)
    }

    /// `t` is the action time from `next_action`: `free_at.max(global min
    /// arrival)`. Threading it through (instead of refolding every deque
    /// here, as the code once did) means the steal path and the scheduler
    /// can never disagree about the global minimum.
    fn act_steal(&mut self, i: usize, t: f64, state: &mut S) -> Result<(), RtError> {
        let mut now = t;
        let n = self.workers.len();
        let max_attempts = MAX_STEAL_ATTEMPTS_FACTOR * n.max(2);
        for _ in 0..max_attempts {
            let victim = self.rng.gen_range(0..n);
            now += self.cpu.steal_latency;
            self.report.steal_attempts += 1;
            if victim == i {
                continue;
            }
            if let Some(task) = self.workers[victim]
                .steal_bottom_eligible(now, &mut self.report.eligibility_rescans)
            {
                self.refresh_worker(victim);
                self.report.steals += 1;
                return self.run_cpu_task(i, task, now, state);
            }
        }
        // Randomization failed repeatedly; deterministic sweep (victims with
        // eligible work must exist at `now` since time only advanced).
        for victim in 0..n {
            if victim == i {
                continue;
            }
            if let Some(task) = self.workers[victim]
                .steal_bottom_eligible(now, &mut self.report.eligibility_rescans)
            {
                self.refresh_worker(victim);
                self.report.steals += 1;
                return self.run_cpu_task(i, task, now, state);
            }
        }
        // The work was taken by someone else in the meantime — record the
        // wasted time and return to the scheduling loop.
        self.workers[i].free_at = now;
        self.refresh_worker(i);
        Ok(())
    }

    fn run_cpu_task(
        &mut self,
        worker: usize,
        task: TaskId,
        t0: f64,
        state: &mut S,
    ) -> Result<(), RtError> {
        let kind = self.arena.tasks[task.0].kind.take().expect("task body present");
        let f = match kind {
            TaskKind::Cpu(f) => f,
            TaskKind::Gpu(..) => unreachable!("CPU deques only hold CPU tasks"),
        };
        let mut ctx = CpuCtx::new(t0);
        let charge = f(state, &mut ctx);
        let secs = match charge {
            Charge::Work(w) => w.secs_on(&self.cpu),
            Charge::Secs(s) => s + self.cpu.task_overhead,
            Charge::WorkPlusSecs(w, s) => w.secs_on(&self.cpu) + s,
        };
        let t1 = t0 + secs;
        self.workers[worker].free_at = t1;
        self.workers[worker].busy += secs;
        self.report.cpu_tasks += 1;
        self.max_completion = self.max_completion.max(t1);

        // Merge dynamically spawned children and dependencies.
        let CpuCtx { spawned, deps, continuation, .. } = ctx;
        let mut new_ids = Vec::with_capacity(spawned.len());
        for kind in spawned {
            new_ids.push(self.arena.add(kind));
        }
        let resolve = |r: SpawnRef, ids: &[TaskId]| -> TaskId {
            match r {
                SpawnRef::Local(k) => ids[k],
                SpawnRef::Existing(id) => id,
            }
        };
        for (t, on) in deps {
            self.arena.add_dependency(resolve(t, &new_ids), resolve(on, &new_ids))?;
        }
        let cont_id = continuation.map(|k| new_ids[k]);
        if let Some(c) = cont_id {
            self.arena.continue_with(task, c);
        }
        // Children enter the schedule at t1 (or later, when they depend on
        // tasks that finished at a later virtual instant): CPU children on
        // top of this worker's deque in creation order, GPU children at
        // the FIFO back.
        for id in &new_ids {
            if self.arena.finalize(*id) {
                let ready = t1.max(self.arena.tasks[id.0].ready_at);
                self.enqueue_from_cpu(worker, *id, ready);
            }
        }
        if cont_id.is_none() {
            let mut woken = std::mem::take(&mut self.woken_scratch);
            self.arena.complete(task, t1, &mut woken);
            for &(id, ready_at) in &woken {
                self.enqueue_from_cpu(worker, id, ready_at);
            }
            self.woken_scratch = woken;
        }
        // One tree refresh covers the pop, the free_at advance, and every
        // child pushed onto this worker's own deque above.
        self.refresh_worker(worker);
        Ok(())
    }

    /// Enqueue a task made runnable by CPU worker `worker` at time `t`:
    /// top of that worker's own deque, or the GPU FIFO (Fig. 5a/5c).
    fn enqueue_from_cpu(&mut self, worker: usize, id: TaskId, t: f64) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.push_back(QueueItem { task: id, arrival: t });
        } else {
            self.workers[worker].push_top(QueueItem { task: id, arrival: t });
        }
    }

    fn act_manager(&mut self, t0: f64, state: &mut S) -> Result<(), RtError> {
        let task = self
            .manager
            .pop_front_eligible(t0, &mut self.report.eligibility_rescans)
            .expect("eligible item exists at t0 by construction");
        let mut kind = self.arena.tasks[task.0].kind.take().expect("task body present");
        let device = self.device.as_mut().ok_or(RtError::Gpu(GpuError::NoGpu))?;
        let outcome = {
            let TaskKind::Gpu(_, f) = &mut kind else {
                unreachable!("the FIFO only holds GPU tasks")
            };
            let mut ctx = GpuCtx { now: t0, device, dedup_hits: 0 };
            let out = f(state, &mut ctx)?;
            self.report.copy_in_dedup_hits += ctx.dedup_hits;
            out
        };
        match outcome {
            GpuOutcome::Done { manager_secs } => {
                let t1 = t0 + manager_secs;
                self.manager.free_at = t1;
                self.report.gpu_tasks += 1;
                self.max_completion = self.max_completion.max(t1);
                let mut woken = std::mem::take(&mut self.woken_scratch);
                self.arena.complete(task, t1, &mut woken);
                for &(id, ready_at) in &woken {
                    self.enqueue_from_gpu(id, ready_at);
                }
                self.woken_scratch = woken;
            }
            GpuOutcome::Requeue { ready_at } => {
                self.arena.tasks[task.0].kind = Some(kind);
                let arrival = ready_at.max(t0 + POLL_COST);
                self.manager.push_back(QueueItem { task, arrival });
                self.manager.free_at = t0 + POLL_COST;
                self.report.copy_out_requeues += 1;
            }
        }
        Ok(())
    }

    /// Enqueue a task made runnable by the GPU manager at time `t`: bottom
    /// of a *random* worker's deque for CPU tasks (Fig. 5b), FIFO back for
    /// GPU tasks.
    fn enqueue_from_gpu(&mut self, id: TaskId, t: f64) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.push_back(QueueItem { task: id, arrival: t });
        } else {
            let w = self.rng.gen_range(0..self.workers.len());
            self.workers[w].push_bottom(QueueItem { task: id, arrival: t });
            self.refresh_worker(w);
        }
    }
}

// Compile-time guarantee behind the evaluation farm: an engine whose host
// state is `Send` can be moved to a worker thread wholesale (task closures
// carry a `Send` bound, the device owns no thread-local state).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn engine_is_send<S: Send>() {
        assert_send::<Engine<S>>();
    }
    engine_is_send::<()>();
};

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("tasks", &self.arena.tasks.len())
            .field("has_device", &self.device.is_some())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::GpuTaskClass;
    use petal_gpu::cost::CpuWork;

    fn machine() -> MachineProfile {
        MachineProfile::desktop()
    }

    #[test]
    fn min_cache_tracks_duplicates() {
        let mut c = MinCache::default();
        c.push(2.0);
        c.push(1.0);
        c.push(1.0);
        assert_eq!(c.get(), Some(1.0));
        assert!(!c.remove(1.0), "a duplicate min remains");
        assert_eq!(c.get(), Some(1.0));
        assert!(!c.remove(2.0), "removing a non-min never refolds");
        assert!(c.remove(1.0), "last copy of the min forces a refold");
        c.refold(std::iter::empty());
        assert_eq!(c.get(), None);
    }

    #[test]
    fn min_tree_prefers_leftmost_on_ties() {
        let mut t = MinTree::new(5);
        assert_eq!(t.min(), None);
        t.update(3, 2.0);
        t.update(1, 2.0);
        t.update(4, 5.0);
        assert_eq!(t.min(), Some((2.0, 1)), "smallest index wins the tie");
        assert_eq!(t.leftmost_at_most(1.0), None);
        assert_eq!(t.leftmost_at_most(2.0), Some(1));
        assert_eq!(t.leftmost_at_most(10.0), Some(1));
        t.update(1, f64::INFINITY);
        assert_eq!(t.min(), Some((2.0, 3)));
        assert_eq!(t.leftmost_at_most(5.0), Some(3));
    }

    #[test]
    fn single_task_runs_and_charges_time() {
        let mut e: Engine<u32> = Engine::new(&machine(), 1);
        e.add_cpu_task(|s, _| {
            *s += 1;
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        let mut s = 0u32;
        let r = e.run(&mut s).unwrap();
        assert_eq!(s, 1);
        // 2.5e9 flops on a 2.5e9 flop/s core ≈ 1 second.
        assert!((r.makespan - 1.0).abs() < 1e-3, "makespan {}", r.makespan);
        assert_eq!(r.cpu_tasks, 1);
        assert!(r.sched_steps >= 1, "every action is one sched step");
    }

    #[test]
    fn independent_tasks_run_in_parallel_via_stealing() {
        let mut e: Engine<()> = Engine::new(&machine(), 7);
        for _ in 0..4 {
            e.add_cpu_task(|_, _| Charge::Work(CpuWork::new(2.5e9, 0.0)));
        }
        let r = e.run(&mut ()).unwrap();
        // Four 1-second tasks on four workers: ≈ 1 second, not 4.
        assert!(r.makespan < 1.5, "makespan {}", r.makespan);
        assert!(r.steals >= 3, "steals {}", r.steals);
    }

    #[test]
    fn dependencies_serialize() {
        let mut e: Engine<Vec<u32>> = Engine::new(&machine(), 3);
        let a = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(1);
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        let b = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(2);
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        e.add_dependency(b, a).unwrap();
        let mut s = Vec::new();
        let r = e.run(&mut s).unwrap();
        assert_eq!(s, vec![1, 2]);
        assert!(r.makespan >= 2.0, "sequential chain: {}", r.makespan);
    }

    #[test]
    fn dynamic_spawn_with_continuation() {
        // A parent spawns two children and a continuation that sums their
        // results; an external waiter depends on the parent and must see
        // the continuation's output (dependent forwarding).
        let mut e: Engine<Vec<f64>> = Engine::new(&machine(), 5);
        let parent = e.add_cpu_task(|_s, ctx: &mut CpuCtx<Vec<f64>>| {
            let c1 = ctx.spawn_cpu(|s, _| {
                s[0] = 10.0;
                Charge::Secs(1e-6)
            });
            let c2 = ctx.spawn_cpu(|s, _| {
                s[1] = 32.0;
                Charge::Secs(1e-6)
            });
            let cont = ctx.spawn_cpu(|s, _| {
                s[2] = s[0] + s[1];
                Charge::Secs(1e-6)
            });
            ctx.depend(cont, c1);
            ctx.depend(cont, c2);
            ctx.set_continuation(cont);
            Charge::Secs(1e-6)
        });
        let waiter = e.add_cpu_task(|s: &mut Vec<f64>, _| {
            s[3] = s[2] * 2.0;
            Charge::Secs(1e-6)
        });
        e.add_dependency(waiter, parent).unwrap();
        let mut s = vec![0.0; 4];
        e.run(&mut s).unwrap();
        assert_eq!(s, vec![10.0, 32.0, 42.0, 84.0]);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut e: Engine<()> = Engine::new(&machine(), 1);
        let a = e.add_cpu_task(|_, _| Charge::Secs(0.0));
        let b = e.add_cpu_task(|_, _| Charge::Secs(0.0));
        // Cycle: a→b→a.
        e.add_dependency(a, b).unwrap();
        e.add_dependency(b, a).unwrap();
        let err = e.run(&mut ()).unwrap_err();
        assert_eq!(err, RtError::Deadlock { remaining: 2 });
    }

    #[test]
    fn gpu_task_without_device_errors() {
        let mut m = machine();
        m.gpu = None;
        let mut e: Engine<()> = Engine::new(&m, 1);
        e.add_gpu_task(GpuTaskClass::Prepare, |_, _| Ok(GpuOutcome::Done { manager_secs: 0.0 }));
        assert!(matches!(e.run(&mut ()), Err(RtError::Gpu(GpuError::NoGpu))));
    }

    #[test]
    fn gpu_chain_runs_in_fifo_order_and_wakes_cpu() {
        // prepare -> copy-in -> execute -> copy-out completion; a CPU task
        // depends on the copy-out. Uses the device only for its timeline.
        let mut e: Engine<Vec<f64>> = Engine::new(&machine(), 11);
        let prep = e.add_gpu_task(GpuTaskClass::Prepare, |_, ctx| {
            let overhead = ctx.device.profile().alloc_overhead;
            Ok(GpuOutcome::Done { manager_secs: overhead })
        });
        let copy = e.add_gpu_task(GpuTaskClass::CopyIn, |s: &mut Vec<f64>, ctx| {
            s[0] = 1.0;
            Ok(GpuOutcome::Done { manager_secs: ctx.device.profile().transfer_overhead })
        });
        // "Kernel" finishes on the device 1ms after issue.
        let exec = e.add_gpu_task(GpuTaskClass::Execute, |s: &mut Vec<f64>, ctx| {
            s[1] = s[0] + 1.0;
            s[3] = ctx.now + 1e-3; // completion time of the modeled read
            Ok(GpuOutcome::Done { manager_secs: 2e-6 })
        });
        let done = e.add_gpu_task(GpuTaskClass::CopyOutDone, |s: &mut Vec<f64>, ctx| {
            if ctx.now < s[3] {
                Ok(GpuOutcome::Requeue { ready_at: s[3] })
            } else {
                s[2] = s[1] * 2.0;
                Ok(GpuOutcome::Done { manager_secs: 1e-6 })
            }
        });
        let cpu = e.add_cpu_task(|s: &mut Vec<f64>, _| {
            s[4] = s[2] + 0.5;
            Charge::Secs(1e-6)
        });
        e.add_dependency(cpu, done).unwrap();
        // FIFO order comes from creation order of the root GPU tasks; the
        // copy-out poll must requeue at least once.
        let _ = (prep, copy, exec);
        let mut s = vec![0.0; 5];
        let r = e.run(&mut s).unwrap();
        assert_eq!(s[2], 4.0);
        assert_eq!(s[4], 4.5);
        assert!(r.copy_out_requeues >= 1, "requeues {}", r.copy_out_requeues);
        assert!(r.makespan >= 1e-3, "makespan must cover the device read");
        assert_eq!(r.gpu_tasks, 4);
        assert_eq!(r.cpu_tasks, 1);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut e: Engine<()> = Engine::new(&machine(), seed);
            for i in 0..32 {
                e.add_cpu_task(move |_, _| Charge::Work(CpuWork::new(1e6 * (i + 1) as f64, 0.0)));
            }
            e.run(&mut ()).unwrap()
        };
        let a = run(123);
        let b = run(123);
        assert_eq!(a, b);
        let c = run(124);
        // Different seed: same work, almost surely different steal pattern.
        assert_eq!(c.cpu_tasks, a.cpu_tasks);
    }

    #[test]
    fn naive_scan_policy_is_bit_identical() {
        // A quick inline smoke of the cross-check that
        // tests/sched_equiv.rs does exhaustively on random DAGs.
        let run = |policy: SchedPolicy| {
            let mut e: Engine<u64> = Engine::new(&machine(), 99);
            e.set_sched_policy(policy);
            e.enable_trace();
            for i in 0..48u64 {
                e.add_cpu_task(move |s, _| {
                    *s = s.wrapping_mul(31).wrapping_add(i);
                    Charge::Work(CpuWork::new(1e5 * (i % 7 + 1) as f64, 0.0))
                });
            }
            let mut s = 0u64;
            let r = e.run(&mut s).unwrap();
            (s, r, e.take_trace())
        };
        let (s_inc, r_inc, t_inc) = run(SchedPolicy::Incremental);
        let (s_scan, r_scan, t_scan) = run(SchedPolicy::NaiveScan);
        assert_eq!(s_inc, s_scan);
        assert_eq!(r_inc, r_scan);
        assert_eq!(t_inc, t_scan);
        assert!(!t_inc.is_empty());
    }

    #[test]
    fn worker_count_override() {
        let mut e: Engine<()> = Engine::with_workers(&machine(), 1, 1);
        for _ in 0..4 {
            e.add_cpu_task(|_, _| Charge::Work(CpuWork::new(2.5e9, 0.0)));
        }
        let r = e.run(&mut ()).unwrap();
        assert_eq!(e.worker_count(), 1);
        assert!(r.makespan >= 4.0, "serial on one worker: {}", r.makespan);
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn late_dependency_on_complete_task_is_noop() {
        let mut e: Engine<Vec<u32>> = Engine::new(&machine(), 2);
        let a = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(1);
            Charge::Secs(1e-9)
        });
        // b spawns a child depending on `a`, which long completed.
        let b = e.add_cpu_task(move |_, ctx: &mut CpuCtx<Vec<u32>>| {
            let child = ctx.spawn_cpu(|s, _| {
                s.push(3);
                Charge::Secs(1e-9)
            });
            ctx.depend(child, SpawnRef::Existing(a));
            Charge::Secs(1e-3)
        });
        e.add_dependency(b, a).unwrap();
        let mut s = Vec::new();
        e.run(&mut s).unwrap();
        assert_eq!(s, vec![1, 3]);
    }
}

//! The virtual-time scheduler: workstealing CPU workers plus the
//! work-pushing GPU management thread (Fig. 4 / Fig. 5 of the paper).
//!
//! The engine is a deterministic discrete-event simulation. Every entity
//! (CPU worker or GPU manager) has a `free_at` instant; queue items carry
//! the virtual time they *arrived*. An entity acts at
//! `max(free_at, earliest arrival in its queue)`, and the engine always
//! advances the entity with the earliest possible action, so causality is
//! never violated: no task runs before the event that made it runnable.
//!
//! Scheduling rules (exactly the paper's):
//!
//! * A worker pops from the **top of its own deque** (LIFO).
//! * An idle worker **steals from the bottom** (FIFO end) of a uniformly
//!   random victim's deque, paying a latency per attempt.
//! * A task spawned by a CPU task goes to the **top of the spawning
//!   worker's deque**; one made runnable by a CPU-task completion likewise.
//! * A GPU task that becomes runnable is **pushed to the bottom of the GPU
//!   management thread's FIFO** (work-pushing; Fig. 5a).
//! * A CPU task made runnable by a GPU task is pushed to the **bottom of a
//!   random worker's deque** (Fig. 5b).
//! * A copy-out-completion task whose read is still in flight is re-queued
//!   at the back of the FIFO and becomes eligible when the read lands.

use crate::stats::RunReport;
use crate::task::{Arena, Charge, CpuCtx, GpuCtx, GpuOutcome, SpawnRef, TaskId, TaskKind};
use crate::RtError;
use petal_gpu::device::Device;
use petal_gpu::profile::{CpuProfile, MachineProfile};
use petal_gpu::GpuError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Manager time spent re-checking an in-flight read (§4.2 copy-out
/// completion poll).
const POLL_COST: f64 = 1.0e-6;

/// Give up a steal round after this many randomized attempts and fall back
/// to a deterministic scan.
const MAX_STEAL_ATTEMPTS_FACTOR: usize = 4;

#[derive(Debug, Clone, Copy)]
struct QueueItem {
    task: TaskId,
    arrival: f64,
}

#[derive(Debug, Default)]
struct WorkerState {
    /// THE-style deque: index 0 is the bottom (steal end), the last index
    /// is the top (owner end).
    deque: Vec<QueueItem>,
    free_at: f64,
    busy: f64,
}

impl WorkerState {
    fn min_arrival(&self) -> Option<f64> {
        self.deque
            .iter()
            .map(|i| i.arrival)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.min(a))))
    }

    /// Pop the topmost item that has arrived by `now`.
    fn pop_top_eligible(&mut self, now: f64) -> Option<TaskId> {
        let idx = self.deque.iter().rposition(|i| i.arrival <= now)?;
        Some(self.deque.remove(idx).task)
    }

    /// Steal the bottommost item that has arrived by `now`.
    fn steal_bottom_eligible(&mut self, now: f64) -> Option<TaskId> {
        let idx = self.deque.iter().position(|i| i.arrival <= now)?;
        Some(self.deque.remove(idx).task)
    }
}

#[derive(Debug, Default)]
struct ManagerState {
    fifo: VecDeque<QueueItem>,
    free_at: f64,
}

impl ManagerState {
    fn min_arrival(&self) -> Option<f64> {
        self.fifo
            .iter()
            .map(|i| i.arrival)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.min(a))))
    }

    /// Pop the frontmost item that has arrived by `now`.
    fn pop_front_eligible(&mut self, now: f64) -> Option<TaskId> {
        let idx = self.fifo.iter().position(|i| i.arrival <= now)?;
        self.fifo.remove(idx).map(|i| i.task)
    }
}

/// Which entity performs the next action.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    PopOwn(usize),
    Steal(usize),
    Manager,
}

/// The runtime engine for one machine.
///
/// Generic over the host state `S` that CPU/GPU task closures mutate — the
/// executor in `petal-core` stores matrices there.
pub struct Engine<S> {
    arena: Arena<S>,
    workers: Vec<WorkerState>,
    manager: ManagerState,
    device: Option<Device>,
    cpu: CpuProfile,
    rng: StdRng,
    report: RunReport,
    roots: Vec<TaskId>,
    max_completion: f64,
}

impl<S> Engine<S> {
    /// Engine for `machine` with one worker per core and a fresh device.
    #[must_use]
    pub fn new(machine: &MachineProfile, seed: u64) -> Self {
        let device = machine.gpu.clone().map(Device::new);
        Self::with_device_and_workers(machine, machine.cpu.cores, device, seed)
    }

    /// Engine with an explicit worker count (the paper removes the thread
    /// count from the search space and pins it to the core count; tests use
    /// other values).
    #[must_use]
    pub fn with_workers(machine: &MachineProfile, workers: usize, seed: u64) -> Self {
        let device = machine.gpu.clone().map(Device::new);
        Self::with_device_and_workers(machine, workers, device, seed)
    }

    /// Engine reusing an existing device (keeps its compile cache warm
    /// across autotuning trials).
    #[must_use]
    pub fn with_device_and_workers(
        machine: &MachineProfile,
        workers: usize,
        device: Option<Device>,
        seed: u64,
    ) -> Self {
        let workers = workers.max(1);
        Engine {
            arena: Arena::new(),
            workers: (0..workers).map(|_| WorkerState::default()).collect(),
            manager: ManagerState::default(),
            device,
            cpu: machine.cpu.clone(),
            rng: StdRng::seed_from_u64(seed),
            report: RunReport::default(),
            roots: Vec::new(),
            max_completion: 0.0,
        }
    }

    /// Number of CPU workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The simulated OpenCL device, if the machine has one.
    #[must_use]
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// Mutable device access (to register kernels before running).
    pub fn device_mut(&mut self) -> Option<&mut Device> {
        self.device.as_mut()
    }

    /// Extract the device (to thread its compile cache into the next run).
    pub fn take_device(&mut self) -> Option<Device> {
        self.device.take()
    }

    /// Create a root CPU task (state *new* until [`Engine::run`] starts).
    pub fn add_cpu_task(
        &mut self,
        f: impl FnOnce(&mut S, &mut CpuCtx<S>) -> Charge + Send + 'static,
    ) -> TaskId {
        let id = self.arena.add(TaskKind::Cpu(Box::new(f)));
        self.roots.push(id);
        id
    }

    /// Create a root GPU task of the given class.
    pub fn add_gpu_task(
        &mut self,
        class: crate::task::GpuTaskClass,
        f: impl FnMut(&mut S, &mut GpuCtx<'_>) -> Result<GpuOutcome, GpuError> + Send + 'static,
    ) -> TaskId {
        let id = self.arena.add(TaskKind::Gpu(class, Box::new(f)));
        self.roots.push(id);
        id
    }

    /// Declare that `task` cannot start until `on` completes.
    ///
    /// # Errors
    /// [`RtError::DependencyOnStartedTask`] if `task` already left the *new*
    /// state, [`RtError::UnknownTask`] for dangling ids.
    pub fn add_dependency(&mut self, task: TaskId, on: TaskId) -> Result<(), RtError> {
        self.arena.add_dependency(task, on)
    }

    /// Run every task to completion, mutating `state`, and report timing.
    ///
    /// # Errors
    /// [`RtError::Deadlock`] when unfinished tasks can never run,
    /// [`RtError::Gpu`] when a GPU task exists without a device or a device
    /// operation fails.
    pub fn run(&mut self, state: &mut S) -> Result<RunReport, RtError> {
        // Transition every pre-created task out of *new*, enqueueing the
        // runnable ones: CPU roots seed worker 0 (stealing spreads them),
        // GPU roots seed the manager FIFO.
        for id in std::mem::take(&mut self.roots) {
            if self.arena.finalize(id) {
                self.enqueue_initial(id);
            }
        }
        if !self.manager.fifo.is_empty() && self.device.is_none() {
            return Err(RtError::Gpu(GpuError::NoGpu));
        }

        loop {
            match self.next_action() {
                Some((_, Action::PopOwn(i))) => self.act_pop_own(i, state)?,
                Some((_, Action::Steal(i))) => self.act_steal(i, state)?,
                Some((_, Action::Manager)) => self.act_manager(state)?,
                None => break,
            }
        }

        if self.arena.unfinished() > 0 {
            return Err(RtError::Deadlock { remaining: self.arena.unfinished() });
        }

        self.report.makespan = self.max_completion;
        self.report.worker_busy = self.workers.iter().map(|w| w.busy).collect();
        if let Some(d) = &self.device {
            if self.report.gpu_tasks > 0 {
                // The device timeline may extend past the last manager-side
                // completion only when nothing awaited it; outputs always
                // have copy-out completions, so this is a safety net.
                self.report.makespan = self.report.makespan.max(d.busy_until());
            }
            self.report.device = d.stats();
            self.report.device_busy = d.busy_secs();
        }
        Ok(self.report.clone())
    }

    fn enqueue_initial(&mut self, id: TaskId) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.fifo.push_back(QueueItem { task: id, arrival: 0.0 });
        } else {
            self.workers[0].deque.push(QueueItem { task: id, arrival: 0.0 });
        }
    }

    /// The earliest possible action across all entities; `None` when no
    /// queue holds work.
    fn next_action(&self) -> Option<(f64, Action)> {
        let mut best: Option<(f64, Action)> = None;
        let consider = |t: f64, a: Action, best: &mut Option<(f64, Action)>| {
            if best.map_or(true, |(bt, _)| t < bt) {
                *best = Some((t, a));
            }
        };
        let global_min_cpu = self
            .workers
            .iter()
            .filter_map(WorkerState::min_arrival)
            .fold(None::<f64>, |acc, a| Some(acc.map_or(a, |m| m.min(a))));
        for (i, w) in self.workers.iter().enumerate() {
            if let Some(arr) = w.min_arrival() {
                consider(w.free_at.max(arr), Action::PopOwn(i), &mut best);
            } else if let Some(arr) = global_min_cpu {
                // Only other deques hold work: this worker can steal.
                consider(w.free_at.max(arr), Action::Steal(i), &mut best);
            }
        }
        if let Some(arr) = self.manager.min_arrival() {
            consider(self.manager.free_at.max(arr), Action::Manager, &mut best);
        }
        best
    }

    fn act_pop_own(&mut self, i: usize, state: &mut S) -> Result<(), RtError> {
        let arr = self.workers[i].min_arrival().expect("PopOwn requires work");
        let t0 = self.workers[i].free_at.max(arr);
        let task = self.workers[i]
            .pop_top_eligible(t0)
            .expect("eligible item exists at t0 by construction");
        self.run_cpu_task(i, task, t0, state)
    }

    fn act_steal(&mut self, i: usize, state: &mut S) -> Result<(), RtError> {
        let global_min =
            self.workers.iter().filter_map(WorkerState::min_arrival).fold(f64::INFINITY, f64::min);
        let mut now = self.workers[i].free_at.max(global_min);
        let n = self.workers.len();
        let max_attempts = MAX_STEAL_ATTEMPTS_FACTOR * n.max(2);
        for _ in 0..max_attempts {
            let victim = self.rng.gen_range(0..n);
            now += self.cpu.steal_latency;
            self.report.steal_attempts += 1;
            if victim == i {
                continue;
            }
            if let Some(task) = self.workers[victim].steal_bottom_eligible(now) {
                self.report.steals += 1;
                return self.run_cpu_task(i, task, now, state);
            }
        }
        // Randomization failed repeatedly; deterministic sweep (victims with
        // eligible work must exist at `now` since time only advanced).
        for victim in 0..n {
            if victim == i {
                continue;
            }
            if let Some(task) = self.workers[victim].steal_bottom_eligible(now) {
                self.report.steals += 1;
                return self.run_cpu_task(i, task, now, state);
            }
        }
        // The work was taken by someone else in the meantime — record the
        // wasted time and return to the scheduling loop.
        self.workers[i].free_at = now;
        Ok(())
    }

    fn run_cpu_task(
        &mut self,
        worker: usize,
        task: TaskId,
        t0: f64,
        state: &mut S,
    ) -> Result<(), RtError> {
        let kind = self.arena.tasks[task.0].kind.take().expect("task body present");
        let f = match kind {
            TaskKind::Cpu(f) => f,
            TaskKind::Gpu(..) => unreachable!("CPU deques only hold CPU tasks"),
        };
        let mut ctx = CpuCtx::new(t0);
        let charge = f(state, &mut ctx);
        let secs = match charge {
            Charge::Work(w) => w.secs_on(&self.cpu),
            Charge::Secs(s) => s + self.cpu.task_overhead,
            Charge::WorkPlusSecs(w, s) => w.secs_on(&self.cpu) + s,
        };
        let t1 = t0 + secs;
        self.workers[worker].free_at = t1;
        self.workers[worker].busy += secs;
        self.report.cpu_tasks += 1;
        self.max_completion = self.max_completion.max(t1);

        // Merge dynamically spawned children and dependencies.
        let CpuCtx { spawned, deps, continuation, .. } = ctx;
        let mut new_ids = Vec::with_capacity(spawned.len());
        for kind in spawned {
            new_ids.push(self.arena.add(kind));
        }
        let resolve = |r: SpawnRef, ids: &[TaskId]| -> TaskId {
            match r {
                SpawnRef::Local(k) => ids[k],
                SpawnRef::Existing(id) => id,
            }
        };
        for (t, on) in deps {
            self.arena.add_dependency(resolve(t, &new_ids), resolve(on, &new_ids))?;
        }
        let cont_id = continuation.map(|k| new_ids[k]);
        if let Some(c) = cont_id {
            self.arena.continue_with(task, c);
        }
        // Children enter the schedule at t1 (or later, when they depend on
        // tasks that finished at a later virtual instant): CPU children on
        // top of this worker's deque in creation order, GPU children at
        // the FIFO back.
        for id in &new_ids {
            if self.arena.finalize(*id) {
                let ready = t1.max(self.arena.tasks[id.0].ready_at);
                self.enqueue_from_cpu(worker, *id, ready);
            }
        }
        if cont_id.is_none() {
            let woken = self.arena.complete(task, t1);
            for (id, ready_at) in woken {
                self.enqueue_from_cpu(worker, id, ready_at);
            }
        }
        Ok(())
    }

    /// Enqueue a task made runnable by CPU worker `worker` at time `t`:
    /// top of that worker's own deque, or the GPU FIFO (Fig. 5a/5c).
    fn enqueue_from_cpu(&mut self, worker: usize, id: TaskId, t: f64) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.fifo.push_back(QueueItem { task: id, arrival: t });
        } else {
            self.workers[worker].deque.push(QueueItem { task: id, arrival: t });
        }
    }

    fn act_manager(&mut self, state: &mut S) -> Result<(), RtError> {
        let arr = self.manager.min_arrival().expect("Manager requires work");
        let t0 = self.manager.free_at.max(arr);
        let task = self
            .manager
            .pop_front_eligible(t0)
            .expect("eligible item exists at t0 by construction");
        let mut kind = self.arena.tasks[task.0].kind.take().expect("task body present");
        let device = self.device.as_mut().ok_or(RtError::Gpu(GpuError::NoGpu))?;
        let outcome = {
            let TaskKind::Gpu(_, f) = &mut kind else {
                unreachable!("the FIFO only holds GPU tasks")
            };
            let mut ctx = GpuCtx { now: t0, device, dedup_hits: 0 };
            let out = f(state, &mut ctx)?;
            self.report.copy_in_dedup_hits += ctx.dedup_hits;
            out
        };
        match outcome {
            GpuOutcome::Done { manager_secs } => {
                let t1 = t0 + manager_secs;
                self.manager.free_at = t1;
                self.report.gpu_tasks += 1;
                self.max_completion = self.max_completion.max(t1);
                let woken = self.arena.complete(task, t1);
                for (id, ready_at) in woken {
                    self.enqueue_from_gpu(id, ready_at);
                }
            }
            GpuOutcome::Requeue { ready_at } => {
                self.arena.tasks[task.0].kind = Some(kind);
                let arrival = ready_at.max(t0 + POLL_COST);
                self.manager.fifo.push_back(QueueItem { task, arrival });
                self.manager.free_at = t0 + POLL_COST;
                self.report.copy_out_requeues += 1;
            }
        }
        Ok(())
    }

    /// Enqueue a task made runnable by the GPU manager at time `t`: bottom
    /// of a *random* worker's deque for CPU tasks (Fig. 5b), FIFO back for
    /// GPU tasks.
    fn enqueue_from_gpu(&mut self, id: TaskId, t: f64) {
        if self.arena.tasks[id.0].is_gpu {
            self.manager.fifo.push_back(QueueItem { task: id, arrival: t });
        } else {
            let w = self.rng.gen_range(0..self.workers.len());
            self.workers[w].deque.insert(0, QueueItem { task: id, arrival: t });
        }
    }
}

// Compile-time guarantee behind the evaluation farm: an engine whose host
// state is `Send` can be moved to a worker thread wholesale (task closures
// carry a `Send` bound, the device owns no thread-local state).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn engine_is_send<S: Send>() {
        assert_send::<Engine<S>>();
    }
    engine_is_send::<()>();
};

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("tasks", &self.arena.tasks.len())
            .field("has_device", &self.device.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::GpuTaskClass;
    use petal_gpu::cost::CpuWork;

    fn machine() -> MachineProfile {
        MachineProfile::desktop()
    }

    #[test]
    fn single_task_runs_and_charges_time() {
        let mut e: Engine<u32> = Engine::new(&machine(), 1);
        e.add_cpu_task(|s, _| {
            *s += 1;
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        let mut s = 0u32;
        let r = e.run(&mut s).unwrap();
        assert_eq!(s, 1);
        // 2.5e9 flops on a 2.5e9 flop/s core ≈ 1 second.
        assert!((r.makespan - 1.0).abs() < 1e-3, "makespan {}", r.makespan);
        assert_eq!(r.cpu_tasks, 1);
    }

    #[test]
    fn independent_tasks_run_in_parallel_via_stealing() {
        let mut e: Engine<()> = Engine::new(&machine(), 7);
        for _ in 0..4 {
            e.add_cpu_task(|_, _| Charge::Work(CpuWork::new(2.5e9, 0.0)));
        }
        let r = e.run(&mut ()).unwrap();
        // Four 1-second tasks on four workers: ≈ 1 second, not 4.
        assert!(r.makespan < 1.5, "makespan {}", r.makespan);
        assert!(r.steals >= 3, "steals {}", r.steals);
    }

    #[test]
    fn dependencies_serialize() {
        let mut e: Engine<Vec<u32>> = Engine::new(&machine(), 3);
        let a = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(1);
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        let b = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(2);
            Charge::Work(CpuWork::new(2.5e9, 0.0))
        });
        e.add_dependency(b, a).unwrap();
        let mut s = Vec::new();
        let r = e.run(&mut s).unwrap();
        assert_eq!(s, vec![1, 2]);
        assert!(r.makespan >= 2.0, "sequential chain: {}", r.makespan);
    }

    #[test]
    fn dynamic_spawn_with_continuation() {
        // A parent spawns two children and a continuation that sums their
        // results; an external waiter depends on the parent and must see
        // the continuation's output (dependent forwarding).
        let mut e: Engine<Vec<f64>> = Engine::new(&machine(), 5);
        let parent = e.add_cpu_task(|_s, ctx: &mut CpuCtx<Vec<f64>>| {
            let c1 = ctx.spawn_cpu(|s, _| {
                s[0] = 10.0;
                Charge::Secs(1e-6)
            });
            let c2 = ctx.spawn_cpu(|s, _| {
                s[1] = 32.0;
                Charge::Secs(1e-6)
            });
            let cont = ctx.spawn_cpu(|s, _| {
                s[2] = s[0] + s[1];
                Charge::Secs(1e-6)
            });
            ctx.depend(cont, c1);
            ctx.depend(cont, c2);
            ctx.set_continuation(cont);
            Charge::Secs(1e-6)
        });
        let waiter = e.add_cpu_task(|s: &mut Vec<f64>, _| {
            s[3] = s[2] * 2.0;
            Charge::Secs(1e-6)
        });
        e.add_dependency(waiter, parent).unwrap();
        let mut s = vec![0.0; 4];
        e.run(&mut s).unwrap();
        assert_eq!(s, vec![10.0, 32.0, 42.0, 84.0]);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut e: Engine<()> = Engine::new(&machine(), 1);
        let a = e.add_cpu_task(|_, _| Charge::Secs(0.0));
        let b = e.add_cpu_task(|_, _| Charge::Secs(0.0));
        // Cycle: a→b→a.
        e.add_dependency(a, b).unwrap();
        e.add_dependency(b, a).unwrap();
        let err = e.run(&mut ()).unwrap_err();
        assert_eq!(err, RtError::Deadlock { remaining: 2 });
    }

    #[test]
    fn gpu_task_without_device_errors() {
        let mut m = machine();
        m.gpu = None;
        let mut e: Engine<()> = Engine::new(&m, 1);
        e.add_gpu_task(GpuTaskClass::Prepare, |_, _| Ok(GpuOutcome::Done { manager_secs: 0.0 }));
        assert!(matches!(e.run(&mut ()), Err(RtError::Gpu(GpuError::NoGpu))));
    }

    #[test]
    fn gpu_chain_runs_in_fifo_order_and_wakes_cpu() {
        // prepare -> copy-in -> execute -> copy-out completion; a CPU task
        // depends on the copy-out. Uses the device only for its timeline.
        let mut e: Engine<Vec<f64>> = Engine::new(&machine(), 11);
        let prep = e.add_gpu_task(GpuTaskClass::Prepare, |_, ctx| {
            let overhead = ctx.device.profile().alloc_overhead;
            Ok(GpuOutcome::Done { manager_secs: overhead })
        });
        let copy = e.add_gpu_task(GpuTaskClass::CopyIn, |s: &mut Vec<f64>, ctx| {
            s[0] = 1.0;
            Ok(GpuOutcome::Done { manager_secs: ctx.device.profile().transfer_overhead })
        });
        // "Kernel" finishes on the device 1ms after issue.
        let exec = e.add_gpu_task(GpuTaskClass::Execute, |s: &mut Vec<f64>, ctx| {
            s[1] = s[0] + 1.0;
            s[3] = ctx.now + 1e-3; // completion time of the modeled read
            Ok(GpuOutcome::Done { manager_secs: 2e-6 })
        });
        let done = e.add_gpu_task(GpuTaskClass::CopyOutDone, |s: &mut Vec<f64>, ctx| {
            if ctx.now < s[3] {
                Ok(GpuOutcome::Requeue { ready_at: s[3] })
            } else {
                s[2] = s[1] * 2.0;
                Ok(GpuOutcome::Done { manager_secs: 1e-6 })
            }
        });
        let cpu = e.add_cpu_task(|s: &mut Vec<f64>, _| {
            s[4] = s[2] + 0.5;
            Charge::Secs(1e-6)
        });
        e.add_dependency(cpu, done).unwrap();
        // FIFO order comes from creation order of the root GPU tasks; the
        // copy-out poll must requeue at least once.
        let _ = (prep, copy, exec);
        let mut s = vec![0.0; 5];
        let r = e.run(&mut s).unwrap();
        assert_eq!(s[2], 4.0);
        assert_eq!(s[4], 4.5);
        assert!(r.copy_out_requeues >= 1, "requeues {}", r.copy_out_requeues);
        assert!(r.makespan >= 1e-3, "makespan must cover the device read");
        assert_eq!(r.gpu_tasks, 4);
        assert_eq!(r.cpu_tasks, 1);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut e: Engine<()> = Engine::new(&machine(), seed);
            for i in 0..32 {
                e.add_cpu_task(move |_, _| Charge::Work(CpuWork::new(1e6 * (i + 1) as f64, 0.0)));
            }
            e.run(&mut ()).unwrap()
        };
        let a = run(123);
        let b = run(123);
        assert_eq!(a, b);
        let c = run(124);
        // Different seed: same work, almost surely different steal pattern.
        assert_eq!(c.cpu_tasks, a.cpu_tasks);
    }

    #[test]
    fn worker_count_override() {
        let mut e: Engine<()> = Engine::with_workers(&machine(), 1, 1);
        for _ in 0..4 {
            e.add_cpu_task(|_, _| Charge::Work(CpuWork::new(2.5e9, 0.0)));
        }
        let r = e.run(&mut ()).unwrap();
        assert_eq!(e.worker_count(), 1);
        assert!(r.makespan >= 4.0, "serial on one worker: {}", r.makespan);
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn late_dependency_on_complete_task_is_noop() {
        let mut e: Engine<Vec<u32>> = Engine::new(&machine(), 2);
        let a = e.add_cpu_task(|s: &mut Vec<u32>, _| {
            s.push(1);
            Charge::Secs(1e-9)
        });
        // b spawns a child depending on `a`, which long completed.
        let b = e.add_cpu_task(move |_, ctx: &mut CpuCtx<Vec<u32>>| {
            let child = ctx.spawn_cpu(|s, _| {
                s.push(3);
                Charge::Secs(1e-9)
            });
            ctx.depend(child, SpawnRef::Existing(a));
            Charge::Secs(1e-3)
        });
        e.add_dependency(b, a).unwrap();
        let mut s = Vec::new();
        e.run(&mut s).unwrap();
        assert_eq!(s, vec![1, 3]);
    }
}

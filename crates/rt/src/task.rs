//! The task model of §4.1–4.2.
//!
//! Tasks are nodes of an arbitrary acyclic dependency graph. Each task has a
//! state, a dependency count and a list of dependent tasks; completion
//! decrements dependents' counts and enqueues those that reach zero. A task
//! may return a *continuation* task, which inherits its dependents.
//!
//! Two task kinds exist: CPU tasks (scheduled by workstealing among worker
//! deques) and GPU tasks (pushed to the GPU management thread's FIFO). GPU
//! tasks come in the four classes of §4.2.

use crate::RtError;
use petal_gpu::cost::CpuWork;
use petal_gpu::device::Device;
use petal_gpu::GpuError;

/// Identifier of a task within one [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Raw index, for diagnostics.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The five task states of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Being constructed; dependencies may still be added.
    New,
    /// Waiting on a non-zero dependency count. Stored only in the
    /// dependents lists of other tasks.
    NonRunnable,
    /// Zero dependencies; in exactly one deque / the GPU FIFO, or running.
    Runnable,
    /// Executed, no continuation. Depending on a complete task is a no-op.
    Complete,
    /// Executed and returned a continuation; dependents were forwarded to it.
    Continued,
}

/// The four classes of GPU tasks run by the GPU management thread (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuTaskClass {
    /// Allocate buffers and update metadata for a kernel execution.
    Prepare,
    /// Non-blocking host→device copy of one input; completes immediately
    /// after the call (or instantly when deduplicated by the buffer table).
    CopyIn,
    /// Launch the kernel asynchronously, issue non-blocking reads for
    /// *must-copy-out* regions, register *may-copy-out* regions as pending.
    Execute,
    /// Poll the non-blocking read; if still in flight, the manager pushes
    /// this task to the back of its queue.
    CopyOutDone,
}

/// Virtual time charged by a CPU task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Charge {
    /// Charge from a work descriptor via the machine's CPU roofline model.
    Work(CpuWork),
    /// Charge a fixed number of virtual seconds (plus per-task overhead).
    Secs(f64),
    /// Charge both model work and fixed seconds (e.g. a lazy copy-out wait
    /// followed by compute).
    WorkPlusSecs(CpuWork, f64),
}

/// Result of one invocation of a GPU task closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuOutcome {
    /// The task is complete; the manager was busy `manager_secs` issuing
    /// the non-blocking call.
    Done {
        /// Seconds the GPU management thread spent on the call.
        manager_secs: f64,
    },
    /// A copy-out is still in flight; re-enqueue at the back of the FIFO,
    /// eligible again at `ready_at` (the device-side completion time).
    Requeue {
        /// Virtual time when the polled event completes.
        ready_at: f64,
    },
}

/// Closure type for CPU tasks. `Send` because an [`crate::Engine`] (and the
/// whole per-trial evaluation state around it) must be movable onto a farm
/// worker thread.
pub type CpuFn<S> = Box<dyn FnOnce(&mut S, &mut CpuCtx<S>) -> Charge + Send>;
/// Closure type for GPU tasks (FnMut: a copy-out poll may run repeatedly).
pub type GpuFn<S> = Box<dyn FnMut(&mut S, &mut GpuCtx<'_>) -> Result<GpuOutcome, GpuError> + Send>;

/// What a task does when executed.
pub enum TaskKind<S> {
    /// Runs on a CPU worker.
    Cpu(CpuFn<S>),
    /// Runs on the GPU management thread.
    Gpu(GpuTaskClass, GpuFn<S>),
}

impl<S> std::fmt::Debug for TaskKind<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Cpu(_) => f.write_str("Cpu(..)"),
            TaskKind::Gpu(c, _) => write!(f, "Gpu({c:?}, ..)"),
        }
    }
}

/// Context handed to CPU task closures: the current virtual time plus a
/// spawn buffer for dynamically created child tasks (the mechanism behind
/// recursive poly-algorithms and deferred continuation scheduling).
pub struct CpuCtx<S> {
    pub(crate) now: f64,
    pub(crate) spawned: Vec<TaskKind<S>>,
    pub(crate) deps: Vec<(SpawnRef, SpawnRef)>,
    pub(crate) continuation: Option<usize>,
}

/// Reference to a task from inside a CPU closure: either one spawned in this
/// closure or a pre-existing task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnRef {
    /// The `n`-th task spawned by this closure.
    Local(usize),
    /// A task that already existed before this closure ran.
    Existing(TaskId),
}

impl From<TaskId> for SpawnRef {
    fn from(id: TaskId) -> Self {
        SpawnRef::Existing(id)
    }
}

impl<S> CpuCtx<S> {
    pub(crate) fn new(now: f64) -> Self {
        CpuCtx { now, spawned: Vec::new(), deps: Vec::new(), continuation: None }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Spawn a child CPU task. Children are pushed onto the top of the
    /// executing worker's deque in creation order when this task finishes.
    pub fn spawn_cpu(
        &mut self,
        f: impl FnOnce(&mut S, &mut CpuCtx<S>) -> Charge + Send + 'static,
    ) -> SpawnRef {
        self.spawned.push(TaskKind::Cpu(Box::new(f)));
        SpawnRef::Local(self.spawned.len() - 1)
    }

    /// Spawn a child GPU task; it is pushed to the bottom of the GPU
    /// management thread's FIFO when this task finishes.
    pub fn spawn_gpu(
        &mut self,
        class: GpuTaskClass,
        f: impl FnMut(&mut S, &mut GpuCtx<'_>) -> Result<GpuOutcome, GpuError> + Send + 'static,
    ) -> SpawnRef {
        self.spawned.push(TaskKind::Gpu(class, Box::new(f)));
        SpawnRef::Local(self.spawned.len() - 1)
    }

    /// Declare that `task` cannot run until `on` completes.
    pub fn depend(&mut self, task: SpawnRef, on: SpawnRef) {
        self.deps.push((task, on));
    }

    /// Nominate a spawned child as this task's *continuation*: the current
    /// task transitions to [`TaskState::Continued`] and its dependents are
    /// forwarded to the child.
    ///
    /// # Panics
    /// Panics if `c` is not a local spawn of this closure.
    pub fn set_continuation(&mut self, c: SpawnRef) {
        match c {
            SpawnRef::Local(i) => self.continuation = Some(i),
            SpawnRef::Existing(_) => panic!("continuation must be spawned by the same closure"),
        }
    }
}

/// Context handed to GPU task closures by the GPU management thread.
pub struct GpuCtx<'a> {
    /// Current virtual time (when the manager issues the call).
    pub now: f64,
    /// The simulated OpenCL device.
    pub device: &'a mut Device,
    pub(crate) dedup_hits: usize,
}

impl GpuCtx<'_> {
    /// Record a copy-in that was skipped because the buffer table already
    /// held the data (§4.3 copy-in management).
    pub fn note_dedup_hit(&mut self) {
        self.dedup_hits += 1;
    }
}

/// A task record in the arena.
pub(crate) struct Task<S> {
    pub(crate) state: TaskState,
    /// Taken (set to `None`) when the task starts executing.
    pub(crate) kind: Option<TaskKind<S>>,
    pub(crate) dep_count: usize,
    pub(crate) dependents: Vec<TaskId>,
    /// Forwarding pointer for `Continued` tasks.
    pub(crate) continuation: Option<TaskId>,
    pub(crate) is_gpu: bool,
    /// Latest virtual completion time among satisfied dependencies: the
    /// earliest instant this task may start. (The engine executes tasks
    /// atomically in processing order, so the *last-processed* dependency
    /// is not necessarily the *latest-finishing* one.)
    pub(crate) ready_at: f64,
    /// Virtual time this task completed (valid in `Complete`/`Continued`).
    pub(crate) completed_at: f64,
}

/// The task arena: owns every task of one engine run.
pub(crate) struct Arena<S> {
    pub(crate) tasks: Vec<Task<S>>,
}

impl<S> Arena<S> {
    pub(crate) fn new() -> Self {
        Arena { tasks: Vec::new() }
    }

    pub(crate) fn add(&mut self, kind: TaskKind<S>) -> TaskId {
        let is_gpu = matches!(kind, TaskKind::Gpu(..));
        self.tasks.push(Task {
            state: TaskState::New,
            kind: Some(kind),
            dep_count: 0,
            dependents: Vec::new(),
            continuation: None,
            is_gpu,
            ready_at: 0.0,
            completed_at: 0.0,
        });
        TaskId(self.tasks.len() - 1)
    }

    pub(crate) fn get(&self, id: TaskId) -> Result<&Task<S>, RtError> {
        self.tasks.get(id.0).ok_or(RtError::UnknownTask(id))
    }

    /// Follow `Continued` forwarding pointers to the live target (§4.1:
    /// "subsequent attempts to depend on this task instead depend on the
    /// continuation task, possibly recursively").
    pub(crate) fn resolve(&self, mut id: TaskId) -> TaskId {
        while let Some(t) = self.tasks.get(id.0) {
            match (t.state, t.continuation) {
                (TaskState::Continued, Some(next)) => id = next,
                _ => break,
            }
        }
        id
    }

    /// Add a dependency: `task` (which must be `New`) waits for `on`.
    ///
    /// Depending on a `Complete` task is a no-op; depending on a `Continued`
    /// task depends on its continuation.
    pub(crate) fn add_dependency(&mut self, task: TaskId, on: TaskId) -> Result<(), RtError> {
        if self.get(task)?.state != TaskState::New {
            return Err(RtError::DependencyOnStartedTask { task });
        }
        let on = self.resolve(on);
        if self.get(on)?.state == TaskState::Complete {
            // No count to track (§4.1), but the dependent still must not
            // start before the completed task's virtual finish time.
            let done_at = self.tasks[on.0].completed_at;
            let t = &mut self.tasks[task.0];
            t.ready_at = t.ready_at.max(done_at);
            return Ok(());
        }
        self.tasks[on.0].dependents.push(task);
        self.tasks[task.0].dep_count += 1;
        Ok(())
    }

    /// Finish dependency creation for a `New` task: it becomes `Runnable`
    /// (returned as `true`, caller must enqueue it) or `NonRunnable`.
    pub(crate) fn finalize(&mut self, id: TaskId) -> bool {
        let t = &mut self.tasks[id.0];
        debug_assert_eq!(t.state, TaskState::New, "finalize() twice on {id:?}");
        if t.dep_count == 0 {
            t.state = TaskState::Runnable;
            true
        } else {
            t.state = TaskState::NonRunnable;
            false
        }
    }

    /// Mark `id` complete at virtual time `at`; push the dependents that
    /// became runnable into `woken` (cleared first), paired with the
    /// earliest virtual time each may start (the max of all its
    /// dependencies' completion times). Takes a caller-owned buffer so the
    /// engine's completion hot path reuses one allocation run-long.
    pub(crate) fn complete(&mut self, id: TaskId, at: f64, woken: &mut Vec<(TaskId, f64)>) {
        woken.clear();
        self.tasks[id.0].state = TaskState::Complete;
        self.tasks[id.0].completed_at = at;
        let dependents = std::mem::take(&mut self.tasks[id.0].dependents);
        for d in &dependents {
            let dt = &mut self.tasks[d.0];
            debug_assert!(dt.dep_count > 0);
            dt.dep_count -= 1;
            dt.ready_at = dt.ready_at.max(at);
            if dt.dep_count == 0 && dt.state == TaskState::NonRunnable {
                dt.state = TaskState::Runnable;
                woken.push((*d, dt.ready_at));
            }
        }
    }

    /// Mark `id` continued by `cont`, transferring its dependents.
    pub(crate) fn continue_with(&mut self, id: TaskId, cont: TaskId) {
        let dependents = std::mem::take(&mut self.tasks[id.0].dependents);
        self.tasks[id.0].state = TaskState::Continued;
        self.tasks[id.0].continuation = Some(cont);
        self.tasks[cont.0].dependents.extend(dependents);
    }

    pub(crate) fn unfinished(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| !matches!(t.state, TaskState::Complete | TaskState::Continued))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = ();

    fn noop() -> TaskKind<S> {
        TaskKind::Cpu(Box::new(|_, _| Charge::Secs(0.0)))
    }

    #[test]
    fn dependency_counting_and_wakeup() {
        let mut a: Arena<S> = Arena::new();
        let t1 = a.add(noop());
        let t2 = a.add(noop());
        a.add_dependency(t2, t1).unwrap();
        assert!(a.finalize(t1));
        assert!(!a.finalize(t2));
        assert_eq!(a.get(t2).unwrap().state, TaskState::NonRunnable);
        let mut woken = Vec::new();
        a.complete(t1, 1.0, &mut woken);
        assert_eq!(woken, vec![(t2, 1.0)]);
        assert_eq!(a.get(t2).unwrap().state, TaskState::Runnable);
    }

    #[test]
    fn depending_on_complete_task_is_noop() {
        let mut a: Arena<S> = Arena::new();
        let t1 = a.add(noop());
        a.finalize(t1);
        a.complete(t1, 1.0, &mut Vec::new());
        let t2 = a.add(noop());
        a.add_dependency(t2, t1).unwrap();
        assert_eq!(a.get(t2).unwrap().dep_count, 0);
        assert!(a.finalize(t2));
    }

    #[test]
    fn dependency_after_start_is_rejected() {
        let mut a: Arena<S> = Arena::new();
        let t1 = a.add(noop());
        let t2 = a.add(noop());
        a.finalize(t2);
        let err = a.add_dependency(t2, t1).unwrap_err();
        assert_eq!(err, RtError::DependencyOnStartedTask { task: t2 });
    }

    #[test]
    fn continuation_inherits_dependents_and_forwards() {
        let mut a: Arena<S> = Arena::new();
        let t1 = a.add(noop());
        let waiter = a.add(noop());
        a.add_dependency(waiter, t1).unwrap();
        a.finalize(t1);
        a.finalize(waiter);
        // t1 runs and continues into c.
        let c = a.add(noop());
        a.continue_with(t1, c);
        assert_eq!(a.get(t1).unwrap().state, TaskState::Continued);
        // waiter is still blocked: its dependency now comes from c.
        assert_eq!(a.get(waiter).unwrap().state, TaskState::NonRunnable);
        // New dependencies on t1 resolve to c.
        let late = a.add(noop());
        a.add_dependency(late, t1).unwrap();
        assert_eq!(a.resolve(t1), c);
        assert_eq!(a.get(late).unwrap().dep_count, 1);
        a.finalize(c);
        let mut woken = Vec::new();
        a.complete(c, 2.0, &mut woken);
        assert!(woken.iter().any(|(w, _)| *w == waiter));
        // `late` was still `New`, so completion satisfied its dependency
        // without waking it; finalize now sees zero dependencies.
        assert_eq!(a.get(late).unwrap().dep_count, 0);
        assert!(a.finalize(late));
    }

    #[test]
    fn chained_continuations_resolve_recursively() {
        let mut a: Arena<S> = Arena::new();
        let t = a.add(noop());
        a.finalize(t);
        let c1 = a.add(noop());
        a.continue_with(t, c1);
        a.finalize(c1);
        let c2 = a.add(noop());
        a.continue_with(c1, c2);
        assert_eq!(a.resolve(t), c2);
    }

    #[test]
    fn unfinished_counts_live_tasks() {
        let mut a: Arena<S> = Arena::new();
        let t1 = a.add(noop());
        let t2 = a.add(noop());
        a.finalize(t1);
        a.finalize(t2);
        assert_eq!(a.unfinished(), 2);
        a.complete(t1, 0.5, &mut Vec::new());
        assert_eq!(a.unfinished(), 1);
    }
}

//! Run statistics reported by the engine.

use petal_gpu::device::DeviceStats;

/// Everything measured during one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Virtual time at which the last task completed (the result the
    /// autotuner minimizes).
    pub makespan: f64,
    /// Busy virtual seconds per CPU worker.
    pub worker_busy: Vec<f64>,
    /// CPU tasks executed.
    pub cpu_tasks: usize,
    /// GPU tasks executed (all four classes, excluding re-queued polls).
    pub gpu_tasks: usize,
    /// Successful steals.
    pub steals: usize,
    /// Steal attempts (successful + failed).
    pub steal_attempts: usize,
    /// Copy-in tasks short-circuited by the device residency table (§4.3).
    pub copy_in_dedup_hits: usize,
    /// Copy-out polls that found the read still in flight and re-queued.
    pub copy_out_requeues: usize,
    /// Scheduling decisions taken (one per engine hot-loop iteration):
    /// the "events" of the discrete-event simulation, and the numerator
    /// of the `bench_hotpath` events/sec throughput metric.
    pub sched_steps: usize,
    /// Eligible pops/steals that missed the O(1) fast path (the item at
    /// the preferred queue end had not arrived yet) and had to scan the
    /// queue. A pure function of queue contents, so identical under every
    /// [`crate::SchedPolicy`]; future profiling PRs can attribute queue
    /// time without re-instrumenting.
    pub eligibility_rescans: usize,
    /// Device activity during this run (zeroed if the machine has no GPU).
    pub device: DeviceStats,
    /// Device busy virtual seconds.
    pub device_busy: f64,
}

impl RunReport {
    /// Aggregate CPU utilization in `[0, 1]`: busy worker-seconds over
    /// `workers × makespan`.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.worker_busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().sum();
        busy / (self.makespan * self.worker_busy.len() as f64)
    }

    /// Device utilization in `[0, 1]`.
    #[must_use]
    pub fn device_utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (self.device_busy / self.makespan).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let r = RunReport {
            makespan: 2.0,
            worker_busy: vec![1.0, 2.0],
            device_busy: 1.0,
            ..RunReport::default()
        };
        assert!((r.cpu_utilization() - 0.75).abs() < 1e-12);
        assert!((r.device_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(RunReport::default().cpu_utilization(), 0.0);
    }
}

//! Compact DAG reachability over dependency lists.
//!
//! The static verifier (`petal-analysis`) and the plan hazard check in
//! `petal-core` both need the same primitive the engine's dependency
//! machinery implies but never materializes: *is there an ordering path
//! from node `a` to node `b`?* [`Reachability`] answers that in O(1) after
//! an O(V·E/64) bitset transitive closure, which is cheap for the plan
//! sizes the executor sees (recursion lives *inside* native tasks, so
//! schedule DAGs stay small even for the recursive benchmarks).
//!
//! Nodes are `0..n` and every edge must point to a strictly smaller index
//! (the invariant `PlanBuilder` and `Engine::add_dependency` both enforce:
//! dependencies reference already-created tasks), which makes the closure a
//! single forward sweep with no cycle handling.

/// Transitive-closure reachability over a DAG given as per-node dependency
/// (predecessor) lists.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// `words` per row: row `i` is the bitset of nodes `i` can reach
    /// (its transitive dependencies), excluding `i` itself.
    rows: Vec<u64>,
    words: usize,
    n: usize,
}

impl Reachability {
    /// Build the closure from per-node dependency lists. `deps(i)` must
    /// yield only indices `< i` (creation order), which every petal DAG
    /// builder guarantees.
    ///
    /// # Panics
    /// Panics if a dependency index is `>=` its node's index (a forward or
    /// self edge — those cannot occur in a creation-ordered DAG).
    #[must_use]
    pub fn from_deps<F, I>(n: usize, mut deps: F) -> Self
    where
        F: FnMut(usize) -> I,
        I: IntoIterator<Item = usize>,
    {
        let words = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words];
        for i in 0..n {
            for d in deps(i) {
                assert!(d < i, "dependency {d} of node {i} is not an earlier node");
                rows[i * words + d / 64] |= 1 << (d % 64);
                // Union the dependency's own closure row into ours. The two
                // rows never overlap as borrows (d < i), split_at_mut keeps
                // the borrow checker happy without unsafe.
                let (lo, hi) = rows.split_at_mut(i * words);
                let src = &lo[d * words..d * words + words];
                let dst = &mut hi[..words];
                for (dw, sw) in dst.iter_mut().zip(src) {
                    *dw |= *sw;
                }
            }
        }
        Reachability { rows, words, n }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when `from` transitively depends on `to` (an ordering path
    /// exists forcing `to` to complete before `from` starts).
    ///
    /// # Panics
    /// Panics when either index is out of range.
    #[must_use]
    pub fn depends_on(&self, from: usize, to: usize) -> bool {
        assert!(from < self.n && to < self.n, "node index out of range");
        self.rows[from * self.words + to / 64] & (1 << (to % 64)) != 0
    }

    /// True when the two nodes are ordered either way; `false` means their
    /// relative execution order is up to the scheduler.
    #[must_use]
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        a == b || self.depends_on(a, b) || self.depends_on(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 3 depends on 1 and 2, both depend on 0.
    fn diamond() -> Reachability {
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0], vec![1, 2]];
        Reachability::from_deps(4, |i| deps[i].clone())
    }

    #[test]
    fn direct_and_transitive_edges_reach() {
        let r = diamond();
        assert!(r.depends_on(1, 0));
        assert!(r.depends_on(3, 1));
        assert!(r.depends_on(3, 0), "transitive through either branch");
    }

    #[test]
    fn siblings_are_unordered() {
        let r = diamond();
        assert!(!r.depends_on(1, 2));
        assert!(!r.depends_on(2, 1));
        assert!(!r.ordered(1, 2));
        assert!(r.ordered(3, 0));
        assert!(r.ordered(2, 2), "a node is ordered with itself");
    }

    #[test]
    fn dependencies_never_point_forward() {
        let r = diamond();
        assert!(!r.depends_on(0, 3));
    }

    #[test]
    fn empty_and_singleton() {
        let r = Reachability::from_deps(0, |_| Vec::new());
        assert!(r.is_empty());
        let r = Reachability::from_deps(1, |_| Vec::new());
        assert_eq!(r.len(), 1);
        assert!(r.ordered(0, 0));
    }

    #[test]
    fn wide_graph_crosses_word_boundaries() {
        // 200 nodes: a chain 0..100, plus 100 independent leaves that all
        // depend on node 99.
        let r = Reachability::from_deps(200, |i| {
            if i == 0 {
                vec![]
            } else if i < 100 {
                vec![i - 1]
            } else {
                vec![99]
            }
        });
        assert!(r.depends_on(99, 0));
        assert!(r.depends_on(150, 0), "leaves reach the whole chain");
        assert!(!r.ordered(150, 151), "leaves are mutually unordered");
    }

    #[test]
    #[should_panic(expected = "not an earlier node")]
    fn forward_edge_panics() {
        let _ = Reachability::from_deps(2, |i| if i == 0 { vec![1] } else { vec![] });
    }
}

//! Tiny OpenCL C source builder.
//!
//! `petal-core`'s code generator emits real OpenCL C text for every
//! synthesized kernel (both the global-memory and the local-memory
//! variants). The text is what the compile cache hashes, what golden tests
//! pin, and what a user would inspect to audit the generated code. This
//! module provides the low-level string assembly.

use std::fmt::Write as _;

/// Indentation-aware OpenCL C source writer.
#[derive(Debug, Default, Clone)]
pub struct SourceBuilder {
    out: String,
    indent: usize,
}

impl SourceBuilder {
    /// Fresh builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one line at the current indentation.
    pub fn line(&mut self, text: &str) -> &mut Self {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
        self
    }

    /// Append a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.out.push('\n');
        self
    }

    /// Open a block: emits `header {` and indents.
    pub fn open(&mut self, header: &str) -> &mut Self {
        self.line(&format!("{header} {{"));
        self.indent += 1;
        self
    }

    /// Close a block: dedents and emits `}`.
    ///
    /// # Panics
    /// Panics if there is no open block.
    pub fn close(&mut self) -> &mut Self {
        assert!(self.indent > 0, "close() without matching open()");
        self.indent -= 1;
        self.line("}")
    }

    /// Finish and return the assembled source.
    ///
    /// # Panics
    /// Panics if blocks remain open.
    #[must_use]
    pub fn build(self) -> String {
        assert_eq!(self.indent, 0, "unclosed block in generated source");
        self.out
    }
}

/// Render a `__kernel` function signature.
///
/// `buffers` are `(qualifier, name)` pairs — e.g. `("__global const double*",
/// "in")` — and `scalars` are plain `int`/`double` parameter names.
#[must_use]
pub fn kernel_signature(name: &str, buffers: &[(&str, &str)], scalars: &[(&str, &str)]) -> String {
    let mut sig = String::new();
    let _ = write!(sig, "__kernel void {name}(");
    let mut first = true;
    for (qual, pname) in buffers {
        if !first {
            sig.push_str(", ");
        }
        let _ = write!(sig, "{qual} {pname}");
        first = false;
    }
    for (ty, pname) in scalars {
        if !first {
            sig.push_str(", ");
        }
        let _ = write!(sig, "{ty} {pname}");
        first = false;
    }
    sig.push(')');
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_nested_blocks() {
        let mut b = SourceBuilder::new();
        b.open("__kernel void f(__global double* x)");
        b.line("int i = get_global_id(0);");
        b.open("if (i < 4)");
        b.line("x[i] *= 2.0;");
        b.close();
        b.close();
        let src = b.build();
        assert!(src.contains("__kernel void f(__global double* x) {"));
        assert!(src.contains("    int i = get_global_id(0);"));
        assert!(src.contains("        x[i] *= 2.0;"));
        assert!(src.trim_end().ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "unclosed block")]
    fn unclosed_block_panics_on_build() {
        let mut b = SourceBuilder::new();
        b.open("if (1)");
        let _ = b.build();
    }

    #[test]
    fn signature_rendering() {
        let sig = kernel_signature(
            "convolve_rows",
            &[("__global const double*", "in"), ("__global double*", "out")],
            &[("int", "w"), ("int", "kwidth")],
        );
        assert_eq!(
            sig,
            "__kernel void convolve_rows(__global const double* in, __global double* out, int w, int kwidth)"
        );
    }
}

//! Machine and device profiles.
//!
//! A [`MachineProfile`] captures everything the cost model needs to know
//! about one heterogeneous machine: its CPU (core count, per-core scalar
//! throughput, memory bandwidth, scheduling overheads) and, optionally, an
//! OpenCL device. The three presets mirror Figure 9 of the paper:
//!
//! | Codename  | CPU                          | OpenCL device                          |
//! |-----------|------------------------------|----------------------------------------|
//! | `desktop` | Core i7 920, 4 cores @2.67GHz | NVIDIA Tesla C2070 (discrete, fast)    |
//! | `server`  | 4× Xeon X7550, 32 cores @2GHz | none — CPU-backed runtime (SSE codegen)|
//! | `laptop`  | Core i5 2520M, 2 cores @2.5GHz| AMD Radeon HD 6630M (mobile, weak)     |
//!
//! Absolute numbers are calibrated so the *relative* behaviour the paper
//! reports emerges (see `DESIGN.md` §6); they are not vendor datasheets.

use std::fmt;

/// CPU side of a machine: the workstealing backend's hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuProfile {
    /// Marketing name, for reports (Fig. 9 column "CPU(s)").
    pub name: String,
    /// Number of hardware cores (= default worker count).
    pub cores: usize,
    /// Effective *scalar* floating-point throughput of one core, flop/s.
    ///
    /// The paper's CPU backend emits portable C++ (unvectorized), so this is
    /// deliberately far below the SIMD peak.
    pub flops_per_core: f64,
    /// Aggregate main-memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed scheduling overhead charged per executed task, seconds.
    pub task_overhead: f64,
    /// Latency of one (successful or failed) steal attempt, seconds.
    pub steal_latency: f64,
}

impl CpuProfile {
    /// Memory bandwidth available to one task, bytes/s.
    ///
    /// A fair share of the aggregate, floored at one eighth: a lone stream
    /// on a many-core machine is limited by its own load queue, not by a
    /// 1/32 slice of the socket bandwidth.
    #[must_use]
    pub fn mem_bw_per_core(&self) -> f64 {
        self.mem_bw / (self.cores.min(8)) as f64
    }
}

/// OpenCL device side of a machine.
///
/// When `cpu_backed` is true the "device" is an OpenCL runtime that JITs
/// vectorized code for the host CPU (the paper's Server machine): transfers
/// are cheap memcpys and scratchpad "local memory" maps onto the same caches
/// as ordinary loads, so explicit staging is pure overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// Marketing name, for reports (Fig. 9 column "GPU").
    pub name: String,
    /// Aggregate device floating-point throughput, flop/s.
    pub flops: f64,
    /// Global-memory bandwidth, bytes/s.
    pub global_bw: f64,
    /// Scratchpad (OpenCL local / CUDA shared) bandwidth, bytes/s.
    pub local_bw: f64,
    /// Host↔device interconnect bandwidth, bytes/s (PCIe, or memcpy when
    /// `cpu_backed`).
    pub pcie_bw: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub launch_overhead: f64,
    /// Fixed overhead per host↔device transfer command, seconds.
    pub transfer_overhead: f64,
    /// Fixed overhead per buffer allocation (the *prepare* GPU task), seconds.
    pub alloc_overhead: f64,
    /// Additional allocation cost per byte, seconds/byte — large
    /// intermediate buffers are expensive to create on weak drivers (the
    /// separable-convolution "extra buffer" overhead of §2.2).
    pub alloc_bytes_factor: f64,
    /// Fraction of *redundant* (overlapping stencil) global reads that miss
    /// the device's read caches. 0 = perfect caching, 1 = every read hits
    /// DRAM.
    pub read_cache_factor: f64,
    /// Per-work-group scheduling overhead, seconds.
    pub group_overhead: f64,
    /// Cost of a work-group barrier (used by the cooperative local-memory
    /// load phase), seconds per group.
    pub barrier_overhead: f64,
    /// Full runtime kernel compilation cost: parse + optimize, seconds.
    /// Skipped on an IR-cache hit (§5.4).
    pub compile_frontend: f64,
    /// Architecture-specific JIT portion of compilation, seconds. *Not*
    /// skippable by the IR cache (OpenCL offers no binary cache).
    pub compile_jit: f64,
    /// Maximum work-items per work-group.
    pub max_work_group: usize,
    /// Preferred work-group size multiple (warp/wavefront width).
    pub warp: usize,
    /// True when the OpenCL runtime targets the host CPU (Server).
    pub cpu_backed: bool,
}

/// A complete heterogeneous machine: CPU plus optional OpenCL device.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Codename used throughout the evaluation (`Desktop`, `Server`, `Laptop`).
    pub codename: String,
    /// Operating system, for the Fig. 9 table.
    pub os: String,
    /// OpenCL runtime name, for the Fig. 9 table.
    pub opencl_runtime: String,
    /// CPU description.
    pub cpu: CpuProfile,
    /// OpenCL device, if any. `None` means OpenCL choices are unavailable
    /// entirely; a `cpu_backed` device means OpenCL choices exist but run on
    /// the CPU (the paper's Server).
    pub gpu: Option<GpuProfile>,
}

impl MachineProfile {
    /// The paper's *Desktop*: gaming rig with a Core i7 920 and a Tesla C2070.
    ///
    /// Calibrated so that streaming kernels run roughly an order of magnitude
    /// faster on the GPU than on the 4-core CPU backend, transfers cross a
    /// fast PCIe link, and scratchpad staging pays off for stencils with
    /// meaningful reuse.
    #[must_use]
    pub fn desktop() -> Self {
        MachineProfile {
            codename: "Desktop".into(),
            os: "Debian 5.0 GNU/Linux".into(),
            opencl_runtime: "CUDA Toolkit 4.2 (GPU)".into(),
            cpu: CpuProfile {
                name: "Core i7 920 @2.67GHz".into(),
                cores: 4,
                flops_per_core: 2.5e9,
                mem_bw: 20e9,
                task_overhead: 2.0e-7,
                steal_latency: 3.0e-7,
            },
            gpu: Some(GpuProfile {
                name: "NVIDIA Tesla C2070".into(),
                flops: 1.0e12,
                global_bw: 140e9,
                local_bw: 1.2e12,
                pcie_bw: 6e9,
                launch_overhead: 8e-6,
                transfer_overhead: 6e-6,
                alloc_overhead: 4e-6,
                alloc_bytes_factor: 1.0e-11,
                read_cache_factor: 0.45,
                group_overhead: 2.5e-8,
                barrier_overhead: 4.0e-9,
                compile_frontend: 1.2,
                compile_jit: 0.8,
                max_work_group: 1024,
                warp: 32,
                cpu_backed: false,
            }),
        }
    }

    /// The paper's *Server*: 32-core Xeon, no graphics card; its OpenCL
    /// runtime (AMD APP SDK) generates optimized SSE code for the CPU.
    ///
    /// The "device" therefore shares host memory (transfers are memcpys),
    /// has no scratchpad advantage (`local_bw == global_bw`), but achieves a
    /// much higher arithmetic rate than the unvectorized CPU backend.
    #[must_use]
    pub fn server() -> Self {
        MachineProfile {
            codename: "Server".into(),
            os: "Debian 5.0 GNU/Linux".into(),
            opencl_runtime: "AMD APP SDK 2.5 (CPU/SSE)".into(),
            cpu: CpuProfile {
                name: "4x Xeon X7550 @2GHz".into(),
                cores: 32,
                flops_per_core: 2.0e9,
                mem_bw: 60e9,
                task_overhead: 2.5e-7,
                steal_latency: 5.0e-7,
            },
            gpu: Some(GpuProfile {
                name: "none (OpenCL on CPU)".into(),
                // 32 cores x 2 GHz x 4-wide SSE x ~2 from better codegen.
                flops: 5.0e11,
                global_bw: 60e9,
                local_bw: 60e9,
                pcie_bw: 16e9, // memcpy within host RAM
                launch_overhead: 2.5e-5,
                transfer_overhead: 2e-6,
                alloc_overhead: 2e-6,
                alloc_bytes_factor: 5.0e-12,
                read_cache_factor: 0.05,
                group_overhead: 1.2e-7,
                barrier_overhead: 8.0e-7,
                compile_frontend: 0.9,
                compile_jit: 0.5,
                max_work_group: 1024,
                warp: 4,
                cpu_backed: true,
            }),
        }
    }

    /// The paper's *Laptop* (a Mac Mini): 2-core Core i5 plus a mobile
    /// Radeon HD 6630M.
    ///
    /// The mobile GPU is only a small factor faster than the CPU for
    /// streaming work and sits behind a slow interconnect, which is what
    /// makes concurrent CPU+GPU splits profitable here and nowhere else.
    #[must_use]
    pub fn laptop() -> Self {
        MachineProfile {
            codename: "Laptop".into(),
            os: "Mac OS X Lion (10.7.2)".into(),
            opencl_runtime: "Xcode 4.2 (GPU)".into(),
            cpu: CpuProfile {
                name: "Core i5 2520M @2.5GHz".into(),
                cores: 2,
                flops_per_core: 3.0e9,
                mem_bw: 12e9,
                task_overhead: 1.8e-7,
                steal_latency: 2.5e-7,
            },
            gpu: Some(GpuProfile {
                name: "AMD Radeon HD 6630M".into(),
                flops: 2.2e11,
                global_bw: 25.6e9,
                local_bw: 2.6e11,
                pcie_bw: 2.0e9,
                launch_overhead: 1.5e-5,
                transfer_overhead: 1.0e-5,
                alloc_overhead: 6e-6,
                alloc_bytes_factor: 1.5e-10,
                read_cache_factor: 0.3,
                group_overhead: 4.0e-8,
                barrier_overhead: 8.0e-9,
                compile_frontend: 1.5,
                compile_jit: 1.0,
                max_work_group: 256,
                warp: 64,
                cpu_backed: false,
            }),
        }
    }

    /// An *iGPU* machine beyond the paper's three: a low-power desktop
    /// whose only OpenCL device is an integrated GPU sharing host DRAM.
    ///
    /// The interconnect is a memcpy through shared memory (fast, low
    /// per-transfer overhead), but the device competes with the CPU for
    /// the same bandwidth: `global_bw` equals the host memory bandwidth,
    /// and the scratchpad advantage is modest. The interesting tuning
    /// regime is the opposite of the Desktop's — transfers are nearly
    /// free, so fractional CPU+GPU splits win even for streaming kernels.
    #[must_use]
    pub fn igpu() -> Self {
        MachineProfile {
            codename: "iGPU".into(),
            os: "Ubuntu 12.04 GNU/Linux".into(),
            opencl_runtime: "Intel OpenCL SDK 2012 (iGPU)".into(),
            cpu: CpuProfile {
                name: "Core i3 3225 @3.3GHz".into(),
                cores: 2,
                flops_per_core: 3.2e9,
                mem_bw: 21e9,
                task_overhead: 1.8e-7,
                steal_latency: 2.5e-7,
            },
            gpu: Some(GpuProfile {
                name: "Intel HD Graphics 4000".into(),
                flops: 1.2e11,
                global_bw: 21e9, // shares host DRAM with the CPU
                local_bw: 1.0e11,
                pcie_bw: 10e9, // memcpy within shared memory
                launch_overhead: 1.2e-5,
                transfer_overhead: 1.5e-6,
                alloc_overhead: 2.5e-6,
                alloc_bytes_factor: 4.0e-12,
                read_cache_factor: 0.25,
                group_overhead: 5.0e-8,
                barrier_overhead: 1.0e-8,
                compile_frontend: 1.1,
                compile_jit: 0.7,
                max_work_group: 512,
                warp: 16,
                cpu_backed: false,
            }),
        }
    }

    /// A *ManyCore* server beyond the paper's three: 64 slow cores and no
    /// OpenCL runtime at all.
    ///
    /// With `gpu: None` every OpenCL choice is statically unavailable, so
    /// tuning is purely about CPU-side structure (chunking, cutoffs,
    /// algorithm selection) and the workstealing scheduler carries all the
    /// parallelism — the stress case for the runtime's scaling paths.
    #[must_use]
    pub fn manycore() -> Self {
        MachineProfile {
            codename: "ManyCore".into(),
            os: "CentOS 6.3 GNU/Linux".into(),
            opencl_runtime: "none".into(),
            cpu: CpuProfile {
                name: "4x Opteron 6276 @2.3GHz".into(),
                cores: 64,
                flops_per_core: 1.6e9,
                mem_bw: 102e9,
                task_overhead: 3.0e-7,
                steal_latency: 6.0e-7,
            },
            gpu: None,
        }
    }

    /// All three paper machines, in presentation order.
    #[must_use]
    pub fn all() -> Vec<MachineProfile> {
        vec![Self::desktop(), Self::server(), Self::laptop()]
    }

    /// The paper machines plus the two extension profiles ([`Self::igpu`],
    /// [`Self::manycore`]) used by the extended fig7/fig9 matrices.
    #[must_use]
    pub fn extended() -> Vec<MachineProfile> {
        vec![Self::desktop(), Self::server(), Self::laptop(), Self::igpu(), Self::manycore()]
    }

    /// Look up a preset by (case-insensitive) codename.
    #[must_use]
    pub fn by_codename(name: &str) -> Option<MachineProfile> {
        match name.to_ascii_lowercase().as_str() {
            "desktop" => Some(Self::desktop()),
            "server" => Some(Self::server()),
            "laptop" => Some(Self::laptop()),
            "igpu" => Some(Self::igpu()),
            "manycore" => Some(Self::manycore()),
            _ => None,
        }
    }

    /// Aggregate scalar CPU throughput (all cores), flop/s.
    #[must_use]
    pub fn cpu_flops(&self) -> f64 {
        self.cpu.flops_per_core * self.cpu.cores as f64
    }

    /// True when the machine exposes any OpenCL device (physical or
    /// CPU-backed).
    #[must_use]
    pub fn has_opencl(&self) -> bool {
        self.gpu.is_some()
    }

    /// True when the machine has a *physical* (non-CPU-backed) GPU.
    #[must_use]
    pub fn has_physical_gpu(&self) -> bool {
        self.gpu.as_ref().is_some_and(|g| !g.cpu_backed)
    }
}

impl fmt::Display for MachineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} cores), GPU: {}, OS: {}, OpenCL: {}",
            self.codename,
            self.cpu.name,
            self.cpu.cores,
            self.gpu.as_ref().map_or("None", |g| g.name.as_str()),
            self.os,
            self.opencl_runtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_figure9_shape() {
        let d = MachineProfile::desktop();
        let s = MachineProfile::server();
        let l = MachineProfile::laptop();
        assert_eq!(d.cpu.cores, 4);
        assert_eq!(s.cpu.cores, 32);
        assert_eq!(l.cpu.cores, 2);
        assert!(d.has_physical_gpu());
        assert!(!s.has_physical_gpu());
        assert!(s.has_opencl());
        assert!(l.has_physical_gpu());
    }

    #[test]
    fn desktop_gpu_much_faster_than_cpu_laptop_less_so() {
        let d = MachineProfile::desktop();
        let l = MachineProfile::laptop();
        let d_ratio = d.gpu.as_ref().unwrap().flops / d.cpu_flops();
        let l_ratio = l.gpu.as_ref().unwrap().flops / l.cpu_flops();
        assert!(d_ratio > 20.0, "desktop GPU:CPU ratio {d_ratio}");
        assert!(
            l_ratio < d_ratio / 2.0,
            "laptop ratio {l_ratio} should be far below desktop {d_ratio}"
        );
    }

    #[test]
    fn server_local_memory_has_no_bandwidth_advantage() {
        let s = MachineProfile::server();
        let g = s.gpu.unwrap();
        assert_eq!(g.local_bw, g.global_bw);
        assert!(g.cpu_backed);
    }

    #[test]
    fn lookup_by_codename() {
        assert!(MachineProfile::by_codename("DESKTOP").is_some());
        assert!(MachineProfile::by_codename("laptop").is_some());
        assert!(MachineProfile::by_codename("iGPU").is_some());
        assert!(MachineProfile::by_codename("ManyCore").is_some());
        assert!(MachineProfile::by_codename("phone").is_none());
    }

    #[test]
    fn display_is_nonempty() {
        for m in MachineProfile::extended() {
            assert!(!m.to_string().is_empty());
        }
    }

    #[test]
    fn extension_profiles_have_the_intended_shape() {
        let i = MachineProfile::igpu();
        let ig = i.gpu.as_ref().unwrap();
        assert!(i.has_physical_gpu());
        assert_eq!(ig.global_bw, i.cpu.mem_bw, "iGPU shares host DRAM");
        // Weak device relative to the Desktop's discrete card, cheap link.
        assert!(ig.flops < MachineProfile::desktop().gpu.unwrap().flops / 4.0);
        assert!(ig.pcie_bw > MachineProfile::laptop().gpu.unwrap().pcie_bw);

        let m = MachineProfile::manycore();
        assert!(!m.has_opencl(), "ManyCore has no OpenCL runtime at all");
        assert_eq!(m.cpu.cores, 64);
        assert!(m.cpu_flops() > MachineProfile::server().cpu_flops());
    }

    #[test]
    fn extended_is_all_plus_two() {
        let all = MachineProfile::all();
        let ext = MachineProfile::extended();
        assert_eq!(ext.len(), all.len() + 2);
        assert_eq!(
            ext.iter().map(|m| m.codename.as_str()).collect::<Vec<_>>()[..3],
            all.iter().map(|m| m.codename.as_str()).collect::<Vec<_>>()[..]
        );
    }
}

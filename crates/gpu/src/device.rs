//! The simulated OpenCL device.
//!
//! A [`Device`] owns the buffer table, the in-order command queue and the
//! compile cache for one machine's OpenCL runtime. Kernels are registered
//! with both their generated OpenCL C source (for compile-cost accounting
//! and golden tests) and a [`KernelBody`] — the functional implementation
//! that actually transforms buffer contents when the launch executes.

use crate::buffer::{BufferId, BufferTable};
use crate::compile::{CompileCache, CompileStats, KernelHandle};
use crate::cost::{self, KernelWork};
use crate::profile::GpuProfile;
use crate::queue::{CommandQueue, Event};
use crate::GpuError;
use std::collections::HashMap;
use std::sync::Arc;

/// Functional implementation of a kernel: mutates device buffers exactly as
/// the generated OpenCL would.
pub trait KernelBody: Send + Sync {
    /// Execute the whole ND-range against the buffer table.
    ///
    /// # Errors
    /// Propagates buffer lookup/size failures.
    fn execute(&self, buffers: &mut BufferTable, launch: &KernelLaunch) -> Result<(), GpuError>;
}

impl<F> KernelBody for F
where
    F: Fn(&mut BufferTable, &KernelLaunch) -> Result<(), GpuError> + Send + Sync,
{
    fn execute(&self, buffers: &mut BufferTable, launch: &KernelLaunch) -> Result<(), GpuError> {
        self(buffers, launch)
    }
}

/// One kernel launch request.
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// Which compiled kernel to run.
    pub kernel: KernelHandle,
    /// Buffer arguments, in kernel-argument order.
    pub buffers: Vec<BufferId>,
    /// Scalar arguments (sizes, constants), in order.
    pub scalars: Vec<f64>,
    /// Work descriptor used for both cost and any geometry the body needs.
    pub work: KernelWork,
}

/// Cumulative device activity, reported per run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Kernel launches executed.
    pub launches: usize,
    /// Host→device transfers performed (after deduplication).
    pub writes: usize,
    /// Device→host transfers performed.
    pub reads: usize,
    /// Bytes moved host→device.
    pub bytes_in: f64,
    /// Bytes moved device→host.
    pub bytes_out: f64,
}

/// A complete simulated OpenCL device.
#[derive(Debug)]
pub struct Device {
    profile: GpuProfile,
    buffers: BufferTable,
    queue: CommandQueue,
    compiler: CompileCache,
    bodies: HashMap<KernelHandle, Arc<dyn KernelBody>>,
    stats: DeviceStats,
}

impl std::fmt::Debug for dyn KernelBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<kernel body>")
    }
}

impl Device {
    /// New device for `profile`, IR cache enabled.
    #[must_use]
    pub fn new(profile: GpuProfile) -> Self {
        Self::with_compiler(profile, CompileCache::new())
    }

    /// New device with a custom compiler (e.g. IR cache disabled for the
    /// §5.4 ablation).
    #[must_use]
    pub fn with_compiler(profile: GpuProfile, compiler: CompileCache) -> Self {
        Device {
            profile,
            buffers: BufferTable::new(),
            queue: CommandQueue::new(),
            compiler,
            bodies: HashMap::new(),
            stats: DeviceStats::default(),
        }
    }

    /// Device profile.
    #[must_use]
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Buffer table (shared).
    #[must_use]
    pub fn buffers(&self) -> &BufferTable {
        &self.buffers
    }

    /// Buffer table (exclusive), for the GPU management thread.
    pub fn buffers_mut(&mut self) -> &mut BufferTable {
        &mut self.buffers
    }

    /// Cumulative activity statistics.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Compilation statistics.
    #[must_use]
    pub fn compile_stats(&self) -> CompileStats {
        self.compiler.stats()
    }

    /// Drain the charged-compile log since the last drain (see
    /// [`CompileCache::take_compile_log`]).
    pub fn take_compile_log(&mut self) -> Vec<crate::compile::CompileEvent> {
        self.compiler.take_compile_log()
    }

    /// Number of distinct kernels compiled.
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.compiler.kernel_count()
    }

    /// Virtual time at which the device timeline drains.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.queue.busy_until()
    }

    /// Total device-busy virtual seconds.
    #[must_use]
    pub fn busy_secs(&self) -> f64 {
        self.queue.busy_secs()
    }

    /// Compile (or reuse) a kernel and register its functional body.
    ///
    /// Returns the handle and the virtual seconds compilation cost — zero if
    /// the same source was already compiled in this process.
    pub fn register_kernel(
        &mut self,
        name: &str,
        source: &str,
        body: Arc<dyn KernelBody>,
    ) -> (KernelHandle, f64) {
        let (handle, secs) = self.compiler.compile(&self.profile, name, source);
        self.bodies.entry(handle).or_insert(body);
        (handle, secs)
    }

    /// Source text of a compiled kernel (for tests and diagnostics).
    #[must_use]
    pub fn kernel_source(&self, handle: KernelHandle) -> Option<&str> {
        self.compiler.get(handle).map(|k| k.source.as_str())
    }

    /// Allocate a device buffer (the data part of a *prepare* task).
    pub fn alloc_buffer(&mut self, len: usize) -> BufferId {
        self.buffers.alloc(len)
    }

    /// Free a device buffer.
    ///
    /// # Errors
    /// [`GpuError::UnknownBuffer`] if the buffer is not live.
    pub fn free_buffer(&mut self, id: BufferId) -> Result<(), GpuError> {
        self.buffers.free(id)
    }

    /// Enqueue a non-blocking host→device write at virtual time `now`.
    ///
    /// The data lands in the buffer immediately (functional semantics); the
    /// returned [`Event`] carries the modeled completion time.
    ///
    /// # Errors
    /// Buffer lookup or size mismatch.
    pub fn enqueue_write(
        &mut self,
        now: f64,
        id: BufferId,
        host: &[f64],
    ) -> Result<Event, GpuError> {
        self.buffers.write(id, host)?;
        let bytes = host.len() as f64 * 8.0;
        let secs = cost::transfer_secs(&self.profile, bytes);
        self.stats.writes += 1;
        self.stats.bytes_in += bytes;
        Ok(self.queue.enqueue(now, secs))
    }

    /// Enqueue a non-blocking device→host read at virtual time `now`.
    ///
    /// Functional data is returned immediately; the caller must not publish
    /// it to the host side before the event completes (the runtime's
    /// copy-out completion task enforces this).
    ///
    /// # Errors
    /// Buffer lookup failure.
    pub fn enqueue_read(&mut self, now: f64, id: BufferId) -> Result<(Event, Vec<f64>), GpuError> {
        let data = self.buffers.get(id)?.data().to_vec();
        let bytes = data.len() as f64 * 8.0;
        let secs = cost::transfer_secs(&self.profile, bytes);
        self.stats.reads += 1;
        self.stats.bytes_out += bytes;
        Ok((self.queue.enqueue(now, secs), data))
    }

    /// Enqueue a kernel launch at virtual time `now`.
    ///
    /// The functional body runs immediately against the buffer table; the
    /// modeled execution occupies the device timeline for
    /// `launch_overhead + exec_secs(work)`.
    ///
    /// # Errors
    /// Unknown kernel, oversized work-group, or body failure.
    pub fn enqueue_kernel(&mut self, now: f64, launch: &KernelLaunch) -> Result<Event, GpuError> {
        if launch.work.local_size > self.profile.max_work_group {
            return Err(GpuError::WorkGroupTooLarge {
                requested: launch.work.local_size,
                max: self.profile.max_work_group,
            });
        }
        let body = self
            .bodies
            .get(&launch.kernel)
            .cloned()
            .ok_or(GpuError::UnknownKernel(launch.kernel.index()))?;
        body.execute(&mut self.buffers, launch)?;
        let secs = self.profile.launch_overhead + launch.work.exec_secs(&self.profile);
        self.stats.launches += 1;
        Ok(self.queue.enqueue(now, secs))
    }

    /// Model a process restart (§5.4): compiled kernels (and their
    /// registered bodies — handles restart from zero) are lost, the
    /// persistent IR cache survives.
    pub fn reset_process(&mut self) {
        self.compiler.reset_process();
        self.bodies.clear();
    }

    /// Clear timing state and residency between autotuning trials, keeping
    /// compiled kernels (they persist within a process).
    pub fn reset_timeline(&mut self) {
        self.queue.reset();
        self.buffers.invalidate_all();
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MachineProfile;

    fn device() -> Device {
        Device::new(MachineProfile::desktop().gpu.unwrap())
    }

    /// A kernel body that doubles every element of its single buffer arg.
    fn double_body() -> Arc<dyn KernelBody> {
        Arc::new(|bufs: &mut BufferTable, launch: &KernelLaunch| -> Result<(), GpuError> {
            let buf = bufs.get_mut(launch.buffers[0])?;
            for v in buf.data_mut() {
                *v *= 2.0;
            }
            Ok(())
        })
    }

    fn launch(handle: KernelHandle, buf: BufferId, n: usize) -> KernelLaunch {
        KernelLaunch {
            kernel: handle,
            buffers: vec![buf],
            scalars: vec![n as f64],
            work: KernelWork {
                work_items: n as f64,
                flops_per_item: 1.0,
                global_read_bytes: n as f64 * 8.0,
                global_write_bytes: n as f64 * 8.0,
                groups: (n as f64 / 64.0).ceil(),
                local_size: 64,
                ..KernelWork::default()
            },
        }
    }

    #[test]
    fn kernel_executes_functionally_and_charges_time() {
        let mut d = device();
        let (h, compile_secs) = d.register_kernel("dbl", "kernel void dbl(...)", double_body());
        assert!(compile_secs > 0.0);
        let buf = d.alloc_buffer(4);
        let w = d.enqueue_write(0.0, buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let k = d.enqueue_kernel(0.0, &launch(h, buf, 4)).unwrap();
        assert!(k.complete_at > w.complete_at, "kernel queued behind write");
        let (r, data) = d.enqueue_read(0.0, buf).unwrap();
        assert_eq!(data, vec![2.0, 4.0, 6.0, 8.0]);
        assert!(r.complete_at > k.complete_at);
        assert_eq!(d.stats().launches, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn oversized_work_group_is_rejected() {
        let mut d = device();
        let (h, _) = d.register_kernel("dbl", "src", double_body());
        let buf = d.alloc_buffer(1);
        let mut l = launch(h, buf, 1);
        l.work.local_size = 100_000;
        assert!(matches!(d.enqueue_kernel(0.0, &l), Err(GpuError::WorkGroupTooLarge { .. })));
    }

    #[test]
    fn unknown_kernel_is_rejected() {
        let mut d = device();
        let buf = d.alloc_buffer(1);
        let l = launch(KernelHandle(99), buf, 1);
        assert!(matches!(d.enqueue_kernel(0.0, &l), Err(GpuError::UnknownKernel(99))));
    }

    #[test]
    fn recompiling_same_source_is_free() {
        let mut d = device();
        let (_, s1) = d.register_kernel("a", "same", double_body());
        let (_, s2) = d.register_kernel("a", "same", double_body());
        assert!(s1 > 0.0);
        assert_eq!(s2, 0.0);
        assert_eq!(d.kernel_count(), 1);
    }

    #[test]
    fn reset_timeline_keeps_kernels() {
        let mut d = device();
        let (h, _) = d.register_kernel("a", "src", double_body());
        let buf = d.alloc_buffer(2);
        d.enqueue_write(0.0, buf, &[1.0, 1.0]).unwrap();
        d.reset_timeline();
        assert_eq!(d.busy_until(), 0.0);
        assert_eq!(d.kernel_count(), 1);
        assert!(d.kernel_source(h).is_some());
    }
}

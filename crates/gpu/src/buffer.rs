//! Device buffers and the residency table.
//!
//! Buffers are backed by real `Vec<f64>` storage so kernels can execute
//! functionally. The [`BufferTable`] additionally tracks which *host region*
//! each buffer currently mirrors; the GPU management thread uses this for
//! the copy-in deduplication of §4.3 ("if all data that will be copied in by
//! the task is already on the GPU ... change the status of that copy-in task
//! to complete without actually executing it").

use crate::GpuError;
use std::collections::HashMap;

/// Identifier of a live device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// Raw index, for diagnostics.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A device allocation backed by host storage.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    id: BufferId,
    data: Vec<f64>,
}

impl DeviceBuffer {
    /// Buffer id.
    #[must_use]
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Length in elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing storage.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (used by the kernel interpreter).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Key identifying a host-side region (matrix id + sub-region + version).
///
/// Opaque to this crate; the runtime constructs keys such that equal keys
/// mean "the same bytes".
pub type ResidencyKey = u64;

/// All buffers on one device, plus the host-region residency index.
#[derive(Debug, Default)]
pub struct BufferTable {
    buffers: Vec<Option<DeviceBuffer>>,
    resident: HashMap<ResidencyKey, BufferId>,
    bytes_allocated: usize,
    peak_bytes: usize,
}

impl BufferTable {
    /// New, empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(Some(DeviceBuffer { id, data: vec![0.0; len] }));
        self.bytes_allocated += len * std::mem::size_of::<f64>();
        self.peak_bytes = self.peak_bytes.max(self.bytes_allocated);
        id
    }

    /// Release a buffer and drop any residency entries pointing at it.
    ///
    /// # Errors
    /// Returns [`GpuError::UnknownBuffer`] if `id` is not live.
    pub fn free(&mut self, id: BufferId) -> Result<(), GpuError> {
        let slot =
            self.buffers.get_mut(id.0).and_then(Option::take).ok_or(GpuError::UnknownBuffer(id))?;
        self.bytes_allocated -= slot.len() * std::mem::size_of::<f64>();
        self.resident.retain(|_, v| *v != id);
        Ok(())
    }

    /// Shared access to a buffer.
    ///
    /// # Errors
    /// Returns [`GpuError::UnknownBuffer`] if `id` is not live.
    pub fn get(&self, id: BufferId) -> Result<&DeviceBuffer, GpuError> {
        self.buffers.get(id.0).and_then(Option::as_ref).ok_or(GpuError::UnknownBuffer(id))
    }

    /// Exclusive access to a buffer.
    ///
    /// # Errors
    /// Returns [`GpuError::UnknownBuffer`] if `id` is not live.
    pub fn get_mut(&mut self, id: BufferId) -> Result<&mut DeviceBuffer, GpuError> {
        self.buffers.get_mut(id.0).and_then(Option::as_mut).ok_or(GpuError::UnknownBuffer(id))
    }

    /// Copy host data into a buffer (the data part of a copy-in).
    ///
    /// # Errors
    /// [`GpuError::UnknownBuffer`] for a dead id, [`GpuError::SizeMismatch`]
    /// when lengths differ.
    pub fn write(&mut self, id: BufferId, host: &[f64]) -> Result<(), GpuError> {
        let buf = self.get_mut(id)?;
        if buf.len() != host.len() {
            return Err(GpuError::SizeMismatch { expected: buf.len(), actual: host.len() });
        }
        buf.data_mut().copy_from_slice(host);
        Ok(())
    }

    /// Copy a buffer back to host storage (the data part of a copy-out).
    ///
    /// # Errors
    /// [`GpuError::UnknownBuffer`] for a dead id, [`GpuError::SizeMismatch`]
    /// when lengths differ.
    pub fn read(&self, id: BufferId, host: &mut [f64]) -> Result<(), GpuError> {
        let buf = self.get(id)?;
        if buf.len() != host.len() {
            return Err(GpuError::SizeMismatch { expected: buf.len(), actual: host.len() });
        }
        host.copy_from_slice(buf.data());
        Ok(())
    }

    /// Record that `id` now holds a valid copy of host region `key`.
    pub fn mark_resident(&mut self, key: ResidencyKey, id: BufferId) {
        self.resident.insert(key, id);
    }

    /// Look up a buffer already holding host region `key`, if any.
    #[must_use]
    pub fn lookup_resident(&self, key: ResidencyKey) -> Option<BufferId> {
        self.resident.get(&key).copied()
    }

    /// Drop a residency entry (the host copy was overwritten, §4.3:
    /// "releasing buffers that become stale").
    pub fn invalidate(&mut self, key: ResidencyKey) {
        self.resident.remove(&key);
    }

    /// Drop every residency entry (e.g. between autotuning trials).
    pub fn invalidate_all(&mut self) {
        self.resident.clear();
    }

    /// Bytes currently allocated on the device.
    #[must_use]
    pub fn bytes_allocated(&self) -> usize {
        self.bytes_allocated
    }

    /// High-water mark of device allocation.
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of live buffers.
    #[must_use]
    pub fn live_buffers(&self) -> usize {
        self.buffers.iter().filter(|b| b.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut t = BufferTable::new();
        let id = t.alloc(4);
        t.write(id, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = [0.0; 4];
        t.read(id, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn size_mismatch_is_reported() {
        let mut t = BufferTable::new();
        let id = t.alloc(4);
        let err = t.write(id, &[1.0]).unwrap_err();
        assert_eq!(err, GpuError::SizeMismatch { expected: 4, actual: 1 });
    }

    #[test]
    fn free_releases_bytes_and_residency() {
        let mut t = BufferTable::new();
        let id = t.alloc(100);
        t.mark_resident(42, id);
        assert_eq!(t.bytes_allocated(), 800);
        assert_eq!(t.lookup_resident(42), Some(id));
        t.free(id).unwrap();
        assert_eq!(t.bytes_allocated(), 0);
        assert_eq!(t.lookup_resident(42), None);
        assert_eq!(t.get(id).unwrap_err(), GpuError::UnknownBuffer(id));
        assert_eq!(t.peak_bytes(), 800);
    }

    #[test]
    fn double_free_errors() {
        let mut t = BufferTable::new();
        let id = t.alloc(1);
        t.free(id).unwrap();
        assert!(t.free(id).is_err());
    }

    #[test]
    fn residency_invalidation() {
        let mut t = BufferTable::new();
        let id = t.alloc(1);
        t.mark_resident(7, id);
        t.invalidate(7);
        assert_eq!(t.lookup_resident(7), None);
        t.mark_resident(8, id);
        t.invalidate_all();
        assert_eq!(t.lookup_resident(8), None);
    }
}

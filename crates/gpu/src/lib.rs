//! # petal-gpu — simulated OpenCL substrate
//!
//! This crate stands in for the OpenCL runtimes used in the paper
//! (*Portable Performance on Heterogeneous Architectures*, ASPLOS'13).
//! The reproduction environment has no physical GPU, so devices here are
//! **simulated**: kernels execute *functionally* on the host (producing
//! bit-exact data), while a calibrated analytic cost model decides how much
//! *virtual time* each operation takes on a given machine.
//!
//! The crate provides:
//!
//! * [`profile`] — machine descriptions ([`profile::MachineProfile`]) with the
//!   three presets from Figure 9 of the paper: `desktop` (4-core CPU +
//!   discrete high-end GPU), `server` (32-core CPU whose OpenCL runtime is
//!   CPU-backed) and `laptop` (2-core CPU + weak mobile GPU).
//! * [`cost`] — the roofline-style cost model: kernel execution, host/device
//!   transfers, launch overhead, work-group utilization and the
//!   local-memory (scratchpad) staging trade-off.
//! * [`buffer`] — device buffers backed by real `Vec<f64>` storage plus the
//!   buffer table used for copy-in deduplication.
//! * [`compile`] — the runtime kernel compiler with the IR cache of §5.4.
//! * [`queue`] — an in-order command queue with non-blocking writes, reads
//!   and kernel launches, tracked on a virtual device timeline.
//! * [`device`] — ties the above together into a [`device::Device`].
//! * [`source`] — tiny OpenCL C source text builder used by the code
//!   generator in `petal-core`.
//!
//! # Example
//!
//! ```
//! use petal_gpu::profile::MachineProfile;
//!
//! let m = MachineProfile::desktop();
//! assert!(m.gpu.is_some());
//! assert_eq!(m.cpu.cores, 4);
//! // The server has no physical GPU; its OpenCL runtime targets the CPU.
//! assert!(MachineProfile::server().gpu.as_ref().unwrap().cpu_backed);
//! ```

pub mod buffer;
pub mod compile;
pub mod cost;
pub mod device;
pub mod profile;
pub mod queue;
pub mod source;

pub use buffer::{BufferId, BufferTable, DeviceBuffer};
pub use compile::{CompileCache, CompiledKernel, KernelHandle};
pub use cost::{CpuWork, KernelWork};
pub use device::{Device, DeviceStats};
pub use profile::{CpuProfile, GpuProfile, MachineProfile};
pub use queue::{CommandQueue, Event, EventStatus};

use std::fmt;

/// Errors produced by the simulated OpenCL subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuError {
    /// A buffer id did not name a live buffer.
    UnknownBuffer(BufferId),
    /// A kernel handle did not name a compiled kernel.
    UnknownKernel(usize),
    /// Host/device size mismatch on a transfer.
    SizeMismatch {
        /// Elements expected by the device buffer.
        expected: usize,
        /// Elements supplied by the host.
        actual: usize,
    },
    /// The requested work-group size exceeds the device limit.
    WorkGroupTooLarge {
        /// Requested work-group size (work-items per group).
        requested: usize,
        /// Device maximum.
        max: usize,
    },
    /// Operation requires a GPU but the machine has none.
    NoGpu,
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::UnknownBuffer(id) => write!(f, "unknown device buffer {id:?}"),
            GpuError::UnknownKernel(h) => write!(f, "unknown kernel handle {h}"),
            GpuError::SizeMismatch { expected, actual } => {
                write!(f, "transfer size mismatch: buffer holds {expected} elements, host supplied {actual}")
            }
            GpuError::WorkGroupTooLarge { requested, max } => {
                write!(f, "work-group size {requested} exceeds device maximum {max}")
            }
            GpuError::NoGpu => write!(f, "machine has no OpenCL device"),
        }
    }
}

impl std::error::Error for GpuError {}

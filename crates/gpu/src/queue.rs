//! In-order command queue on a virtual device timeline.
//!
//! All device-side work (transfers, kernel launches) is serialized on one
//! in-order queue, as with a single OpenCL command queue. Enqueue calls are
//! *non-blocking*: they return an [`Event`] whose completion time lies on
//! the device timeline, and the caller (the GPU management thread in
//! `petal-rt`) polls events against the virtual clock — this is what lets
//! the manager "execute the next task in its queue right away" (§4.2).

/// Status of a queued operation relative to a virtual-time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// The operation completes at or before the queried instant.
    Complete,
    /// The operation is still in flight at the queried instant.
    Pending,
}

/// Completion token for one enqueued device operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time at which the device finishes the operation.
    pub complete_at: f64,
}

impl Event {
    /// An event that is already complete (used for deduplicated copy-ins).
    #[must_use]
    pub fn already_complete(now: f64) -> Self {
        Event { complete_at: now }
    }

    /// Poll the event at virtual time `now`.
    #[must_use]
    pub fn status_at(&self, now: f64) -> EventStatus {
        if self.complete_at <= now {
            EventStatus::Complete
        } else {
            EventStatus::Pending
        }
    }
}

/// The in-order device timeline.
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    busy_until: f64,
    busy_secs: f64,
    ops: usize,
}

impl CommandQueue {
    /// New, idle queue at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an operation of `duration` seconds at time `now`; the
    /// operation starts when the device becomes free and runs to completion
    /// without preemption.
    pub fn enqueue(&mut self, now: f64, duration: f64) -> Event {
        debug_assert!(duration >= 0.0, "durations are non-negative");
        let start = self.busy_until.max(now);
        let end = start + duration;
        self.busy_until = end;
        self.busy_secs += duration;
        self.ops += 1;
        Event { complete_at: end }
    }

    /// Virtual time at which the device drains (becomes idle).
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Total busy seconds accumulated (device utilization numerator).
    #[must_use]
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    /// Number of operations enqueued so far.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Forget all timing state (between autotuning trials).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_serialize_in_order() {
        let mut q = CommandQueue::new();
        let a = q.enqueue(0.0, 1.0);
        let b = q.enqueue(0.0, 2.0); // queued behind a
        assert_eq!(a.complete_at, 1.0);
        assert_eq!(b.complete_at, 3.0);
        assert_eq!(q.busy_until(), 3.0);
        assert_eq!(q.ops(), 2);
    }

    #[test]
    fn idle_gap_before_late_enqueue() {
        let mut q = CommandQueue::new();
        q.enqueue(0.0, 1.0);
        let e = q.enqueue(5.0, 1.0); // device idle from 1.0 to 5.0
        assert_eq!(e.complete_at, 6.0);
        assert_eq!(q.busy_secs(), 2.0);
    }

    #[test]
    fn event_polling() {
        let mut q = CommandQueue::new();
        let e = q.enqueue(0.0, 2.0);
        assert_eq!(e.status_at(1.0), EventStatus::Pending);
        assert_eq!(e.status_at(2.0), EventStatus::Complete);
        assert_eq!(Event::already_complete(7.0).status_at(7.0), EventStatus::Complete);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut q = CommandQueue::new();
        q.enqueue(0.0, 4.0);
        q.reset();
        assert_eq!(q.busy_until(), 0.0);
        assert_eq!(q.ops(), 0);
    }
}

//! The analytic cost model.
//!
//! Every simulated operation is charged virtual time derived from a
//! roofline-style model: an operation takes the *maximum* of its compute
//! time and its memory time, plus fixed overheads. The model is intentionally
//! simple — the paper's conclusions depend on the *relative* performance of
//! devices and mappings, not on cycle accuracy — but it captures the four
//! effects the evaluation turns on:
//!
//! 1. device vs. host throughput (algorithm placement),
//! 2. interconnect transfer cost (when offloading pays off),
//! 3. scratchpad staging vs. redundant global reads (the local-memory
//!    choice, §3.1 third phase), and
//! 4. work-group geometry (the *local work size* tunable, §5.3).

use crate::profile::{CpuProfile, GpuProfile};

/// Work performed by one CPU task, used to charge virtual time to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuWork {
    /// Floating point operations executed.
    pub flops: f64,
    /// Bytes moved to/from main memory (compulsory traffic).
    pub bytes: f64,
}

impl CpuWork {
    /// Convenience constructor.
    #[must_use]
    pub fn new(flops: f64, bytes: f64) -> Self {
        CpuWork { flops, bytes }
    }

    /// Virtual seconds this work takes on one core of `cpu`.
    ///
    /// Roofline: `max(flops / scalar_rate, bytes / per-core share of DRAM
    /// bandwidth)` plus the fixed per-task overhead.
    #[must_use]
    pub fn secs_on(&self, cpu: &CpuProfile) -> f64 {
        let compute = self.flops / cpu.flops_per_core;
        let memory = self.bytes / cpu.mem_bw_per_core();
        compute.max(memory) + cpu.task_overhead
    }
}

impl std::ops::Add for CpuWork {
    type Output = CpuWork;
    fn add(self, rhs: CpuWork) -> CpuWork {
        CpuWork { flops: self.flops + rhs.flops, bytes: self.bytes + rhs.bytes }
    }
}

/// Work performed by one kernel launch on the OpenCL device.
///
/// Produced by the code generator in `petal-core`; the global/local traffic
/// fields differ between the plain and the local-memory variants of the same
/// kernel, which is exactly how the model exposes that choice to the tuner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelWork {
    /// Total work-items in the ND-range.
    pub work_items: f64,
    /// Arithmetic per work-item, flops.
    pub flops_per_item: f64,
    /// Compulsory bytes read from global memory (each input byte once).
    pub global_read_bytes: f64,
    /// Redundant global reads (overlapping stencil accesses); charged at
    /// the device's `read_cache_factor` since caches absorb most of them.
    pub redundant_read_bytes: f64,
    /// Total bytes written to global memory.
    pub global_write_bytes: f64,
    /// Bytes staged cooperatively from global into local memory
    /// (local-memory variant only; each element loaded once per group).
    pub local_fill_bytes: f64,
    /// Bytes served from local memory during the compute phase
    /// (local-memory variant only).
    pub local_traffic_bytes: f64,
    /// Number of work-groups.
    pub groups: f64,
    /// Work-items per group (the *local work size* tunable).
    pub local_size: usize,
    /// Whether this launch uses the scratchpad staging phase.
    pub uses_local_memory: bool,
    /// Fraction of peak vector throughput the kernel body achieves on a
    /// CPU-backed OpenCL runtime (1.0 for streaming elementwise bodies,
    /// lower for stencils the vectorizer handles poorly). Ignored on
    /// physical GPUs, whose efficiency is modeled by lane utilization.
    pub vector_efficiency: f64,
}

impl KernelWork {
    /// Fraction of SIMD lanes doing useful work given the warp width.
    ///
    /// A group of `local_size` work-items occupies `ceil(local_size/warp)`
    /// warps; lanes beyond `local_size` in the last warp idle.
    #[must_use]
    pub fn lane_utilization(&self, warp: usize) -> f64 {
        if self.local_size == 0 {
            return 1.0;
        }
        let warps = self.local_size.div_ceil(warp);
        self.local_size as f64 / (warps * warp) as f64
    }

    /// Virtual seconds one launch of this kernel takes on `gpu`
    /// (excluding the fixed launch overhead, which the queue charges).
    ///
    /// Roofline over compute and memory, plus per-group scheduling and
    /// (for the local-memory variant) one barrier per group.
    #[must_use]
    pub fn exec_secs(&self, gpu: &GpuProfile) -> f64 {
        let util = if gpu.cpu_backed {
            if self.vector_efficiency > 0.0 {
                self.vector_efficiency
            } else {
                1.0
            }
        } else {
            self.lane_utilization(gpu.warp)
        };
        let compute = self.work_items * self.flops_per_item / (gpu.flops * util);
        let mut memory = (self.global_read_bytes
            + self.redundant_read_bytes * gpu.read_cache_factor
            + self.global_write_bytes
            + self.local_fill_bytes)
            / gpu.global_bw;
        memory += self.local_traffic_bytes / gpu.local_bw;
        let mut t = compute.max(memory) + self.groups * gpu.group_overhead;
        if self.uses_local_memory {
            // Cooperative load is a distinct phase ended by a barrier; on a
            // CPU-backed runtime the staging copy is pure wasted work that
            // does not overlap with compute.
            t += self.groups * gpu.barrier_overhead;
            if gpu.cpu_backed {
                t +=
                    self.local_fill_bytes / gpu.global_bw + self.local_traffic_bytes / gpu.local_bw;
            }
        }
        t
    }
}

/// Virtual seconds to move `bytes` across the host↔device interconnect.
#[must_use]
pub fn transfer_secs(gpu: &GpuProfile, bytes: f64) -> f64 {
    gpu.transfer_overhead + bytes / gpu.pcie_bw
}

/// Virtual seconds to allocate a device buffer of `bytes` (the *prepare*
/// task): fixed driver overhead plus a per-byte cost that penalizes large
/// intermediate buffers on weak drivers.
#[must_use]
pub fn alloc_secs(gpu: &GpuProfile, bytes: f64) -> f64 {
    gpu.alloc_overhead + bytes * gpu.alloc_bytes_factor
}

/// Virtual seconds to compile a kernel at runtime (§5.4).
///
/// On an IR-cache hit the frontend (parse + optimize) is skipped but the
/// architecture-specific JIT still runs — OpenCL offers no binary cache.
#[must_use]
pub fn compile_secs(gpu: &GpuProfile, ir_cache_hit: bool) -> f64 {
    if ir_cache_hit {
        gpu.compile_jit
    } else {
        gpu.compile_frontend + gpu.compile_jit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MachineProfile;

    fn gpu(m: &MachineProfile) -> GpuProfile {
        m.gpu.clone().unwrap()
    }

    fn streaming_kernel(n: f64, local: usize) -> KernelWork {
        KernelWork {
            work_items: n,
            flops_per_item: 100.0,
            global_read_bytes: n * 8.0,
            global_write_bytes: n * 8.0,
            local_size: local,
            groups: n / local as f64,
            ..KernelWork::default()
        }
    }

    #[test]
    fn cpu_work_is_roofline() {
        let cpu = MachineProfile::desktop().cpu;
        // Compute bound: lots of flops, no memory.
        let w = CpuWork::new(1e9, 0.0);
        assert!((w.secs_on(&cpu) - (1e9 / cpu.flops_per_core + cpu.task_overhead)).abs() < 1e-12);
        // Memory bound.
        let w = CpuWork::new(0.0, 1e9);
        assert!(w.secs_on(&cpu) > 1e9 / cpu.mem_bw);
    }

    #[test]
    fn more_work_takes_longer() {
        let g = gpu(&MachineProfile::desktop());
        let small = streaming_kernel(1e5, 128).exec_secs(&g);
        let big = streaming_kernel(1e7, 128).exec_secs(&g);
        assert!(big > small * 50.0);
    }

    #[test]
    fn lane_utilization_prefers_warp_multiples() {
        let k33 = KernelWork { local_size: 33, ..KernelWork::default() };
        let k32 = KernelWork { local_size: 32, ..KernelWork::default() };
        assert!(k32.lane_utilization(32) > k33.lane_utilization(32));
        assert!((k32.lane_utilization(32) - 1.0).abs() < 1e-12);
        assert!((k33.lane_utilization(32) - 33.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_work_groups_pay_group_overhead() {
        let g = gpu(&MachineProfile::desktop());
        let few_groups = streaming_kernel(1e6, 256).exec_secs(&g);
        let many_groups = streaming_kernel(1e6, 1).exec_secs(&g);
        assert!(many_groups > few_groups * 2.0, "{many_groups} vs {few_groups}");
    }

    /// The local-memory trade-off of §2.2: a stencil with a k-wide bounding
    /// box reads each input ~k times from global memory without staging, or
    /// once per group plus k cheap local reads with staging. Staging should
    /// win on a discrete GPU for large k, lose for k=1-ish, and always lose
    /// on a CPU-backed runtime.
    fn stencil(n: f64, k: f64, local_mem: bool) -> KernelWork {
        let reuse = k; // each input element used by ~k outputs (1D separable pass)
        KernelWork {
            work_items: n,
            flops_per_item: 2.0 * k,
            global_read_bytes: if local_mem { 0.0 } else { n * 8.0 },
            redundant_read_bytes: if local_mem { 0.0 } else { n * (reuse - 1.0) * 8.0 },
            global_write_bytes: n * 8.0,
            local_fill_bytes: if local_mem { n * 1.2 * 8.0 } else { 0.0 },
            local_traffic_bytes: if local_mem { n * reuse * 8.0 } else { 0.0 },
            groups: n / 128.0,
            local_size: 128,
            uses_local_memory: local_mem,
            vector_efficiency: 0.2,
        }
    }

    #[test]
    fn local_memory_wins_for_wide_stencils_on_discrete_gpu() {
        let g = gpu(&MachineProfile::desktop());
        let with = stencil(1e7, 17.0, true).exec_secs(&g);
        let without = stencil(1e7, 17.0, false).exec_secs(&g);
        assert!(with < without, "local mem should win at k=17: {with} vs {without}");
    }

    #[test]
    fn local_memory_is_overhead_on_cpu_backed_runtime() {
        let g = gpu(&MachineProfile::server());
        let with = stencil(1e7, 17.0, true).exec_secs(&g);
        let without = stencil(1e7, 17.0, false).exec_secs(&g);
        assert!(with > without, "staging must not pay on CPU OpenCL: {with} vs {without}");
    }

    #[test]
    fn transfer_and_compile_costs_positive() {
        let g = gpu(&MachineProfile::laptop());
        assert!(transfer_secs(&g, 1e6) > 1e6 / g.pcie_bw);
        assert!(compile_secs(&g, false) > compile_secs(&g, true));
        assert!(compile_secs(&g, true) > 0.0);
    }
}

//! Property tests for the registry's on-disk record and nearest-key
//! lookup — the ISSUE's "store_prop" satellite:
//!
//! * encode/decode round-trips over adversarial entries (hostile specs
//!   and sources, arbitrary f64 bit patterns, mutated machines);
//! * hostile/truncated payloads never panic, whatever the bytes;
//! * version skew is a diagnostic ([`EntryError::VersionSkew`]), never
//!   a parse error, even with future trailing header fields;
//! * lookup laws: an exact hit beats every family hit beats every
//!   fallback hit, and the answer is a pure function of registry
//!   contents — identical under any insertion-order permutation.

use petal_core::config::{Selector, Tunable};
use petal_core::Config;
use petal_gpu::profile::MachineProfile;
use petal_registry::{
    decode_entry, family, fingerprint, DirStore, EntryError, MatchTier, StoredEntry,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Map a u64 onto a short string over a hostile alphabet: escapes,
/// separators, framing characters and multi-byte code points (shared
/// idiom with the farm's `wire_prop.rs`).
fn hostile_string(seed: u64) -> String {
    const PALETTE: [&str; 12] = ["\\", "\n", "\r", ":", " ", "a", "7", "é", "∞", "\\n", "0x", ""];
    let mut s = String::new();
    let mut z = seed;
    for _ in 0..(seed % 9) {
        s.push_str(PALETTE[(z % PALETTE.len() as u64) as usize]);
        z = z.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    s
}

/// Build a valid `Config` from raw integers.
fn config_from(raw: &[(u64, u64)], tunables: &[(i64, i64)]) -> Config {
    let mut cfg = Config::new();
    for (i, &(cut_seed, alg_seed)) in raw.iter().enumerate() {
        let num_algs = 2 + (alg_seed % 5) as usize;
        let cutoff = 1 + cut_seed % 1_000_000;
        cfg.set_selector(
            &format!("site{i}"),
            Selector::new(
                vec![cutoff],
                vec![(alg_seed % num_algs as u64) as usize, (cut_seed % num_algs as u64) as usize],
                num_algs,
            ),
        );
    }
    for (i, &(value, span)) in tunables.iter().enumerate() {
        let min = value.min(0);
        let max = value.max(0) + span.abs() % 1024 + 1;
        cfg.set_tunable(&format!("knob{i}"), Tunable::new(value, min, max));
    }
    cfg
}

/// A preset machine mutated by raw integers so entries prove the store
/// carries arbitrary profiles, not just the five built-ins.
fn machine_from(which: usize, cores: usize, flops_bits: u64) -> MachineProfile {
    let mut m = MachineProfile::extended().remove(which % 5);
    m.cpu.cores = cores;
    // Keep the profile in the positive-finite regime the cost model (and
    // the distance metric's documented domain) lives in.
    m.cpu.flops_per_core = 1.0 + (flops_bits % (1 << 40)) as f64;
    m
}

#[allow(clippy::too_many_arguments)] // mirrors the proptest parameter list 1:1
fn entry_from(
    which: usize,
    cores: usize,
    flops_bits: u64,
    spec_seed: u64,
    size: u64,
    time_bits: u64,
    selectors: &[(u64, u64)],
    tunables: &[(i64, i64)],
) -> StoredEntry {
    StoredEntry {
        machine: machine_from(which, cores, flops_bits),
        bench_spec: hostile_string(spec_seed),
        size,
        config: config_from(selectors, tunables),
        time_secs: f64::from_bits(time_bits),
        source: hostile_string(spec_seed.wrapping_add(7)),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("petal-registry-prop-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- on-disk record round-trips ----

    #[test]
    fn entries_round_trip_hostile_payloads(
        which in 0usize..5,
        cores in 1usize..256,
        flops_bits in any::<u64>(),
        spec_seed in any::<u64>(),
        size in any::<u64>(),
        time_bits in any::<u64>(),
        selectors in vec((1u64..u64::MAX, any::<u64>()), 0..4),
        tunables in vec((-1000i64..1000, any::<i64>()), 0..4),
    ) {
        let entry =
            entry_from(which, cores, flops_bits, spec_seed, size, time_bits, &selectors, &tunables);
        let text = entry.encode();
        let back = decode_entry(&text).expect("round-trip decode");
        prop_assert_eq!(back.bench_spec, entry.bench_spec);
        prop_assert_eq!(back.size, entry.size);
        prop_assert_eq!(back.source, entry.source);
        prop_assert_eq!(back.config, entry.config);
        // Bits, not PartialEq: NaN time patterns must survive too.
        prop_assert_eq!(back.time_secs.to_bits(), entry.time_secs.to_bits());
        prop_assert_eq!(back.machine, entry.machine);
        prop_assert_eq!(fingerprint(&back.machine), fingerprint(&entry.machine));
    }

    // ---- hostility: never panic, skew is a diagnostic ----

    #[test]
    fn arbitrary_bytes_never_panic(seeds in vec(any::<u64>(), 0..12)) {
        let blob: String = seeds.iter().map(|&s| hostile_string(s)).collect();
        // Any outcome but a panic is acceptable for garbage.
        let _ = decode_entry(&blob);
    }

    #[test]
    fn truncations_of_a_valid_entry_never_panic_and_never_misparse(
        spec_seed in any::<u64>(),
        cut in 0usize..2048,
    ) {
        let entry = entry_from(0, 4, 42, spec_seed, 4096, 0x3ff0_0000_0000_0000, &[(64, 1)], &[]);
        let text = entry.encode();
        let cut = cut.min(text.len());
        if !text.is_char_boundary(cut) {
            return;
        }
        let truncated = &text[..cut];
        match decode_entry(truncated) {
            Ok(back) => {
                // Only the full text (modulo the trailing newline) may
                // still decode — and then it must decode to the same
                // entry, never to a silently different one.
                prop_assert_eq!(back, entry);
                prop_assert!(cut >= text.trim_end().len(), "cut={} of {}", cut, text.len());
            }
            Err(EntryError::Malformed(_)) => {}
            Err(EntryError::VersionSkew { .. }) => {
                prop_assert!(false, "truncation must not masquerade as version skew");
            }
        }
    }

    #[test]
    fn version_skew_is_always_a_diagnostic(found in 0u64..1_000_000, extra in any::<u64>()) {
        if found == petal_registry::FORMAT_VERSION {
            return;
        }
        let entry = entry_from(1, 8, 7, 3, 64, 0, &[], &[(5, 9)]);
        let mut text = entry.encode();
        // Replace the header with a vN header carrying future trailing
        // fields; field 0 is frozen, so this must surface as skew.
        let rest = text.split_off(text.find('\n').expect("header"));
        let version = found.to_string();
        let capability = format!("cap{extra}");
        text = format!(
            "REGV {}:{} {}:{}{}",
            version.len(), version, capability.len(), capability, rest
        );
        prop_assert_eq!(decode_entry(&text), Err(EntryError::VersionSkew { found }));
    }

    // ---- nearest-key lookup laws ----

    #[test]
    fn lookup_tiers_are_ordered_and_permutation_invariant(
        order in vec(any::<u64>(), 5..10),
        spec_seed in 0u64..1000,
        query_which in 0usize..5,
    ) {
        // A pool of distinct machines spanning all families, one entry
        // each for the same (spec, size) cell.
        let spec = format!("spec-{spec_seed}");
        let pool: Vec<StoredEntry> = (0..5)
            .map(|i| StoredEntry {
                machine: machine_from(i, 2 + i, 100 + i as u64),
                bench_spec: spec.clone(),
                size: 4096,
                config: config_from(&[(64, 1)], &[]),
                time_secs: 1.0 + i as f64,
                source: format!("donor-{i}"),
            })
            .collect();
        let query = machine_from(query_which, 2 + query_which, 100 + query_which as u64);

        // Insert in a permutation driven by `order`.
        let mut perm: Vec<usize> = (0..pool.len()).collect();
        for (i, &o) in order.iter().enumerate() {
            let j = (o % pool.len() as u64) as usize;
            perm.swap(i % pool.len(), j);
        }
        let dir = temp_dir(&format!("perm-{spec_seed}-{query_which}"));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = DirStore::open(&dir).expect("open");
        for &i in &perm {
            reg.put_force(&pool[i]).expect("put");
        }
        let got = reg.lookup(&query, &spec, 4096).expect("lookup").expect("pool covers query");

        // Tier law: the query machine is in the pool, so the winner must
        // be the exact fingerprint match.
        prop_assert_eq!(got.tier, MatchTier::Exact);
        prop_assert_eq!(fingerprint(&got.entry.machine), fingerprint(&query));
        prop_assert_eq!(got.distance, 0.0);

        // Remove the exact donor: now a same-family donor (if any) must
        // beat every cross-family one.
        let exact_key = pool[query_which].key_hash();
        std::fs::remove_file(dir.join(format!("{exact_key:016x}.reg"))).expect("rm exact");
        let fam = family(&query);
        let same_family_exists = pool
            .iter()
            .enumerate()
            .any(|(i, e)| i != query_which && family(&e.machine) == fam);
        if let Some(m) = reg.lookup(&query, &spec, 4096).expect("lookup") {
            if same_family_exists {
                prop_assert_eq!(m.tier, MatchTier::Family);
                prop_assert_eq!(family(&m.entry.machine), fam);
            } else {
                prop_assert_eq!(m.tier, MatchTier::Fallback);
            }
            prop_assert!(m.distance > 0.0);
        } else {
            prop_assert!(false, "four donors remain; lookup must succeed");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_is_deterministic_under_insertion_order(
        order in vec(any::<u64>(), 1..8),
        seeds in vec((0usize..5, 2usize..64, any::<u64>()), 2..6),
    ) {
        // Arbitrary donor machines (possibly same-family duplicates with
        // tied distances) inserted in two different orders must produce
        // the same winner, bit for bit.
        let spec = "perm-spec".to_owned();
        let pool: Vec<StoredEntry> = seeds
            .iter()
            .enumerate()
            .map(|(i, &(which, cores, bits))| StoredEntry {
                machine: machine_from(which, cores, bits),
                bench_spec: spec.clone(),
                size: 64,
                config: config_from(&[(10 + i as u64, 2)], &[]),
                time_secs: 0.5,
                source: format!("s{i}"),
            })
            .collect();
        let query = MachineProfile::desktop();

        let mut perm: Vec<usize> = (0..pool.len()).collect();
        for (i, &o) in order.iter().enumerate() {
            let j = (o % pool.len() as u64) as usize;
            perm.swap(i % pool.len(), j);
        }

        let dir_a = temp_dir("order-a");
        let dir_b = temp_dir("order-b");
        for d in [&dir_a, &dir_b] {
            let _ = std::fs::remove_dir_all(d);
        }
        let reg_a = DirStore::open(&dir_a).expect("open a");
        let reg_b = DirStore::open(&dir_b).expect("open b");
        for &i in &perm {
            reg_a.put_force(&pool[i]).expect("put a");
        }
        for e in &pool {
            reg_b.put_force(e).expect("put b");
        }
        let a = reg_a.lookup(&query, &spec, 64).expect("lookup a");
        let b = reg_b.lookup(&query, &spec, 64).expect("lookup b");
        match (a, b) {
            (Some(ma), Some(mb)) => {
                prop_assert_eq!(ma.entry, mb.entry);
                prop_assert_eq!(ma.tier, mb.tier);
                prop_assert_eq!(ma.distance.to_bits(), mb.distance.to_bits());
            }
            (None, None) => {}
            other => prop_assert!(false, "presence differs: {:?}", other),
        }
        for d in [&dir_a, &dir_b] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}

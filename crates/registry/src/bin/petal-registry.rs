//! `petal-registry` — operate on a tuned-configuration registry.
//!
//! ```text
//! petal-registry put --machine <codename> --spec "<spec>" --time <secs> \
//!                    [--size N] [--config <file>|-] [--source <label>] [--force] \
//!                    [--registry <endpoint>]
//! petal-registry get --machine <codename> --spec "<spec>" [--size N] [--exact] \
//!                    [--registry <endpoint>]
//! petal-registry ls  [--registry <endpoint>]
//! petal-registry gc  [--registry <endpoint>]
//! ```
//!
//! The registry endpoint comes from `--registry <endpoint>` (also
//! `--registry=<endpoint>`) or the `PETAL_REGISTRY` environment
//! variable; the flag wins. An endpoint is `dir:<path>` (or a bare
//! path) for a local directory store, or `tcp:<host>:<port>` /
//! `unix:<path>` for a registry served by a `petal-farmd` dispatcher —
//! every subcommand works identically against either. `get` prints the
//! stored config text to stdout (ready to redirect into a config file)
//! and the match metadata — tier, distance, donor machine — to stderr,
//! so scripts can pipe the one without parsing the other.

use petal_farm::net::Endpoint;
use petal_gpu::profile::MachineProfile;
use petal_registry::{
    decode_entry, fingerprint_hex, ConfigStore, DirStore, PutOutcome, RemoteStore, StoredEntry,
    ENTRY_EXT,
};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("petal-registry: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:\n  \
    petal-registry put --machine <codename> --spec <spec> --time <secs> \
[--size N] [--config <file>|-] [--source <label>] [--force] [--registry <endpoint>]\n  \
    petal-registry get --machine <codename> --spec <spec> [--size N] [--exact] \
[--registry <endpoint>]\n  \
    petal-registry ls [--registry <endpoint>]\n  \
    petal-registry gc [--registry <endpoint>]\n\
(--registry defaults to $PETAL_REGISTRY; endpoints are dir:<path> | a bare \
path | tcp:<host>:<port> | unix:<path>)";

/// Minimal flag cursor: `--flag value`, `--flag=value`, and boolean
/// flags, mirroring the `HarnessArgs` conventions without depending on
/// the bench crate.
struct Flags {
    rest: Vec<String>,
}

impl Flags {
    fn new(args: &[String]) -> Self {
        Flags { rest: args.to_vec() }
    }

    /// Take `--name <v>` / `--name=<v>`, or `None` when absent.
    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        let eq = format!("{name}=");
        let mut i = 0;
        while i < self.rest.len() {
            if self.rest[i] == name {
                if i + 1 >= self.rest.len() {
                    return Err(format!("{name} needs a value"));
                }
                self.rest.remove(i);
                return Ok(Some(self.rest.remove(i)));
            }
            if let Some(v) = self.rest[i].strip_prefix(&eq) {
                let v = v.to_owned();
                self.rest.remove(i);
                return Ok(Some(v));
            }
            i += 1;
        }
        Ok(None)
    }

    /// Take a boolean `--name`.
    fn flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    fn finish(self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", self.rest.join(" ")))
        }
    }
}

/// Resolve `--registry`/`$PETAL_REGISTRY` into a live store — a
/// [`DirStore`] for `dir:`/bare-path endpoints, a [`RemoteStore`] for
/// socket endpoints. Subcommands only ever see `&dyn ConfigStore`.
fn open_store(flags: &mut Flags) -> Result<Box<dyn ConfigStore>, String> {
    let text = match flags.value("--registry")? {
        Some(e) => e,
        None => match std::env::var("PETAL_REGISTRY") {
            Ok(e) if !e.is_empty() => e,
            _ => return Err("no registry: pass --registry <endpoint> or set PETAL_REGISTRY".into()),
        },
    };
    let endpoint = Endpoint::parse_store(&text)?;
    match endpoint {
        Endpoint::Dir(dir) => Ok(Box::new(DirStore::open(dir).map_err(|e| e.to_string())?)),
        Endpoint::Tcp(_) | Endpoint::Unix(_) => {
            Ok(Box::new(RemoteStore::connect(&endpoint).map_err(|e| e.to_string())?))
        }
        // A fallback list: the RemoteStore walks the socket elements on
        // every connect; a `dir:` element is the terminal local
        // fallback when no service answers.
        Endpoint::Fallback(ref elements) => {
            let dir = elements.iter().find_map(|e| match e {
                Endpoint::Dir(d) => Some(d.clone()),
                _ => None,
            });
            let service_err = if endpoint.socket_elements().is_empty() {
                None
            } else {
                match RemoteStore::connect(&endpoint) {
                    Ok(store) => return Ok(Box::new(store)),
                    Err(e) => Some(e),
                }
            };
            match (dir, service_err) {
                (Some(d), Some(e)) => {
                    eprintln!(
                        "petal-registry: registry service unreachable ({e}); \
                         falling back to directory {}",
                        d.display()
                    );
                    Ok(Box::new(DirStore::open(d).map_err(|e| e.to_string())?))
                }
                (Some(d), None) => Ok(Box::new(DirStore::open(d).map_err(|e| e.to_string())?)),
                (None, Some(e)) => {
                    Err(format!("cannot reach the registry service at `{endpoint}`: {e}"))
                }
                (None, None) => {
                    Err(format!("registry endpoint list `{endpoint}` has nothing to open"))
                }
            }
        }
        Endpoint::Disabled => Err("registry disabled (`--registry none`)".into()),
    }
}

fn machine_arg(flags: &mut Flags) -> Result<MachineProfile, String> {
    let name = flags.value("--machine")?.ok_or("--machine <codename> is required")?;
    MachineProfile::by_codename(&name).ok_or_else(|| {
        format!("unknown machine `{name}` (try desktop/server/laptop/igpu/manycore)")
    })
}

/// Spec and input size; `--size` defaults to the spec's own input size.
fn spec_and_size(flags: &mut Flags) -> Result<(String, u64), String> {
    let spec = flags.value("--spec")?.ok_or("--spec <spec> is required")?;
    let size = match flags.value("--size")? {
        Some(s) => s.parse().map_err(|_| format!("bad --size `{s}`"))?,
        None => benchmark_default_size(&spec)?,
    };
    Ok((spec, size))
}

fn benchmark_default_size(spec: &str) -> Result<u64, String> {
    petal_apps::benchmark_from_spec(spec)
        .map(|b| b.input_size())
        .map_err(|e| format!("cannot infer --size from spec: {e}"))
}

/// The entry's canonical file name (`<key-hash>.reg`) — what `ls`
/// labels rows with on every store kind.
fn entry_file(e: &StoredEntry) -> String {
    format!("{:016x}.{ENTRY_EXT}", e.key_hash())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    let mut flags = Flags::new(rest);
    match cmd.as_str() {
        "put" => {
            let store = open_store(&mut flags)?;
            let machine = machine_arg(&mut flags)?;
            let (bench_spec, size) = spec_and_size(&mut flags)?;
            let time_secs: f64 = flags
                .value("--time")?
                .ok_or("--time <secs> is required")?
                .parse()
                .map_err(|_| "bad --time (decimal seconds)".to_owned())?;
            let config_text = match flags.value("--config")?.as_deref() {
                None | Some("-") => {
                    let mut text = String::new();
                    std::io::stdin()
                        .read_to_string(&mut text)
                        .map_err(|e| format!("reading config from stdin: {e}"))?;
                    text
                }
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| format!("reading config `{path}`: {e}"))?,
            };
            let config = config_text.parse().map_err(|e| format!("bad config text: {e}"))?;
            let source =
                flags.value("--source")?.unwrap_or_else(|| "petal-registry put".to_owned());
            let force = flags.flag("--force");
            flags.finish()?;
            let entry = StoredEntry { machine, bench_spec, size, config, time_secs, source };
            let file = entry_file(&entry);
            if force {
                store.put(&entry, true).map_err(|e| e.to_string())?;
                println!("forced {file}");
            } else {
                match store.put(&entry, false).map_err(|e| e.to_string())? {
                    PutOutcome::Inserted => println!("inserted {file}"),
                    PutOutcome::Replaced => println!("replaced {file}"),
                    PutOutcome::KeptExisting => {
                        println!("kept existing (better or equal time) {file}");
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "get" => {
            let store = open_store(&mut flags)?;
            let machine = machine_arg(&mut flags)?;
            let (spec, size) = spec_and_size(&mut flags)?;
            let exact = flags.flag("--exact");
            flags.finish()?;
            match store.lookup(&machine, &spec, size, exact).map_err(|e| e.to_string())? {
                Some(m) => {
                    let scaled = match m.scaled_from {
                        Some(from) => format!(" scaled-from={from}"),
                        None => String::new(),
                    };
                    eprintln!(
                        "match tier={} distance={:.3} machine={} fingerprint={} time={:.6e}s \
                         source={}{scaled}",
                        m.tier,
                        m.distance,
                        m.entry.machine.codename,
                        fingerprint_hex(&m.entry.machine),
                        m.entry.time_secs,
                        m.entry.source,
                    );
                    print!("{}", m.entry.config);
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    eprintln!(
                        "no match for machine={} spec=\"{spec}\" size={size}",
                        machine.codename
                    );
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "ls" => {
            let store = open_store(&mut flags)?;
            flags.finish()?;
            let listing = store.ls().map_err(|e| e.to_string())?;
            for (_, e) in &listing.entries {
                println!(
                    "{} machine={} fingerprint={} spec=\"{}\" size={} time={:.6e}s source={}",
                    entry_file(e),
                    e.machine.codename,
                    fingerprint_hex(&e.machine),
                    e.bench_spec,
                    e.size,
                    e.time_secs,
                    e.source,
                );
            }
            for issue in &listing.issues {
                eprintln!("skipped {issue}");
            }
            println!("{} entries, {} unusable", listing.entries.len(), listing.issues.len());
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let store = open_store(&mut flags)?;
            flags.finish()?;
            let removed = store.gc().map_err(|e| e.to_string())?;
            for line in &removed {
                println!("removed {line}");
            }
            println!("{} files removed", removed.len());
            Ok(ExitCode::SUCCESS)
        }
        "decode" => {
            // Undocumented helper: decode an entry file for debugging.
            let path = flags.value("--file")?.ok_or("decode needs --file <entry>")?;
            flags.finish()?;
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading `{path}`: {e}"))?;
            let entry = decode_entry(&text).map_err(|e| e.to_string())?;
            println!("{entry:#?}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

//! `petal-registry` — operate on a tuned-configuration registry.
//!
//! ```text
//! petal-registry put --machine <codename> --spec "<spec>" --time <secs> \
//!                    [--size N] [--config <file>|-] [--source <label>] [--force] \
//!                    [--registry <dir>]
//! petal-registry get --machine <codename> --spec "<spec>" [--size N] [--exact] \
//!                    [--registry <dir>]
//! petal-registry ls  [--registry <dir>]
//! petal-registry gc  [--registry <dir>]
//! ```
//!
//! The registry directory comes from `--registry <dir>` (also
//! `--registry=<dir>`) or the `PETAL_REGISTRY` environment variable;
//! the flag wins. `get` prints the stored config text to stdout (ready
//! to redirect into a config file) and the match metadata — tier,
//! distance, donor machine — to stderr, so scripts can pipe the one
//! without parsing the other.

use petal_gpu::profile::MachineProfile;
use petal_registry::{decode_entry, fingerprint_hex, MatchTier, PutOutcome, Registry, StoredEntry};
use std::io::Read as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("petal-registry: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:\n  \
    petal-registry put --machine <codename> --spec <spec> --time <secs> \
[--size N] [--config <file>|-] [--source <label>] [--force] [--registry <dir>]\n  \
    petal-registry get --machine <codename> --spec <spec> [--size N] [--exact] \
[--registry <dir>]\n  \
    petal-registry ls [--registry <dir>]\n  \
    petal-registry gc [--registry <dir>]\n\
(--registry defaults to $PETAL_REGISTRY)";

/// Minimal flag cursor: `--flag value`, `--flag=value`, and boolean
/// flags, mirroring the `HarnessArgs` conventions without depending on
/// the bench crate.
struct Flags {
    rest: Vec<String>,
}

impl Flags {
    fn new(args: &[String]) -> Self {
        Flags { rest: args.to_vec() }
    }

    /// Take `--name <v>` / `--name=<v>`, or `None` when absent.
    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        let eq = format!("{name}=");
        let mut i = 0;
        while i < self.rest.len() {
            if self.rest[i] == name {
                if i + 1 >= self.rest.len() {
                    return Err(format!("{name} needs a value"));
                }
                self.rest.remove(i);
                return Ok(Some(self.rest.remove(i)));
            }
            if let Some(v) = self.rest[i].strip_prefix(&eq) {
                let v = v.to_owned();
                self.rest.remove(i);
                return Ok(Some(v));
            }
            i += 1;
        }
        Ok(None)
    }

    /// Take a boolean `--name`.
    fn flag(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(i) => {
                self.rest.remove(i);
                true
            }
            None => false,
        }
    }

    fn finish(self) -> Result<(), String> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", self.rest.join(" ")))
        }
    }
}

fn open_registry(flags: &mut Flags) -> Result<Registry, String> {
    let dir = match flags.value("--registry")? {
        Some(d) => PathBuf::from(d),
        None => match std::env::var_os("PETAL_REGISTRY") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => return Err("no registry: pass --registry <dir> or set PETAL_REGISTRY".into()),
        },
    };
    Registry::open(dir).map_err(|e| e.to_string())
}

fn machine_arg(flags: &mut Flags) -> Result<MachineProfile, String> {
    let name = flags.value("--machine")?.ok_or("--machine <codename> is required")?;
    MachineProfile::by_codename(&name).ok_or_else(|| {
        format!("unknown machine `{name}` (try desktop/server/laptop/igpu/manycore)")
    })
}

/// Spec and input size; `--size` defaults to the spec's own input size.
fn spec_and_size(flags: &mut Flags) -> Result<(String, u64), String> {
    let spec = flags.value("--spec")?.ok_or("--spec <spec> is required")?;
    let size = match flags.value("--size")? {
        Some(s) => s.parse().map_err(|_| format!("bad --size `{s}`"))?,
        None => benchmark_default_size(&spec)?,
    };
    Ok((spec, size))
}

fn benchmark_default_size(spec: &str) -> Result<u64, String> {
    petal_apps::benchmark_from_spec(spec)
        .map(|b| b.input_size())
        .map_err(|e| format!("cannot infer --size from spec: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    let mut flags = Flags::new(rest);
    match cmd.as_str() {
        "put" => {
            let reg = open_registry(&mut flags)?;
            let machine = machine_arg(&mut flags)?;
            let (bench_spec, size) = spec_and_size(&mut flags)?;
            let time_secs: f64 = flags
                .value("--time")?
                .ok_or("--time <secs> is required")?
                .parse()
                .map_err(|_| "bad --time (decimal seconds)".to_owned())?;
            let config_text = match flags.value("--config")?.as_deref() {
                None | Some("-") => {
                    let mut text = String::new();
                    std::io::stdin()
                        .read_to_string(&mut text)
                        .map_err(|e| format!("reading config from stdin: {e}"))?;
                    text
                }
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| format!("reading config `{path}`: {e}"))?,
            };
            let config = config_text.parse().map_err(|e| format!("bad config text: {e}"))?;
            let source =
                flags.value("--source")?.unwrap_or_else(|| "petal-registry put".to_owned());
            let force = flags.flag("--force");
            flags.finish()?;
            let entry = StoredEntry { machine, bench_spec, size, config, time_secs, source };
            if force {
                let path = reg.put_force(&entry).map_err(|e| e.to_string())?;
                println!("forced {}", path.display());
            } else {
                match reg.put(&entry).map_err(|e| e.to_string())? {
                    PutOutcome::Inserted(p) => println!("inserted {}", p.display()),
                    PutOutcome::Replaced(p) => println!("replaced {}", p.display()),
                    PutOutcome::KeptExisting(p) => {
                        println!("kept existing (better or equal time) {}", p.display());
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "get" => {
            let reg = open_registry(&mut flags)?;
            let machine = machine_arg(&mut flags)?;
            let (spec, size) = spec_and_size(&mut flags)?;
            let exact = flags.flag("--exact");
            flags.finish()?;
            let found = if exact {
                reg.get_exact(&machine, &spec, size).map_err(|e| e.to_string())?.map(|entry| {
                    petal_registry::Match { entry, tier: MatchTier::Exact, distance: 0.0 }
                })
            } else {
                reg.lookup(&machine, &spec, size).map_err(|e| e.to_string())?
            };
            match found {
                Some(m) => {
                    eprintln!(
                        "match tier={} distance={:.3} machine={} fingerprint={} time={:.6e}s \
                         source={}",
                        m.tier,
                        m.distance,
                        m.entry.machine.codename,
                        fingerprint_hex(&m.entry.machine),
                        m.entry.time_secs,
                        m.entry.source,
                    );
                    print!("{}", m.entry.config);
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    eprintln!(
                        "no match for machine={} spec=\"{spec}\" size={size}",
                        machine.codename
                    );
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "ls" => {
            let reg = open_registry(&mut flags)?;
            flags.finish()?;
            let scan = reg.scan().map_err(|e| e.to_string())?;
            for (path, e) in &scan.entries {
                println!(
                    "{} machine={} fingerprint={} spec=\"{}\" size={} time={:.6e}s source={}",
                    path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default(),
                    e.machine.codename,
                    fingerprint_hex(&e.machine),
                    e.bench_spec,
                    e.size,
                    e.time_secs,
                    e.source,
                );
            }
            for issue in &scan.issues {
                eprintln!("skipped {}: {}", issue.path.display(), issue.error);
            }
            println!("{} entries, {} unusable", scan.entries.len(), scan.issues.len());
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let reg = open_registry(&mut flags)?;
            flags.finish()?;
            let removed = reg.gc().map_err(|e| e.to_string())?;
            for issue in &removed {
                println!("removed {}: {}", issue.path.display(), issue.error);
            }
            println!("{} files removed", removed.len());
            Ok(ExitCode::SUCCESS)
        }
        "decode" => {
            // Undocumented helper: decode an entry file for debugging.
            let path = flags.value("--file")?.ok_or("decode needs --file <entry>")?;
            flags.finish()?;
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading `{path}`: {e}"))?;
            let entry = decode_entry(&text).map_err(|e| e.to_string())?;
            println!("{entry:#?}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

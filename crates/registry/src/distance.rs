//! Machine fingerprints, families, and the nearest-key distance.
//!
//! Lookup needs three things from a [`MachineProfile`]: an *identity*
//! (the [`fingerprint`] — equal iff every cost-model field is
//! bit-identical), a *coarse class* (the [`MachineFamily`] — which of
//! the paper's qualitative regimes the machine tunes like), and a
//! *metric* (the [`distance`] — how far apart two machines' dominant
//! cost-model ratios sit). The tiers exist because family membership
//! dominates raw magnitudes: Fig. 7's worst migrations are
//! cross-family (Desktop→Server 16×), so a small same-family machine is
//! a better warm-start donor than a big cross-family one even when the
//! latter's numbers are closer.

use petal_farm::wire::Message;
use petal_gpu::profile::MachineProfile;
use std::fmt;

/// FNV-1a 64-bit hash (the workspace is offline; this is the standard
/// public-domain constant pair).
#[must_use]
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The machine's identity for registry keys: FNV-1a over the profile's
/// canonical wire encoding (the same [`petal_farm::wire`] field
/// flattening that ships profiles to shard workers). Two profiles share
/// a fingerprint iff every field — codename, OS, runtime, and every
/// cost-model number, down to exact f64 bit patterns — is identical.
#[must_use]
pub fn fingerprint(machine: &MachineProfile) -> u64 {
    // The INIT encoding is the one canonical profile serialization in
    // the workspace; the version and spec slots are pinned so the
    // fingerprint depends on the machine alone.
    let line =
        Message::Init { version: 0, bench_spec: String::new(), machine: Box::new(machine.clone()) }
            .encode();
    fnv1a64(line.as_bytes())
}

/// [`fingerprint`] as the fixed-width hex used in filenames and CLI
/// output.
#[must_use]
pub fn fingerprint_hex(machine: &MachineProfile) -> String {
    format!("{:016x}", fingerprint(machine))
}

/// The qualitative tuning regime a machine belongs to. Same family ⇒
/// the same *kinds* of choices win (which algorithm class, whether to
/// stage scratchpad, whether fractional CPU/GPU splits pay), so a
/// same-family config is a strong warm-start seed even across very
/// different magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MachineFamily {
    /// No OpenCL runtime at all (`gpu: None`) — tuning is purely
    /// CPU-side structure (the ManyCore preset).
    CpuOnly,
    /// An OpenCL runtime that JITs for the host CPU (`cpu_backed`):
    /// transfers are memcpys and local memory is a fiction (the Server
    /// preset).
    CpuBackedOpenCl,
    /// A physical GPU sharing host DRAM — `global_bw` within 25% of the
    /// host `mem_bw`, so transfers are nearly free but the device
    /// competes for bandwidth (the iGPU preset).
    IntegratedGpu,
    /// A physical GPU with its own memory behind an interconnect (the
    /// Desktop and Laptop presets).
    DiscreteGpu,
}

impl fmt::Display for MachineFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MachineFamily::CpuOnly => "cpu-only",
            MachineFamily::CpuBackedOpenCl => "cpu-backed-opencl",
            MachineFamily::IntegratedGpu => "integrated-gpu",
            MachineFamily::DiscreteGpu => "discrete-gpu",
        })
    }
}

/// Classify a machine into its [`MachineFamily`].
#[must_use]
pub fn family(machine: &MachineProfile) -> MachineFamily {
    match &machine.gpu {
        None => MachineFamily::CpuOnly,
        Some(g) if g.cpu_backed => MachineFamily::CpuBackedOpenCl,
        // "Shares host DRAM": no meaningful device-side bandwidth edge
        // over the host memory bus. The 1.25 slack absorbs calibration
        // noise without capturing any discrete card (the weakest
        // discrete preset, the Laptop's HD 6630M, is at 2.1×).
        Some(g) if g.global_bw <= machine.cpu.mem_bw * 1.25 => MachineFamily::IntegratedGpu,
        Some(_) => MachineFamily::DiscreteGpu,
    }
}

/// |log₂(a/b)| — octaves between two positive magnitudes; 0 for equal
/// values, 1 per doubling, symmetric. Degenerate (≤ 0 or non-finite)
/// inputs fall back to a fixed 32-octave penalty instead of poisoning
/// the sum with NaN.
pub(crate) fn octaves(a: f64, b: f64) -> f64 {
    if a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite() {
        // Divide large by small so the result is bit-identical in both
        // argument orders (a/b and b/a round differently at the ulp).
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        (hi / lo).log2()
    } else if a == b {
        0.0
    } else {
        32.0
    }
}

/// Penalty added when exactly one side has the named capability.
fn mismatch(a: bool, b: bool, penalty: f64) -> f64 {
    if a == b {
        0.0
    } else {
        penalty
    }
}

/// Nearest-key metric between two machines: the sum of octave gaps
/// (|log₂ ratio|) over the cost-model magnitudes that dominate tuned
/// configurations, plus fixed penalties for capability mismatches.
///
/// Summed terms (each in octaves):
///
/// * CPU — core count, aggregate scalar flop/s, memory bandwidth;
/// * GPU (when both sides have one) — device flop/s, global bandwidth,
///   interconnect bandwidth, scratchpad bandwidth;
/// * +8 when exactly one side's device is `cpu_backed` (staging and
///   transfer decisions invert);
/// * +16 when exactly one side has a device at all (every OpenCL choice
///   is meaningless on the other).
///
/// Ratios, not differences: what moves a tuned config is *relative*
/// capability (GPU:CPU speed ratio, transfer cost per byte of
/// bandwidth), so a uniformly-2×-faster machine is "1 octave away" on
/// each axis, not "billions of flop/s away". Symmetric, zero iff the
/// compared magnitudes are all equal; used only to rank candidates
/// within a lookup tier.
#[must_use]
pub fn distance(a: &MachineProfile, b: &MachineProfile) -> f64 {
    let mut d = octaves(a.cpu.cores as f64, b.cpu.cores as f64)
        + octaves(a.cpu_flops(), b.cpu_flops())
        + octaves(a.cpu.mem_bw, b.cpu.mem_bw);
    match (&a.gpu, &b.gpu) {
        (Some(ga), Some(gb)) => {
            d += octaves(ga.flops, gb.flops)
                + octaves(ga.global_bw, gb.global_bw)
                + octaves(ga.pcie_bw, gb.pcie_bw)
                + octaves(ga.local_bw, gb.local_bw)
                + mismatch(ga.cpu_backed, gb.cpu_backed, 8.0);
        }
        (None, None) => {}
        _ => d += 16.0,
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_classify_into_the_documented_families() {
        assert_eq!(family(&MachineProfile::desktop()), MachineFamily::DiscreteGpu);
        assert_eq!(family(&MachineProfile::laptop()), MachineFamily::DiscreteGpu);
        assert_eq!(family(&MachineProfile::server()), MachineFamily::CpuBackedOpenCl);
        assert_eq!(family(&MachineProfile::igpu()), MachineFamily::IntegratedGpu);
        assert_eq!(family(&MachineProfile::manycore()), MachineFamily::CpuOnly);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_cost_field() {
        let base = MachineProfile::desktop();
        let fp = fingerprint(&base);
        assert_eq!(fp, fingerprint(&base), "fingerprint is a pure function");

        let mut cores = base.clone();
        cores.cpu.cores += 1;
        assert_ne!(fingerprint(&cores), fp);

        let mut bw = base.clone();
        bw.gpu.as_mut().unwrap().global_bw *= 1.0 + f64::EPSILON;
        assert_ne!(fingerprint(&bw), fp, "a single ulp changes the fingerprint");

        let mut name = base;
        name.codename = "Desktop2".into();
        assert_ne!(fingerprint(&name), fp);
    }

    #[test]
    fn distance_is_a_symmetric_premetric_on_presets() {
        let machines = MachineProfile::extended();
        for a in &machines {
            assert_eq!(distance(a, a), 0.0, "{} to itself", a.codename);
            for b in &machines {
                let d = distance(a, b);
                assert!(d.is_finite() && d >= 0.0);
                assert_eq!(d, distance(b, a), "{} vs {}", a.codename, b.codename);
                if a.codename != b.codename {
                    assert!(d > 0.0, "{} vs {}", a.codename, b.codename);
                }
            }
        }
    }

    #[test]
    fn capability_mismatches_dominate_magnitude_gaps() {
        let desktop = MachineProfile::desktop();
        let laptop = MachineProfile::laptop();
        let server = MachineProfile::server();
        let manycore = MachineProfile::manycore();
        // Desktop↔Laptop differ only in magnitudes; Desktop↔Server cross
        // the cpu_backed line (+8); Desktop↔ManyCore the gpu-presence
        // line (+16).
        assert!(distance(&desktop, &laptop) < distance(&desktop, &server));
        assert!(distance(&desktop, &server) < distance(&desktop, &manycore));
    }

    #[test]
    fn octaves_degrade_gracefully() {
        assert_eq!(octaves(4.0, 4.0), 0.0);
        assert_eq!(octaves(8.0, 2.0), 2.0);
        assert_eq!(octaves(2.0, 8.0), 2.0);
        assert_eq!(octaves(0.0, 0.0), 0.0);
        assert_eq!(octaves(1.0, 0.0), 32.0);
        assert_eq!(octaves(f64::NAN, 1.0), 32.0);
    }
}

//! # petal-registry — the tuned-configuration registry
//!
//! The paper's central quantitative result (Fig. 7) is that a
//! configuration tuned on one machine loses 1.5×–16× when migrated to
//! another. The serving answer is a **config registry**: a persistent
//! store of `Tuned.config` keyed by `(machine fingerprint, benchmark
//! spec, input size)`. A deployment serving millions of users answers
//! most tuning requests straight from the registry; only a genuinely
//! novel machine pays for evolutionary search — and even then it starts
//! *warm*, seeded with the nearest stored configuration
//! (`petal_tuner::TunerSettings::warm_start`), so the search only has to
//! repair the migration penalty instead of rediscovering the whole
//! mapping.
//!
//! ## Stores
//!
//! Every consumer works against the object-safe [`ConfigStore`] trait
//! (`lookup` / `put` / `ls` / `gc`); the two implementations are
//! indistinguishable behind it, so a call site switches between them by
//! changing nothing but an endpoint string:
//!
//! * [`DirStore`] — the original directory-backed store (one entry per
//!   `<key-hash>.reg` file, atomic write-then-rename);
//! * [`RemoteStore`] — the same store served over a `petal-farmd`
//!   dispatcher socket (wire version 3's `REG_GET`/`REG_PUT`/`REG_HIT`/
//!   `REG_MISS` records). Keep-best merge and persistence stay on the
//!   dispatcher, so concurrent publishes from many clients are
//!   serialized and deterministic.
//!
//! ## Key schema
//!
//! An entry is addressed by three components:
//!
//! 1. **Machine fingerprint** — [`fingerprint`], an FNV-1a hash over the
//!    machine's canonical wire encoding (the same
//!    [`petal_farm::wire`] encoding that ships profiles to shard
//!    workers, so two profiles hash equal iff every cost-model field is
//!    bit-identical).
//! 2. **Benchmark spec** — the [`petal_apps::Benchmark::spec`] line
//!    (exact, including its size parameters).
//! 3. **Input size** — the size the configuration was tuned at.
//!
//! ## Nearest-key lookup
//!
//! [`DirStore::lookup`] matches the benchmark spec and size exactly but
//! the *machine* by nearest key, in three tiers:
//!
//! * [`MatchTier::Exact`] — same fingerprint (bit-identical profile);
//! * [`MatchTier::Family`] — same [`MachineFamily`] (CPU-only /
//!   CPU-backed OpenCL / integrated GPU / discrete GPU), nearest by
//!   [`distance`];
//! * [`MatchTier::Fallback`] — any machine, nearest by [`distance`].
//!
//! An exact hit always beats every family hit, which always beats every
//! fallback hit. Within a tier, the entry with the smallest [`distance`]
//! wins; ties break on the fingerprint (then key) hex, so lookup is a
//! pure function of the registry *contents* — insertion order can never
//! change the answer (entries live in files named by their key hash, and
//! scans sort by file name).
//!
//! When no entry exists for the queried `(spec, size)` cell at all,
//! lookup falls back to **cross-size donors**: entries for the same
//! benchmark *kind* (the spec's first token) stored at other sizes. The
//! donor's config is rescaled by [`rescale_config`] — selector cutoffs
//! and size-like tunables (names containing `cutoff`, `split` or
//! `chunk`) are multiplied by the size ratio; ratio-like and
//! hardware-like tunables (`gpu_ratio`, `local_size`, ranks) are left
//! alone, since they track the machine, not the input. Cross-size
//! matches rank below every same-cell match, ordered by tier, then size
//! octaves, then machine [`distance`]; [`Match::scaled_from`] records
//! the donor's stored size.
//!
//! ## On-disk format
//!
//! One entry per file (`<key-hash>.reg`) inside the registry directory,
//! using the [`petal_farm::wire`] record conventions — line-delimited,
//! length-prefixed, escaped fields; exact IEEE-754 bit patterns for
//! floats:
//!
//! ```text
//! REGV <format version>
//! INIT 0 <benchmark spec> <machine profile fields…>
//! TUNED <size> <time_secs bits> <config text> <source label>
//! ```
//!
//! The `REGV` record's first field is frozen across all future format
//! versions, so version skew is always reported as a
//! [`EntryError::VersionSkew`] *diagnostic* — never a parse error — and
//! hostile or truncated payloads decode to [`EntryError::Malformed`],
//! never a panic (proven by `tests/store_prop.rs`).
//!
//! ## Determinism
//!
//! Registry reads happen on the client, before a tuning run starts: a
//! warm start only changes the *candidates* of generation 0, which
//! travel the same dispatch path as any other candidate. Nothing the
//! registry does can reach the farm's client-side submission-order
//! merge, so tuning results stay bit-identical at every thread, shard
//! and farmd fleet size — warm or cold.

#![warn(missing_docs)]

mod distance;
mod remote;

pub use distance::{distance, family, fingerprint, fingerprint_hex, MachineFamily};
pub use remote::{entry_from_wire, entry_to_wire, RemoteStore};

use petal_core::config::{Selector, Tunable};
use petal_core::Config;
use petal_farm::wire::{Message, Record};
use petal_gpu::profile::MachineProfile;
use std::fmt;
use std::path::{Path, PathBuf};

/// On-disk entry format version written by this build (the `REGV`
/// record). Bumped on any incompatible layout change; older/newer
/// entries surface as [`EntryError::VersionSkew`].
pub const FORMAT_VERSION: u64 = 1;

/// File extension of registry entries.
pub const ENTRY_EXT: &str = "reg";

/// One stored tuned configuration: the key (machine, spec, size), the
/// payload (config + its tuned virtual time) and a free-form provenance
/// label.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// The machine the configuration was tuned on (full profile — the
    /// fingerprint alone cannot support nearest-key distances).
    pub machine: MachineProfile,
    /// The benchmark's [`petal_apps::Benchmark::spec`] line.
    pub bench_spec: String,
    /// Input size the configuration was tuned at.
    pub size: u64,
    /// The tuned configuration.
    pub config: Config,
    /// Virtual execution time of `config` at `size` on `machine`
    /// (`Tuned.time_secs`); `put` keeps the best per key.
    pub time_secs: f64,
    /// Provenance label (e.g. `fig7`, `petal-registry put`).
    pub source: String,
}

impl StoredEntry {
    /// The entry's key hash: FNV-1a over `(fingerprint, spec, size)`,
    /// which is also its file name stem.
    #[must_use]
    pub fn key_hash(&self) -> u64 {
        key_hash(&self.machine, &self.bench_spec, self.size)
    }

    /// Encode as the on-disk entry text (inverse of [`decode_entry`]).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = Record::new("REGV", vec![FORMAT_VERSION.to_string()]).encode();
        out.push('\n');
        // The machine + spec ride the shard wire's INIT encoding so the
        // registry and the farm share one profile codec. The leading
        // version field is the *wire* version slot, unused here (0).
        out.push_str(
            &Message::Init {
                version: 0,
                bench_spec: self.bench_spec.clone(),
                machine: Box::new(self.machine.clone()),
            }
            .encode(),
        );
        out.push('\n');
        out.push_str(
            &Record::new(
                "TUNED",
                vec![
                    self.size.to_string(),
                    petal_apps::spec_f64(self.time_secs),
                    self.config.to_string(),
                    self.source.clone(),
                ],
            )
            .encode(),
        );
        out.push('\n');
        out
    }
}

/// The key hash addressing one `(machine, spec, size)` cell — also the
/// entry's file name stem, so a key can never be stored twice.
#[must_use]
pub fn key_hash(machine: &MachineProfile, bench_spec: &str, size: u64) -> u64 {
    let mut text = fingerprint_hex(machine);
    text.push('\n');
    text.push_str(bench_spec);
    text.push('\n');
    text.push_str(&size.to_string());
    distance::fnv1a64(text.as_bytes())
}

/// Why one entry's bytes could not be used (path-free; [`RegistryError`]
/// adds the file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// Framing/field/config violation — the bytes are not a valid entry
    /// of any version this build knows how to frame.
    Malformed(String),
    /// The entry framed correctly but was written by a different format
    /// version. A diagnostic, not a parse error: the `REGV` record's
    /// first field is frozen forever.
    VersionSkew {
        /// Version found in the entry's `REGV` record.
        found: u64,
    },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::Malformed(m) => write!(f, "malformed registry entry: {m}"),
            EntryError::VersionSkew { found } => write!(
                f,
                "registry entry format version skew: entry is v{found}, this build \
                 reads v{FORMAT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for EntryError {}

/// A registry operation failure, carrying the file it concerns.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure (the registry directory or an entry file).
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// An entry file exists but cannot be used.
    Entry {
        /// The offending entry file.
        path: PathBuf,
        /// Why it was rejected.
        error: EntryError,
    },
    /// A served-store failure: the dispatcher could not be reached, broke
    /// protocol, or reported a server-side error.
    Remote {
        /// The endpoint the store talks to.
        endpoint: String,
        /// What went wrong, for the operator.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "registry I/O error at {}: {source}", path.display())
            }
            RegistryError::Entry { path, error } => {
                write!(f, "{} ({})", error, path.display())
            }
            RegistryError::Remote { endpoint, message } => {
                write!(f, "remote registry error at {endpoint}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Decode one entry file's text (inverse of [`StoredEntry::encode`]).
///
/// # Errors
/// [`EntryError::VersionSkew`] when the `REGV` header names a version
/// this build does not read (the header's first field is frozen, so skew
/// is always diagnosable); [`EntryError::Malformed`] for every framing,
/// field or config violation. Never panics, whatever the bytes.
pub fn decode_entry(text: &str) -> Result<StoredEntry, EntryError> {
    let malformed = |m: &str| EntryError::Malformed(m.to_owned());
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| malformed("empty entry"))?;
    let header = Record::parse(header).map_err(|e| malformed(&format!("bad header: {e}")))?;
    if header.tag != "REGV" {
        return Err(malformed(&format!("expected REGV header, found `{}`", header.tag)));
    }
    // Field 0 of REGV is frozen across every future version (later
    // versions may append fields, which are deliberately ignored here):
    // an unknown version must surface as skew, not as a parse error.
    let version: u64 = header
        .fields
        .first()
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| malformed("REGV header without a version field"))?;
    if version != FORMAT_VERSION {
        return Err(EntryError::VersionSkew { found: version });
    }
    let init = lines.next().ok_or_else(|| malformed("entry truncated before INIT"))?;
    let init = Message::decode(init).map_err(|e| malformed(&format!("bad machine record: {e}")))?;
    let Message::Init { bench_spec, machine, .. } = init else {
        return Err(malformed("second record must be INIT"));
    };
    let tuned = lines.next().ok_or_else(|| malformed("entry truncated before TUNED"))?;
    let tuned = Record::parse(tuned).map_err(|e| malformed(&format!("bad TUNED record: {e}")))?;
    if tuned.tag != "TUNED" {
        return Err(malformed(&format!("expected TUNED record, found `{}`", tuned.tag)));
    }
    let [size, time, config, source] = tuned.fields.as_slice() else {
        return Err(malformed("TUNED record needs exactly 4 fields (size, time, config, source)"));
    };
    let size: u64 = size.parse().map_err(|_| malformed(&format!("bad size `{size}`")))?;
    let time_secs =
        petal_apps::spec_f64_parse(time).map_err(|e| malformed(&format!("bad time field: {e}")))?;
    let config: Config = config.parse().map_err(|e| malformed(&format!("bad config text: {e}")))?;
    if lines.next().is_some() {
        return Err(malformed("trailing data after TUNED record"));
    }
    Ok(StoredEntry {
        machine: *machine,
        bench_spec,
        size,
        config,
        time_secs,
        source: source.clone(),
    })
}

/// How close a lookup's winning entry is to the queried machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatchTier {
    /// Bit-identical machine profile (same [`fingerprint`]).
    Exact,
    /// Different machine of the same [`MachineFamily`].
    Family,
    /// A machine of a different family (best effort).
    Fallback,
}

impl fmt::Display for MatchTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchTier::Exact => "exact",
            MatchTier::Family => "family",
            MatchTier::Fallback => "fallback",
        })
    }
}

/// A successful nearest-key lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// The winning stored entry. For a cross-size match the entry is
    /// presented for the *queried* cell — spec and size rewritten, the
    /// config rescaled by [`rescale_config`] — while `time_secs` stays
    /// the donor's own (advisory: it was measured at the donor's size).
    pub entry: StoredEntry,
    /// Which tier it matched in.
    pub tier: MatchTier,
    /// [`distance`] from the queried machine to the entry's machine
    /// (0.0 for [`MatchTier::Exact`]).
    pub distance: f64,
    /// `Some(donor_size)` when the config was rescaled from an entry
    /// stored at another input size; `None` for same-cell matches.
    pub scaled_from: Option<u64>,
}

/// One unusable entry file found during a scan (corrupt bytes or a
/// version this build does not read). Scans and lookups *skip* these —
/// a damaged file must never take the registry down — and `gc` removes
/// them.
#[derive(Debug)]
pub struct ScanIssue {
    /// The offending file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub error: EntryError,
}

/// Everything a directory scan found.
#[derive(Debug, Default)]
pub struct Scan {
    /// Decodable entries with their file paths, sorted by file name
    /// (key hash) — deterministic whatever order files were created in.
    pub entries: Vec<(PathBuf, StoredEntry)>,
    /// Files skipped as corrupt or version-skewed.
    pub issues: Vec<ScanIssue>,
}

/// A directory-backed registry of tuned configurations — the local
/// [`ConfigStore`] implementation.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

/// The old name of [`DirStore`], from when the directory form was the
/// only store.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `DirStore`; write store-agnostic code against `ConfigStore`"
)]
pub type Registry = DirStore;

/// What a [`ConfigStore::put`] did with the offered entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// No entry existed for the key; the offer was written.
    Inserted,
    /// The offer replaced the incumbent: its `time_secs` was better, the
    /// incumbent was corrupt, or the write was forced.
    Replaced,
    /// An existing entry had an equal-or-better `time_secs`; the offer
    /// was discarded (keep-best semantics).
    KeptExisting,
}

impl PutOutcome {
    /// Stable lower-case token (also the served protocol's verdict
    /// field); inverse of [`Self::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PutOutcome::Inserted => "inserted",
            PutOutcome::Replaced => "replaced",
            PutOutcome::KeptExisting => "kept-existing",
        }
    }

    /// Inverse of [`Self::as_str`]; `None` for unknown tokens.
    #[must_use]
    pub fn parse(s: &str) -> Option<PutOutcome> {
        match s {
            "inserted" => Some(PutOutcome::Inserted),
            "replaced" => Some(PutOutcome::Replaced),
            "kept-existing" => Some(PutOutcome::KeptExisting),
            _ => None,
        }
    }
}

impl fmt::Display for PutOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl DirStore {
    /// Open (creating if needed) the registry at `dir`.
    ///
    /// # Errors
    /// [`RegistryError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|source| RegistryError::Io { path: dir.clone(), source })?;
        Ok(DirStore { dir })
    }

    /// The registry directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{ENTRY_EXT}"))
    }

    /// Store `entry` with keep-best semantics: an existing entry for the
    /// same key survives unless the offer's `time_secs` is strictly
    /// better (corrupt incumbents are always replaced).
    ///
    /// # Errors
    /// [`RegistryError::Io`] on filesystem failures.
    pub fn put(&self, entry: &StoredEntry) -> Result<PutOutcome, RegistryError> {
        let path = self.entry_path(entry.key_hash());
        match std::fs::read_to_string(&path) {
            Ok(text) => match decode_entry(&text) {
                Ok(existing) if existing.time_secs <= entry.time_secs => {
                    Ok(PutOutcome::KeptExisting)
                }
                _ => {
                    self.write_entry(&path, entry)?;
                    Ok(PutOutcome::Replaced)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.write_entry(&path, entry)?;
                Ok(PutOutcome::Inserted)
            }
            Err(source) => Err(RegistryError::Io { path, source }),
        }
    }

    /// Store `entry` unconditionally, replacing any incumbent.
    ///
    /// # Errors
    /// [`RegistryError::Io`] on filesystem failures.
    pub fn put_force(&self, entry: &StoredEntry) -> Result<PathBuf, RegistryError> {
        let path = self.entry_path(entry.key_hash());
        self.write_entry(&path, entry)?;
        Ok(path)
    }

    fn write_entry(&self, path: &Path, entry: &StoredEntry) -> Result<(), RegistryError> {
        // Write-then-rename so a crashed writer can never leave a
        // half-entry under the final name (a truncated file would be
        // skipped by scans anyway, but gc should not have to clean up
        // after ordinary crashes).
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, entry.encode())
            .map_err(|source| RegistryError::Io { path: tmp.clone(), source })?;
        std::fs::rename(&tmp, path)
            .map_err(|source| RegistryError::Io { path: path.to_path_buf(), source })
    }

    /// Read every entry file, sorted by file name (= key hash), skipping
    /// unusable files into [`Scan::issues`].
    ///
    /// # Errors
    /// [`RegistryError::Io`] when the directory itself cannot be read.
    pub fn scan(&self) -> Result<Scan, RegistryError> {
        let rd = std::fs::read_dir(&self.dir)
            .map_err(|source| RegistryError::Io { path: self.dir.clone(), source })?;
        let mut files: Vec<PathBuf> = rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == ENTRY_EXT))
            .collect();
        files.sort();
        let mut scan = Scan::default();
        for path in files {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    let error = EntryError::Malformed(format!("unreadable: {e}"));
                    scan.issues.push(ScanIssue { path, error });
                    continue;
                }
            };
            match decode_entry(&text) {
                Ok(entry) => scan.entries.push((path, entry)),
                Err(error) => scan.issues.push(ScanIssue { path, error }),
            }
        }
        Ok(scan)
    }

    /// Exact-key read: the stored entry for precisely this
    /// `(machine, spec, size)` cell, or `None`.
    ///
    /// # Errors
    /// [`RegistryError::Io`] on filesystem failures;
    /// [`RegistryError::Entry`] when the addressed file exists but is
    /// corrupt or version-skewed (an *addressed* read reports damage
    /// instead of hiding it — only scans skip).
    pub fn get_exact(
        &self,
        machine: &MachineProfile,
        bench_spec: &str,
        size: u64,
    ) -> Result<Option<StoredEntry>, RegistryError> {
        let path = self.entry_path(key_hash(machine, bench_spec, size));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(RegistryError::Io { path, source }),
        };
        decode_entry(&text).map(Some).map_err(|error| RegistryError::Entry { path, error })
    }

    /// Nearest-key lookup (see the module docs): spec and size match
    /// exactly, the machine by tier (exact fingerprint → same family →
    /// any), nearest [`distance`] first within a tier, ties broken on
    /// fingerprint then key hex. When the queried `(spec, size)` cell
    /// has no entry at all, falls back to cross-size donors of the same
    /// benchmark kind, rescaled by [`rescale_config`] and ranked by
    /// tier, size octaves, then machine distance. Deterministic for
    /// given registry contents; unusable files are skipped.
    ///
    /// # Errors
    /// [`RegistryError::Io`] when the directory cannot be read.
    pub fn lookup(
        &self,
        machine: &MachineProfile,
        bench_spec: &str,
        size: u64,
    ) -> Result<Option<Match>, RegistryError> {
        let scan = self.scan()?;
        if let Some(m) = best_same_cell(&scan.entries, machine, bench_spec, size) {
            return Ok(Some(m));
        }
        Ok(best_cross_size(&scan.entries, machine, bench_spec, size))
    }

    /// Remove unusable entry files (corrupt bytes, version skew, stray
    /// `.tmp` leftovers), returning what was deleted sorted by file name
    /// (= key hash) — never by directory iteration order, so the report
    /// is stable across filesystems.
    ///
    /// # Errors
    /// [`RegistryError::Io`] when the directory cannot be read or a file
    /// cannot be removed.
    pub fn gc(&self) -> Result<Vec<ScanIssue>, RegistryError> {
        let mut removed = self.scan()?.issues;
        let rd = std::fs::read_dir(&self.dir)
            .map_err(|source| RegistryError::Io { path: self.dir.clone(), source })?;
        for tmp in rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        {
            removed.push(ScanIssue {
                path: tmp,
                error: EntryError::Malformed("stale temporary file".to_owned()),
            });
        }
        // scan() returns its issues file-name-sorted, but the `.tmp`
        // sweep above walks the directory raw; sort the union so the
        // filesystem's iteration order never leaks into the report.
        removed.sort_by(|a, b| a.path.cmp(&b.path));
        for issue in &removed {
            std::fs::remove_file(&issue.path)
                .map_err(|source| RegistryError::Io { path: issue.path.clone(), source })?;
        }
        Ok(removed)
    }
}

/// Deterministic tie-break string for a candidate entry: fingerprint
/// hex, then file name (= key-hash hex).
fn tie_break(path: &Path, entry: &StoredEntry) -> String {
    format!(
        "{} {}",
        fingerprint_hex(&entry.machine),
        path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
    )
}

/// Tier + distance of `entry`'s machine relative to the queried one.
fn machine_rank(machine: &MachineProfile, entry: &StoredEntry) -> (MatchTier, f64) {
    if fingerprint(&entry.machine) == fingerprint(machine) {
        (MatchTier::Exact, 0.0)
    } else if family(&entry.machine) == family(machine) {
        (MatchTier::Family, distance(machine, &entry.machine))
    } else {
        (MatchTier::Fallback, distance(machine, &entry.machine))
    }
}

/// The best same-`(spec, size)` match, by (tier, distance, tie-break).
fn best_same_cell(
    entries: &[(PathBuf, StoredEntry)],
    machine: &MachineProfile,
    bench_spec: &str,
    size: u64,
) -> Option<Match> {
    let mut best: Option<(MatchTier, f64, String, Match)> = None;
    for (path, entry) in entries {
        if entry.bench_spec != bench_spec || entry.size != size {
            continue;
        }
        let (tier, d) = machine_rank(machine, entry);
        let tie = tie_break(path, entry);
        let wins = match &best {
            None => true,
            Some((bt, bd, btie, _)) => (tier, d, tie.as_str()) < (*bt, *bd, btie.as_str()),
        };
        if wins {
            let m = Match { entry: entry.clone(), tier, distance: d, scaled_from: None };
            best = Some((tier, d, tie, m));
        }
    }
    best.map(|(_, _, _, m)| m)
}

/// The benchmark kind of a spec line: its first whitespace token (e.g.
/// `sort` of `sort n=4096`) — the unit cross-size donors must share.
fn bench_kind(spec: &str) -> &str {
    spec.split_whitespace().next().unwrap_or("")
}

/// The best cross-size donor: same benchmark kind, any other
/// `(spec, size)` cell, ranked by (tier, size octaves, machine
/// distance, tie-break). The winner is rewritten for the queried cell
/// with its config rescaled.
fn best_cross_size(
    entries: &[(PathBuf, StoredEntry)],
    machine: &MachineProfile,
    bench_spec: &str,
    size: u64,
) -> Option<Match> {
    let kind = bench_kind(bench_spec);
    if kind.is_empty() {
        return None;
    }
    let mut best: Option<(MatchTier, f64, f64, String, &StoredEntry)> = None;
    for (path, entry) in entries {
        if bench_kind(&entry.bench_spec) != kind
            || (entry.bench_spec == bench_spec && entry.size == size)
        {
            continue;
        }
        let (tier, d) = machine_rank(machine, entry);
        let size_gap = distance::octaves(size as f64, entry.size as f64);
        let tie = tie_break(path, entry);
        let wins = match &best {
            None => true,
            Some((bt, bs, bd, btie, _)) => {
                (tier, size_gap, d, tie.as_str()) < (*bt, *bs, *bd, btie.as_str())
            }
        };
        if wins {
            best = Some((tier, size_gap, d, tie, entry));
        }
    }
    best.map(|(tier, _, d, _, donor)| Match {
        entry: StoredEntry {
            machine: donor.machine.clone(),
            bench_spec: bench_spec.to_owned(),
            size,
            config: rescale_config(&donor.config, donor.size, size),
            time_secs: donor.time_secs,
            source: donor.source.clone(),
        },
        tier,
        distance: d,
        scaled_from: Some(donor.size),
    })
}

/// Whether a tunable's name marks it as tracking the input size (so a
/// cross-size donor must rescale it) rather than the machine.
fn size_like_tunable(name: &str) -> bool {
    ["cutoff", "split", "chunk"].iter().any(|k| name.contains(k))
}

/// Rescale a donor configuration tuned at `from_size` for use at
/// `to_size`, using the size ratio:
///
/// * every selector keeps its algorithm sequence, with each cutoff
///   multiplied by the ratio (rounded, floored at 1; bands whose scaled
///   cutoffs collide are merged away so cutoffs stay strictly
///   increasing);
/// * tunables whose names contain `cutoff`, `split` or `chunk` are
///   multiplied by the ratio and clamped back into their declared
///   range;
/// * everything else (`gpu_ratio` splits, `local_size` work-group
///   shapes, ranks…) is machine-shaped and travels verbatim.
///
/// A pure function of its arguments — cross-size lookups stay
/// deterministic. Degenerate sizes (either side 0) or equal sizes
/// return the config unchanged.
#[must_use]
pub fn rescale_config(config: &Config, from_size: u64, to_size: u64) -> Config {
    if from_size == to_size || from_size == 0 || to_size == 0 {
        return config.clone();
    }
    let ratio = to_size as f64 / from_size as f64;
    let mut out = config.clone();
    for selector in out.selectors_mut().values_mut() {
        let mut cutoffs: Vec<u64> = Vec::with_capacity(selector.cutoffs().len());
        let mut algs = vec![selector.algs()[0]];
        for (c, &a) in selector.cutoffs().iter().zip(&selector.algs()[1..]) {
            let scaled = (*c as f64 * ratio).round().max(1.0) as u64;
            // A band squeezed to nothing by rounding is merged into its
            // left neighbour: drop the colliding cutoff, keep the later
            // algorithm (it governed the larger sizes).
            if cutoffs.last().is_some_and(|&prev| scaled <= prev) {
                *algs.last_mut().expect("algs is never empty") = a;
            } else {
                cutoffs.push(scaled);
                algs.push(a);
            }
        }
        let num_algs = selector.num_algs();
        *selector = Selector::new(cutoffs, algs, num_algs);
    }
    for (name, tunable) in out.tunables_mut() {
        if size_like_tunable(name) {
            // No floor here: a 0-valued cutoff tunable ("never") must
            // stay 0 at any size. Saturate before the i64 cast so a huge
            // ratio cannot wrap; `Tunable::new` clamps back into range.
            let scaled = (tunable.value as f64 * ratio).round();
            let scaled = if scaled >= i64::MAX as f64 {
                i64::MAX
            } else if scaled <= i64::MIN as f64 {
                i64::MIN
            } else {
                scaled as i64
            };
            *tunable = Tunable::new(scaled, tunable.min, tunable.max);
        }
    }
    out
}

/// Everything [`ConfigStore::ls`] returns — path-free, so directory and
/// served stores produce the same shape.
#[derive(Debug, Default)]
pub struct Listing {
    /// Every usable entry with its key hash, sorted by key hash — the
    /// ordering contract that keeps listings stable across filesystems
    /// and transports.
    pub entries: Vec<(u64, StoredEntry)>,
    /// Human-readable diagnostics for unusable files, sorted by file
    /// name. (A served store may hold these back; counts still match
    /// what `gc` would sweep.)
    pub issues: Vec<String>,
}

/// The store API every consumer writes against — object-safe, so call
/// sites take `&dyn ConfigStore` and work identically over a local
/// [`DirStore`] or a farmd-served [`RemoteStore`], with only an
/// endpoint string changing.
pub trait ConfigStore {
    /// Nearest-key lookup of `(machine, bench_spec, size)`; with
    /// `exact`, only a bit-identical machine fingerprint in exactly this
    /// cell may answer (no nearest-key, no cross-size fallback).
    ///
    /// # Errors
    /// [`RegistryError`] on store I/O, protocol, or addressed-entry
    /// damage; a clean miss is `Ok(None)`.
    fn lookup(
        &self,
        machine: &MachineProfile,
        bench_spec: &str,
        size: u64,
        exact: bool,
    ) -> Result<Option<Match>, RegistryError>;

    /// Publish `entry` with keep-best semantics (`force` replaces even a
    /// better incumbent). Where the merge happens is the implementation's
    /// contract: a [`DirStore`] merges locally, a [`RemoteStore`] on the
    /// dispatcher — so concurrent publishers converge either way.
    ///
    /// # Errors
    /// [`RegistryError`] when the entry cannot be stored.
    fn put(&self, entry: &StoredEntry, force: bool) -> Result<PutOutcome, RegistryError>;

    /// List every usable entry, sorted by key hash, plus diagnostics for
    /// unusable files.
    ///
    /// # Errors
    /// [`RegistryError`] when the store cannot be enumerated.
    fn ls(&self) -> Result<Listing, RegistryError>;

    /// Sweep unusable files, returning one human-readable line per
    /// removal, sorted by file name.
    ///
    /// # Errors
    /// [`RegistryError`] when the sweep cannot run to completion.
    fn gc(&self) -> Result<Vec<String>, RegistryError>;
}

/// A [`ScanIssue`] as one stable human-readable line.
fn issue_line(issue: &ScanIssue) -> String {
    let name = issue.path.file_name().map(|n| n.to_string_lossy().into_owned());
    format!("{}: {}", name.unwrap_or_else(|| issue.path.display().to_string()), issue.error)
}

impl ConfigStore for DirStore {
    fn lookup(
        &self,
        machine: &MachineProfile,
        bench_spec: &str,
        size: u64,
        exact: bool,
    ) -> Result<Option<Match>, RegistryError> {
        if exact {
            return Ok(self.get_exact(machine, bench_spec, size)?.map(|entry| Match {
                entry,
                tier: MatchTier::Exact,
                distance: 0.0,
                scaled_from: None,
            }));
        }
        DirStore::lookup(self, machine, bench_spec, size)
    }

    fn put(&self, entry: &StoredEntry, force: bool) -> Result<PutOutcome, RegistryError> {
        if force {
            self.put_force(entry)?;
            return Ok(PutOutcome::Replaced);
        }
        DirStore::put(self, entry)
    }

    fn ls(&self) -> Result<Listing, RegistryError> {
        let scan = self.scan()?;
        let mut entries: Vec<(u64, StoredEntry)> =
            scan.entries.into_iter().map(|(_, e)| (e.key_hash(), e)).collect();
        // scan() is file-name-sorted, which for well-named files is
        // already key order; sorting on the recomputed key hash makes
        // the contract hold even for entries parked under odd names.
        entries.sort_by_key(|(key, _)| *key);
        Ok(Listing { entries, issues: scan.issues.iter().map(issue_line).collect() })
    }

    fn gc(&self) -> Result<Vec<String>, RegistryError> {
        Ok(DirStore::gc(self)?.iter().map(issue_line).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_core::config::{Selector, Tunable};

    fn temp_registry(tag: &str) -> DirStore {
        let dir =
            std::env::temp_dir().join(format!("petal-registry-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DirStore::open(dir).expect("temp registry opens")
    }

    fn entry(machine: MachineProfile, time_secs: f64) -> StoredEntry {
        let mut config = Config::new();
        config.set_selector("sort", Selector::new(vec![64], vec![2, 0], 7));
        config.set_tunable("sort.gpu_ratio", Tunable::new(3, 0, 8));
        StoredEntry {
            machine,
            bench_spec: "sort n=4096".to_owned(),
            size: 4096,
            config,
            time_secs,
            source: "unit-test".to_owned(),
        }
    }

    #[test]
    fn entries_round_trip_through_disk() {
        let reg = temp_registry("roundtrip");
        let e = entry(MachineProfile::desktop(), 1.5e-3);
        let out = reg.put(&e).expect("put");
        assert_eq!(out, PutOutcome::Inserted);
        let back =
            reg.get_exact(&e.machine, &e.bench_spec, e.size).expect("get").expect("entry present");
        assert_eq!(back, e);
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn put_keeps_the_best_time_unless_forced() {
        let reg = temp_registry("keepbest");
        let good = entry(MachineProfile::laptop(), 1.0e-3);
        let worse = entry(MachineProfile::laptop(), 2.0e-3);
        assert_eq!(reg.put(&good).expect("put"), PutOutcome::Inserted);
        assert_eq!(reg.put(&worse).expect("put"), PutOutcome::KeptExisting);
        let back = reg.get_exact(&good.machine, &good.bench_spec, good.size).unwrap().unwrap();
        assert_eq!(back.time_secs, 1.0e-3, "keep-best kept the incumbent");
        let better = entry(MachineProfile::laptop(), 0.5e-3);
        assert_eq!(reg.put(&better).expect("put"), PutOutcome::Replaced);
        reg.put_force(&worse).expect("forced put");
        let back = reg.get_exact(&good.machine, &good.bench_spec, good.size).unwrap().unwrap();
        assert_eq!(back.time_secs, 2.0e-3, "force overwrites");
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn lookup_prefers_exact_then_family_then_fallback() {
        let reg = temp_registry("tiers");
        // Desktop and Laptop are both discrete-GPU machines; ManyCore is
        // CPU-only — a different family from everything else.
        reg.put(&entry(MachineProfile::laptop(), 2.0)).expect("put laptop");
        reg.put(&entry(MachineProfile::manycore(), 3.0)).expect("put manycore");
        let got = reg
            .lookup(&MachineProfile::desktop(), "sort n=4096", 4096)
            .expect("lookup")
            .expect("some match");
        assert_eq!(got.tier, MatchTier::Family);
        assert_eq!(got.entry.machine.codename, "Laptop");

        reg.put(&entry(MachineProfile::desktop(), 1.0)).expect("put desktop");
        let got = reg.lookup(&MachineProfile::desktop(), "sort n=4096", 4096).unwrap().unwrap();
        assert_eq!(got.tier, MatchTier::Exact);
        assert_eq!(got.distance, 0.0);

        // A CPU-only query only has cross-family entries to fall back on.
        let mut lone = MachineProfile::manycore();
        lone.cpu.cores = 48;
        let reg2 = temp_registry("fallback");
        reg2.put(&entry(MachineProfile::desktop(), 1.0)).expect("put");
        let got = reg2.lookup(&lone, "sort n=4096", 4096).unwrap().unwrap();
        assert_eq!(got.tier, MatchTier::Fallback);
        let _ = std::fs::remove_dir_all(reg.dir());
        let _ = std::fs::remove_dir_all(reg2.dir());
    }

    #[test]
    fn same_cell_matches_beat_cross_size_donors() {
        let reg = temp_registry("specmatch");
        // One entry in the queried cell, one (better-machine) entry for
        // the same benchmark kind at double the size: the same-cell entry
        // must win even though the cross-size donor is the exact machine.
        let mut other = entry(MachineProfile::desktop(), 0.5);
        other.bench_spec = "sort n=8192".to_owned();
        other.size = 8192;
        reg.put(&entry(MachineProfile::laptop(), 1.0)).expect("put same-cell");
        reg.put(&other).expect("put cross-size");
        let got = reg.lookup(&MachineProfile::desktop(), "sort n=4096", 4096).unwrap().unwrap();
        assert_eq!(got.tier, MatchTier::Family);
        assert_eq!(got.scaled_from, None);
        assert_eq!(got.entry.machine.codename, "Laptop");
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn cross_size_donors_are_rescaled_for_the_queried_cell() {
        let reg = temp_registry("crosssize");
        reg.put(&entry(MachineProfile::desktop(), 1.0)).expect("put");
        // No entry for n=8192 anywhere: the n=4096 donor answers, spec
        // and size rewritten, cutoffs and size-like tunables doubled.
        let got = reg.lookup(&MachineProfile::desktop(), "sort n=8192", 8192).unwrap().unwrap();
        assert_eq!(got.tier, MatchTier::Exact);
        assert_eq!(got.scaled_from, Some(4096));
        assert_eq!(got.entry.bench_spec, "sort n=8192");
        assert_eq!(got.entry.size, 8192);
        assert_eq!(got.entry.config.selector("sort").unwrap().cutoffs(), &[128]);
        assert_eq!(
            got.entry.config.tunable("sort.gpu_ratio").unwrap().value,
            3,
            "ratio tunables are machine-shaped and must not scale"
        );
        // A different benchmark kind never donates.
        assert!(reg
            .lookup(&MachineProfile::desktop(), "matmul n=4096", 4096)
            .expect("lookup")
            .is_none());
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn rescaling_merges_colliding_cutoffs_and_scales_size_like_tunables() {
        let mut config = Config::new();
        config.set_selector("conv", Selector::new(vec![10, 11, 4000], vec![0, 1, 2, 3], 4));
        config.set_tunable("merge_parallel_cutoff", Tunable::new(1000, 0, 2000));
        config.set_tunable("split_rows", Tunable::new(64, 1, 4096));
        config.set_tunable("tile.local_size", Tunable::new(128, 1, 1024));

        // Shrink 8×: cutoffs 10 and 11 collide at 1 — the squeezed band
        // merges away and the later algorithm survives.
        let down = rescale_config(&config, 4096, 512);
        let sel = down.selector("conv").unwrap();
        assert_eq!(sel.cutoffs(), &[1, 500]);
        assert_eq!(sel.algs(), &[0, 2, 3]);
        assert_eq!(down.tunable("merge_parallel_cutoff").unwrap().value, 125);
        assert_eq!(down.tunable("split_rows").unwrap().value, 8);
        assert_eq!(down.tunable("tile.local_size").unwrap().value, 128, "not size-like");

        // Grow 2×: scaling clamps into the declared tunable range.
        let up = rescale_config(&config, 4096, 8192);
        assert_eq!(up.selector("conv").unwrap().cutoffs(), &[20, 22, 8000]);
        assert_eq!(up.tunable("merge_parallel_cutoff").unwrap().value, 2000, "clamped to max");
        assert_eq!(up.tunable("split_rows").unwrap().value, 128);

        // Degenerate and identity scalings are the identity.
        assert_eq!(rescale_config(&config, 4096, 4096), config);
        assert_eq!(rescale_config(&config, 0, 4096), config);
    }

    #[test]
    fn listings_and_gc_reports_are_key_hash_sorted() {
        let reg = temp_registry("lsorder");
        let mut entries: Vec<StoredEntry> = Vec::new();
        for (i, m) in MachineProfile::extended().into_iter().enumerate() {
            let e = entry(m, 1.0 + i as f64);
            reg.put(&e).expect("put");
            entries.push(e);
        }
        let listing = ConfigStore::ls(&reg).expect("ls");
        let keys: Vec<u64> = listing.entries.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "ls must be key-hash sorted");
        assert_eq!(keys.len(), entries.len());
        assert!(listing.issues.is_empty());

        // gc's report covers stray .tmp files too, and is file-name
        // sorted regardless of the order the filesystem yields them.
        std::fs::write(reg.dir().join("zz.tmp"), "late").expect("tmp");
        std::fs::write(reg.dir().join("00.tmp"), "early").expect("tmp");
        std::fs::write(reg.dir().join("aaaa000000000000.reg"), "junk").expect("corrupt");
        let removed = ConfigStore::gc(&reg).expect("gc");
        let mut sorted_removed = removed.clone();
        sorted_removed.sort();
        assert_eq!(removed, sorted_removed, "gc report must be file-name sorted: {removed:?}");
        assert_eq!(removed.len(), 3);
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn corrupt_files_are_skipped_by_lookup_and_removed_by_gc() {
        let reg = temp_registry("gc");
        reg.put(&entry(MachineProfile::desktop(), 1.0)).expect("put");
        std::fs::write(reg.dir().join("deadbeef00000000.reg"), "REGV not-a-version")
            .expect("write corrupt");
        std::fs::write(reg.dir().join("feedface00000000.reg"), "REGV 1:9\n").expect("write skew");
        std::fs::write(reg.dir().join("0123456789abcdef.tmp"), "half an entry").expect("write tmp");
        let got = reg.lookup(&MachineProfile::desktop(), "sort n=4096", 4096).unwrap();
        assert!(got.is_some(), "good entry still served");
        let removed = reg.gc().expect("gc");
        assert_eq!(removed.len(), 3, "corrupt + skewed + tmp removed: {removed:?}");
        assert!(removed.iter().any(|i| matches!(i.error, EntryError::VersionSkew { found: 9 })));
        let scan = reg.scan().expect("scan");
        assert_eq!(scan.entries.len(), 1);
        assert!(scan.issues.is_empty());
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn version_skew_is_a_diagnostic_not_a_parse_error() {
        let mut text = entry(MachineProfile::server(), 1.0).encode();
        // Rewrite the header to claim a future version with extra fields
        // appended — field 0 is frozen, so this must decode as skew.
        let rest = text.split_off(text.find('\n').expect("header line"));
        text = format!("REGV 1:7 9:capa=zstd{rest}");
        match decode_entry(&text) {
            Err(EntryError::VersionSkew { found: 7 }) => {}
            other => panic!("wanted version skew, got {other:?}"),
        }
    }
}

//! The served-store client: a [`ConfigStore`] that talks to a
//! `petal-farmd` dispatcher hosting a registry.
//!
//! A [`RemoteStore`] speaks wire version 3's registry records over the
//! same socket (and the same `HELLO` negotiation) as an evaluation
//! client: `REG_GET` for `lookup`/`ls`/`gc`, `REG_PUT` for `put`, with
//! every answer a `REG_HIT` (an entry) or `REG_MISS` (a miss, a
//! terminator, or — when the reason starts with `error:` — a server-side
//! failure). The nearest-key ranking, cross-size rescaling, keep-best
//! merge and atomic persistence all run on the *dispatcher* against its
//! local [`DirStore`], which is what makes concurrent publishers from
//! many client machines deterministic: the dispatcher serializes them
//! under one lock, so the store converges to keep-best whatever the
//! arrival order.
//!
//! The connection is established lazily and re-established after any
//! transport error, so a store handle outlives dispatcher restarts; each
//! trait call is one self-contained request/response exchange. The
//! endpoint may be a comma-separated fallback *list* (`tcp:a,tcp:b`):
//! every (re)connect walks the list in order and takes the first
//! dispatcher that answers, so losing the primary registry host costs
//! one failed operation, not the store.

use crate::{
    key_hash, ConfigStore, Listing, Match, MatchTier, PutOutcome, RegistryError, StoredEntry,
};
use petal_farm::net::{Endpoint, FarmStream};
use petal_farm::wire::{negotiate, Message, RegEntry, WireEncoder, MIN_WIRE_VERSION, WIRE_VERSION};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::sync::Mutex;
use std::time::Duration;

/// How long a connect keeps retrying an endpoint that is not (yet)
/// accepting — same patience as the evaluation client, covering
/// client-before-dispatcher bring-up races.
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

/// The registry records shipped in wire version 3.
const REGISTRY_WIRE_VERSION: u64 = 3;

/// A tuned-config store served by a `petal-farmd` dispatcher — the
/// remote [`ConfigStore`] implementation.
///
/// Connects lazily on first use and reconnects after transport errors;
/// interior mutability keeps the trait's `&self` methods usable behind
/// `&dyn ConfigStore` (the lock serializes this *handle's* requests —
/// cross-client serialization is the dispatcher's job).
pub struct RemoteStore {
    endpoint: Endpoint,
    conn: Mutex<Option<Conn>>,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore").field("endpoint", &self.endpoint).finish_non_exhaustive()
    }
}

/// One live negotiated session with the dispatcher.
struct Conn {
    reader: BufReader<FarmStream>,
    writer: FarmStream,
    enc: WireEncoder,
    line_out: String,
    line_in: String,
}

impl RemoteStore {
    /// Create a store handle for the dispatcher at `endpoint` and
    /// connect once, so a dead or registry-less dispatcher fails fast
    /// instead of on the first lookup.
    ///
    /// # Errors
    /// [`RegistryError::Remote`] when the endpoint is not a socket, the
    /// dispatcher cannot be reached, or version negotiation does not
    /// reach the registry records (wire v3).
    pub fn connect(endpoint: &Endpoint) -> Result<RemoteStore, RegistryError> {
        let store = RemoteStore { endpoint: endpoint.clone(), conn: Mutex::new(None) };
        let conn = store.open_conn()?;
        *store.conn.lock().expect("registry connection lock") = Some(conn);
        Ok(store)
    }

    /// The dispatcher endpoint this store talks to.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn remote_err(&self, message: impl Into<String>) -> RegistryError {
        RegistryError::Remote { endpoint: self.endpoint.to_string(), message: message.into() }
    }

    /// Dial and run the `HELLO` handshake, requiring a negotiated
    /// version new enough to carry the registry records.
    fn open_conn(&self) -> Result<Conn, RegistryError> {
        let stream = FarmStream::connect_retry(&self.endpoint, CONNECT_PATIENCE)
            .map_err(|e| self.remote_err(format!("connecting: {e}")))?;
        let writer =
            stream.try_clone().map_err(|e| self.remote_err(format!("cloning connection: {e}")))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
            enc: WireEncoder::default(),
            line_out: String::new(),
            line_in: String::new(),
        };
        self.send(&mut conn, &Message::hello())?;
        match self.recv(&mut conn)? {
            Message::Hello { min_version, max_version } => {
                let v = negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (min_version, max_version))
                    .map_err(|e| self.remote_err(e.to_string()))?;
                if v < REGISTRY_WIRE_VERSION {
                    return Err(self.remote_err(format!(
                        "dispatcher speaks wire v{v}, the registry service needs \
                         v{REGISTRY_WIRE_VERSION}"
                    )));
                }
            }
            Message::Goodbye { reason } => {
                return Err(
                    self.remote_err(format!("dispatcher rejected the connection: {reason}"))
                );
            }
            other => {
                return Err(self.remote_err(format!("dispatcher answered HELLO with {other:?}")));
            }
        }
        Ok(conn)
    }

    fn send(&self, conn: &mut Conn, msg: &Message) -> Result<(), RegistryError> {
        conn.enc.encode_into(msg, &mut conn.line_out);
        conn.line_out.push('\n');
        conn.writer
            .write_all(conn.line_out.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| self.remote_err(format!("writing request: {e}")))
    }

    fn recv(&self, conn: &mut Conn) -> Result<Message, RegistryError> {
        loop {
            conn.line_in.clear();
            let n = conn
                .reader
                .read_line(&mut conn.line_in)
                .map_err(|e| self.remote_err(format!("reading reply: {e}")))?;
            if n == 0 {
                return Err(self.remote_err("dispatcher closed the connection"));
            }
            match Message::decode(conn.line_in.trim_end_matches('\n'))
                .map_err(|e| self.remote_err(e.to_string()))?
            {
                // Liveness chatter is legal on any socket; clients skip it.
                Message::Heartbeat { .. } => {}
                msg => return Ok(msg),
            }
        }
    }

    /// Run one request/response exchange, connecting if needed. Any
    /// error drops the session so the next call dials fresh — a
    /// dispatcher restart costs one failed operation, not a dead handle.
    fn exchange<T>(
        &self,
        request: &Message,
        handle: impl FnOnce(&mut Conn) -> Result<T, RegistryError>,
    ) -> Result<T, RegistryError> {
        let mut slot = self.conn.lock().expect("registry connection lock");
        let mut conn = match slot.take() {
            Some(c) => c,
            None => self.open_conn()?,
        };
        let result = self.send(&mut conn, request).and_then(|()| handle(&mut conn));
        if result.is_ok() {
            *slot = Some(conn);
        }
        result
    }

    /// Interpret a `REG_MISS` reason: a clean miss yields `Ok(None)`
    /// shape via `Ok(reason)`, a server failure (`error:` prefix)
    /// becomes a [`RegistryError::Remote`].
    fn miss(&self, reason: &str) -> Result<String, RegistryError> {
        match reason.strip_prefix("error:") {
            Some(detail) => Err(self.remote_err(detail.trim().to_owned())),
            None => Ok(reason.to_owned()),
        }
    }
}

impl Drop for RemoteStore {
    fn drop(&mut self) {
        // Best-effort graceful close so the dispatcher retires the
        // session instead of logging a dropped client.
        if let Ok(mut slot) = self.conn.lock() {
            if let Some(mut conn) = slot.take() {
                let _ = self.send(&mut conn, &Message::Done);
                if let Ok(s) = conn.reader.get_ref().try_clone() {
                    s.shutdown();
                }
            }
        }
    }
}

/// A stored entry flattened for the wire.
#[must_use]
pub fn entry_to_wire(entry: &StoredEntry) -> RegEntry {
    RegEntry {
        machine: Box::new(entry.machine.clone()),
        bench_spec: entry.bench_spec.clone(),
        size: entry.size,
        config: entry.config.clone(),
        time_secs: entry.time_secs,
        source: entry.source.clone(),
    }
}

/// A wire entry rebuilt as the store's own type.
#[must_use]
pub fn entry_from_wire(entry: RegEntry) -> StoredEntry {
    StoredEntry {
        machine: *entry.machine,
        bench_spec: entry.bench_spec,
        size: entry.size,
        config: entry.config,
        time_secs: entry.time_secs,
        source: entry.source,
    }
}

/// Parse a lookup verdict back into its tier.
fn parse_tier(verdict: &str) -> Option<MatchTier> {
    match verdict {
        "exact" => Some(MatchTier::Exact),
        "family" => Some(MatchTier::Family),
        "fallback" => Some(MatchTier::Fallback),
        _ => None,
    }
}

impl ConfigStore for RemoteStore {
    fn lookup(
        &self,
        machine: &MachineProfile,
        bench_spec: &str,
        size: u64,
        exact: bool,
    ) -> Result<Option<Match>, RegistryError> {
        let request = Message::RegGet {
            op: if exact { "exact" } else { "get" }.to_owned(),
            bench_spec: bench_spec.to_owned(),
            size,
            machine: Some(Box::new(machine.clone())),
        };
        self.exchange(&request, |conn| match self.recv(conn)? {
            Message::RegHit { verdict, distance, scaled_from, entry } => {
                let tier = parse_tier(&verdict).ok_or_else(|| {
                    self.remote_err(format!("dispatcher answered with verdict `{verdict}`"))
                })?;
                Ok(Some(Match { entry: entry_from_wire(*entry), tier, distance, scaled_from }))
            }
            Message::RegMiss { reason } => self.miss(&reason).map(|_| None),
            Message::Goodbye { reason } => {
                Err(self.remote_err(format!("dispatcher ended the session: {reason}")))
            }
            other => Err(self.remote_err(format!("dispatcher answered REG_GET with {other:?}"))),
        })
    }

    fn put(&self, entry: &StoredEntry, force: bool) -> Result<PutOutcome, RegistryError> {
        let request = Message::RegPut { force, entry: Box::new(entry_to_wire(entry)) };
        self.exchange(&request, |conn| match self.recv(conn)? {
            // The ack's entry is whichever config now wins the key — a
            // losing publisher learns the better incumbent for free, but
            // the outcome token is the contract here.
            Message::RegHit { verdict, .. } => PutOutcome::parse(&verdict).ok_or_else(|| {
                self.remote_err(format!("dispatcher acknowledged REG_PUT with `{verdict}`"))
            }),
            Message::RegMiss { reason } => {
                self.miss(&reason)?;
                Err(self.remote_err(format!("dispatcher missed a REG_PUT: {reason}")))
            }
            Message::Goodbye { reason } => {
                Err(self.remote_err(format!("dispatcher ended the session: {reason}")))
            }
            other => Err(self.remote_err(format!("dispatcher answered REG_PUT with {other:?}"))),
        })
    }

    fn ls(&self) -> Result<Listing, RegistryError> {
        let request = Message::RegGet {
            op: "ls".to_owned(),
            bench_spec: String::new(),
            size: 0,
            machine: None,
        };
        self.exchange(&request, |conn| {
            let mut listing = Listing::default();
            loop {
                match self.recv(conn)? {
                    Message::RegHit { entry, .. } => {
                        let entry = entry_from_wire(*entry);
                        let key = key_hash(&entry.machine, &entry.bench_spec, entry.size);
                        listing.entries.push((key, entry));
                    }
                    Message::RegMiss { reason } => {
                        // Terminator: the headline line counts rows, any
                        // further lines are per-file diagnostics.
                        listing.issues =
                            self.miss(&reason)?.lines().skip(1).map(str::to_owned).collect();
                        // The dispatcher streams in key order already;
                        // re-sorting keeps the ordering contract a client
                        // guarantee rather than a server courtesy.
                        listing.entries.sort_by_key(|(key, _)| *key);
                        return Ok(listing);
                    }
                    Message::Goodbye { reason } => {
                        return Err(
                            self.remote_err(format!("dispatcher ended the session: {reason}"))
                        );
                    }
                    other => {
                        return Err(
                            self.remote_err(format!("dispatcher answered ls with {other:?}"))
                        );
                    }
                }
            }
        })
    }

    fn gc(&self) -> Result<Vec<String>, RegistryError> {
        let request = Message::RegGet {
            op: "gc".to_owned(),
            bench_spec: String::new(),
            size: 0,
            machine: None,
        };
        self.exchange(&request, |conn| match self.recv(conn)? {
            Message::RegMiss { reason } => {
                // Headline first, then one line per removed file.
                Ok(self.miss(&reason)?.lines().skip(1).map(str::to_owned).collect())
            }
            Message::Goodbye { reason } => {
                Err(self.remote_err(format!("dispatcher ended the session: {reason}")))
            }
            other => Err(self.remote_err(format!("dispatcher answered gc with {other:?}"))),
        })
    }
}

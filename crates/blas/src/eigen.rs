//! Symmetric eigendecomposition and truncated SVD.
//!
//! The paper's SVD benchmark "approximates a matrix through a factorization
//! that consumes less space" and is a *variable accuracy* benchmark: the
//! number of retained singular values trades quality for time (§6.2, \[4\]).
//! These are the numerical kernels; the CPU/GPU task-parallel orchestration
//! is `petal-apps::svd`.

use crate::gemm::lapack_gemm;
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns*, in the same order.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps Givens rotations over every off-diagonal pair until convergence
/// (off-diagonal Frobenius mass below `tol`) or `max_sweeps` is exhausted.
///
/// # Panics
/// Panics if `a` is not square.
#[must_use]
pub fn jacobi_eigh(a: &Matrix, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "symmetric eigendecomposition needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < f64::EPSILON {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort by eigenvalue, descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("finite eigenvalues"));
    let values = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    EigenDecomposition { values, vectors }
}

/// A rank-`k` truncated singular value decomposition `A ≈ U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedSvd {
    /// Left singular vectors as columns (`m × k`).
    pub u: Matrix,
    /// Singular values, descending (`k`).
    pub sigma: Vec<f64>,
    /// Right singular vectors as columns (`n × k`).
    pub v: Matrix,
}

impl TruncatedSvd {
    /// Reconstruct the rank-`k` approximation `U·diag(σ)·Vᵀ`.
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let k = self.sigma.len();
        let us = Matrix::from_fn(self.u.rows(), k, |r, c| self.u[(r, c)] * self.sigma[c]);
        lapack_gemm(&us, &self.v.transposed())
    }

    /// Relative Frobenius error of the approximation against `a`.
    #[must_use]
    pub fn relative_error(&self, a: &Matrix) -> f64 {
        let denom = a.frobenius_norm();
        if denom == 0.0 {
            return 0.0;
        }
        a.sub(&self.reconstruct()).frobenius_norm() / denom
    }
}

/// Truncated SVD via the eigendecomposition of `AᵀA`.
///
/// `σᵢ = √λᵢ(AᵀA)`, `vᵢ` its eigenvectors, `uᵢ = A·vᵢ/σᵢ`. This is the
/// classic normal-equations route; adequate for the benchmark's
/// well-conditioned synthetic inputs.
///
/// # Panics
/// Panics if `k` is zero or exceeds `min(m, n)`.
#[must_use]
pub fn truncated_svd(
    a: &Matrix,
    k: usize,
    gemm: impl Fn(&Matrix, &Matrix) -> Matrix,
) -> TruncatedSvd {
    let (m, n) = (a.rows(), a.cols());
    assert!(k >= 1 && k <= m.min(n), "rank k={k} out of range for {m}x{n}");
    let ata = gemm(&a.transposed(), a);
    let eig = jacobi_eigh(&ata, 1e-12 * ata.frobenius_norm().max(1.0), 64);
    let sigma: Vec<f64> = eig.values.iter().take(k).map(|l| l.max(0.0).sqrt()).collect();
    let vk = Matrix::from_fn(n, k, |r, c| eig.vectors[(r, c)]);
    let avk = gemm(a, &vk);
    let u =
        Matrix::from_fn(m, k, |r, c| if sigma[c] > 1e-300 { avk[(r, c)] / sigma[c] } else { 0.0 });
    TruncatedSvd { u, sigma, v: vk }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric(n: usize, seed: usize) -> Matrix {
        let raw = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17 + seed) % 13) as f64 - 6.0);
        raw.add(&raw.transposed()).scaled(0.5)
    }

    #[test]
    fn eigh_reconstructs_diagonal_matrix() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { (3 - r) as f64 } else { 0.0 });
        let e = jacobi_eigh(&a, 1e-14, 32);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigh_satisfies_a_v_eq_v_lambda() {
        let a = symmetric(8, 5);
        let e = jacobi_eigh(&a, 1e-12, 64);
        let av = lapack_gemm(&a, &e.vectors);
        let vl = Matrix::from_fn(8, 8, |r, c| e.vectors[(r, c)] * e.values[c]);
        assert!(av.approx_eq(&vl, 1e-7), "max diff {}", av.max_abs_diff(&vl));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = symmetric(6, 9);
        let e = jacobi_eigh(&a, 1e-12, 64);
        let vtv = lapack_gemm(&e.vectors.transposed(), &e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn full_rank_svd_reconstructs_exactly() {
        let a = Matrix::from_fn(6, 4, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let svd = truncated_svd(&a, 4, lapack_gemm);
        assert!(svd.relative_error(&a) < 1e-7, "err {}", svd.relative_error(&a));
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let a = Matrix::from_fn(12, 12, |r, c| 1.0 / (1.0 + (r + c) as f64));
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8, 12] {
            let err = truncated_svd(&a, k, lapack_gemm).relative_error(&a);
            assert!(err <= prev + 1e-12, "error must not grow with rank: k={k}");
            prev = err;
        }
        assert!(prev < 1e-6, "full rank must reconstruct");
    }

    #[test]
    fn singular_values_sorted_descending() {
        let a = Matrix::from_fn(9, 7, |r, c| ((r * 11 + c * 4) % 9) as f64 - 4.0);
        let svd = truncated_svd(&a, 5, lapack_gemm);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_rank_panics() {
        let a = Matrix::zeros(3, 3);
        let _ = truncated_svd(&a, 4, lapack_gemm);
    }
}

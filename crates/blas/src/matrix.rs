//! The dense row-major matrix type shared across the workspace.
//!
//! This is the PetaBricks *matrix* (§4.3): "an input or an output of a
//! transform ... an n-dimensional dense array of elements". Two dimensions
//! suffice for every benchmark in the paper; vectors are `1×n` or `n×1`
//! matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix { rows, cols, data: vec![0.0; len] }
    }

    /// Build from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.data.len());
        if !self.data.is_empty() {
            for c in 0..self.cols {
                data.extend(self.data[c..].iter().step_by(self.cols));
            }
        }
        Matrix { rows: self.cols, cols: self.rows, data }
    }

    /// Copy of the `rows × cols` block whose top-left corner is
    /// `(row0, col0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols, "block out of bounds");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let start = (row0 + r) * self.cols + col0;
            data.extend_from_slice(&self.data[start..start + cols]);
        }
        Matrix { rows, cols, data }
    }

    /// Write `src` into the block whose top-left corner is `(row0, col0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, row0: usize, col0: usize, src: &Matrix) {
        assert!(
            row0 + src.rows <= self.rows && col0 + src.cols <= self.cols,
            "block out of bounds"
        );
        for r in 0..src.rows {
            let start = (row0 + r) * self.cols + col0;
            self.data[start..start + src.cols].copy_from_slice(src.row(r));
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "dimension mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "dimension mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiply every element by `s`.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "dimension mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn degenerate_transpose_and_rows() {
        let m = Matrix::zeros(0, 3);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (3, 0));
        assert!(t.is_empty());
        let mut m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        m.row_mut(1)[2] = 9.0;
        assert_eq!(m.row(1), &[3.0, 4.0, 9.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn block_get_set_roundtrip() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::zeros(4, 4);
        z.set_block(1, 2, &b);
        assert_eq!(z[(2, 3)], m[(2, 3)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn oversized_block_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.block(1, 1, 2, 2);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.scaled(2.0)[(1, 1)], 4.0);
        assert!((Matrix::identity(3).frobenius_norm() - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty_and_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = m.to_string();
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let a = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 7 + seed as usize) % 17) as f64);
            let b = Matrix::from_fn(rows, cols, |r, c| ((r * 13 + c * 3 + seed as usize) % 23) as f64);
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_transpose_preserves_norm(rows in 1usize..8, cols in 1usize..8) {
            let m = Matrix::from_fn(rows, cols, |r, c| (r as f64) - 2.0 * (c as f64));
            prop_assert!((m.frobenius_norm() - m.transposed().frobenius_norm()).abs() < 1e-9);
        }
    }
}

//! Dense matrix multiplication kernels.
//!
//! The Strassen benchmark's choice space includes "various blocking
//! methods; naive matrix multiplication; and calling the LAPACK external
//! library" (§6.2). These are those leaves. [`lapack_gemm`] — a transposed,
//! cache-blocked kernel — is the stand-in for the LAPACK call: an opaque,
//! well-optimized library leaf.

use crate::matrix::Matrix;

/// Textbook triple loop: `C = A·B`.
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cj) in crow.iter_mut().enumerate() {
            // Column walk of `b` (the deliberately cache-hostile access
            // pattern this leaf models), accumulated in `p` order.
            let mut acc = 0.0;
            for (p, &ap) in arow.iter().enumerate().take(k) {
                acc += ap * b.row(p)[j];
            }
            *cj = acc;
        }
    }
    c
}

/// Triple loop over a pre-transposed `B`, giving unit-stride inner loops
/// (one of the benchmark's "transposing any combination of the inputs"
/// choices).
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn transposed_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    transposed_gemm_into(&mut c, a, b);
    c
}

/// [`transposed_gemm`] **overwriting** a caller-provided `m × n` output —
/// the allocation-free form recursive decompositions use on their
/// preallocated product matrices. Result bits are identical to
/// [`transposed_gemm`].
///
/// # Panics
/// Panics when inner or output dimensions disagree.
pub fn transposed_gemm_into(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (a.rows(), b.cols()), "output dimensions must agree");
    let bt = b.transposed();
    let (m, k) = (a.rows(), a.cols());
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        if k == 0 {
            crow.fill(0.0);
            continue;
        }
        // Zip keeps the p-ascending accumulation order (bit-identical to
        // the indexed loop) while eliding the bounds checks; walking the
        // transposed rows with `chunks_exact` skips per-row asserts.
        for (cj, brow) in crow.iter_mut().zip(bt.as_slice().chunks_exact(k)) {
            *cj = arow.iter().zip(brow).fold(0.0, |acc, (&x, &y)| acc + x * y);
        }
    }
}

/// Cache-blocked multiplication with block size `bs`.
///
/// # Panics
/// Panics when inner dimensions disagree or `bs == 0`.
#[must_use]
pub fn blocked_gemm(a: &Matrix, b: &Matrix, bs: usize) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    blocked_gemm_into(&mut c, a, b, bs);
    c
}

/// [`blocked_gemm`] **accumulating** into a caller-provided `m × n`
/// output (`C += A·B`; pass an all-zeros `C` for the plain product) — the
/// allocation-free form recursive decompositions use on their
/// preallocated product matrices. On a zeroed output the result bits are
/// identical to [`blocked_gemm`].
///
/// # Panics
/// Panics when inner or output dimensions disagree, or `bs == 0`.
pub fn blocked_gemm_into(c: &mut Matrix, a: &Matrix, b: &Matrix, bs: usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (a.rows(), b.cols()), "output dimensions must agree");
    assert!(bs > 0, "block size must be positive");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if n == 0 || k == 0 {
        return;
    }
    // Register width of the j-chunked kernel below (16 f64 = four 256-bit
    // vectors: enough lanes to vectorize, few enough to stay in registers
    // across the whole p loop).
    const W: usize = 16;
    for ii in (0..m).step_by(bs) {
        for pp in (0..k).step_by(bs) {
            let phi = (pp + bs).min(k);
            for jj in (0..n).step_by(bs) {
                let jhi = (jj + bs).min(n);
                for i in ii..(ii + bs).min(m) {
                    // Every `c[i][j]` accumulates its `p` terms in the same
                    // ascending order as the indexed triple loop (distinct
                    // `j` lanes are independent), so the result is
                    // bit-identical however the j range is chunked. The
                    // W-wide chunks keep the accumulator in registers for
                    // the whole p loop instead of storing and reloading
                    // `c`'s row once per `p`; `chunks_exact` walks `b`'s
                    // rows `pp..phi` in order without per-row asserts.
                    let arow = &a.row(i)[pp..phi];
                    let crow = &mut c.row_mut(i)[jj..jhi];
                    let bblock = &b.as_slice()[pp * n..phi * n];
                    let mut j = 0;
                    while j + W <= crow.len() {
                        let mut acc = [0.0f64; W];
                        acc.copy_from_slice(&crow[j..j + W]);
                        for (&aip, brow) in arow.iter().zip(bblock.chunks_exact(n)) {
                            let brow = &brow[jj + j..jj + j + W];
                            for (al, &bj) in acc.iter_mut().zip(brow) {
                                *al += aip * bj;
                            }
                        }
                        crow[j..j + W].copy_from_slice(&acc);
                        j += W;
                    }
                    if j < crow.len() {
                        // Remainder lanes: plain row-slice SAXPY.
                        for (&aip, brow) in arow.iter().zip(bblock.chunks_exact(n)) {
                            let brow = &brow[jj..jhi];
                            for (cj, &bj) in crow[j..].iter_mut().zip(&brow[j..]) {
                                *cj += aip * bj;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The "LAPACK" leaf: the best-performing plain kernel we have (transposed
/// access with 64-wide blocking). The choice space treats it as an opaque
/// external library call, exactly as the paper treats LAPACK.
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn lapack_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    lapack_gemm_into(&mut c, a, b);
    c
}

/// [`lapack_gemm`] writing into a caller-provided **all-zeros** `m × n`
/// output; result bits are identical to [`lapack_gemm`].
///
/// # Panics
/// Panics when inner or output dimensions disagree.
pub fn lapack_gemm_into(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    if a.rows().min(a.cols()).min(b.cols()) < 64 {
        transposed_gemm_into(c, a, b);
    } else {
        blocked_gemm_into(c, a, b, 64);
    }
}

/// Flops for an `m×k · k×n` multiplication (one multiply + one add per
/// inner-loop step); used by the cost model.
#[must_use]
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(r: usize, c: usize, seed: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 7 + j * 13 + seed) % 10) as f64 - 4.5)
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample(5, 5, 3);
        let i = Matrix::identity(5);
        assert!(naive_gemm(&a, &i).approx_eq(&a, 1e-12));
        assert!(naive_gemm(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn all_kernels_agree_on_rectangular_inputs() {
        let a = sample(7, 13, 1);
        let b = sample(13, 5, 2);
        let reference = naive_gemm(&a, &b);
        assert!(transposed_gemm(&a, &b).approx_eq(&reference, 1e-9));
        assert!(blocked_gemm(&a, &b, 4).approx_eq(&reference, 1e-9));
        assert!(blocked_gemm(&a, &b, 64).approx_eq(&reference, 1e-9));
        assert!(lapack_gemm(&a, &b).approx_eq(&reference, 1e-9));
    }

    #[test]
    fn gemm_flops_counts_mul_add() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let _ = naive_gemm(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_blocked_matches_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12,
                                      bs in 1usize..8, seed in 0usize..100) {
            let a = sample(m, k, seed);
            let b = sample(k, n, seed + 1);
            prop_assert!(blocked_gemm(&a, &b, bs).approx_eq(&naive_gemm(&a, &b), 1e-9));
        }

        #[test]
        fn prop_distributes_over_addition(n in 1usize..8, seed in 0usize..50) {
            // A·(B + C) == A·B + A·C
            let a = sample(n, n, seed);
            let b = sample(n, n, seed + 1);
            let c = sample(n, n, seed + 2);
            let lhs = lapack_gemm(&a, &b.add(&c));
            let rhs = lapack_gemm(&a, &b).add(&lapack_gemm(&a, &c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-8));
        }
    }
}

//! Dense matrix multiplication kernels.
//!
//! The Strassen benchmark's choice space includes "various blocking
//! methods; naive matrix multiplication; and calling the LAPACK external
//! library" (§6.2). These are those leaves. [`lapack_gemm`] — a transposed,
//! cache-blocked kernel — is the stand-in for the LAPACK call: an opaque,
//! well-optimized library leaf.

use crate::matrix::Matrix;

/// Textbook triple loop: `C = A·B`.
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Triple loop over a pre-transposed `B`, giving unit-stride inner loops
/// (one of the benchmark's "transposing any combination of the inputs"
/// choices).
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn transposed_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let bt = b.transposed();
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = bt.row(j);
            let mut acc = 0.0;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Cache-blocked multiplication with block size `bs`.
///
/// # Panics
/// Panics when inner dimensions disagree or `bs == 0`.
#[must_use]
pub fn blocked_gemm(a: &Matrix, b: &Matrix, bs: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(bs > 0, "block size must be positive");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for ii in (0..m).step_by(bs) {
        for pp in (0..k).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                for i in ii..(ii + bs).min(m) {
                    for p in pp..(pp + bs).min(k) {
                        let aip = a[(i, p)];
                        for j in jj..(jj + bs).min(n) {
                            c[(i, j)] += aip * b[(p, j)];
                        }
                    }
                }
            }
        }
    }
    c
}

/// The "LAPACK" leaf: the best-performing plain kernel we have (transposed
/// access with 64-wide blocking). The choice space treats it as an opaque
/// external library call, exactly as the paper treats LAPACK.
///
/// # Panics
/// Panics when inner dimensions disagree.
#[must_use]
pub fn lapack_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    if a.rows().min(a.cols()).min(b.cols()) < 64 {
        transposed_gemm(a, b)
    } else {
        blocked_gemm(a, b, 64)
    }
}

/// Flops for an `m×k · k×n` multiplication (one multiply + one add per
/// inner-loop step); used by the cost model.
#[must_use]
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(r: usize, c: usize, seed: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 7 + j * 13 + seed) % 10) as f64 - 4.5)
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample(5, 5, 3);
        let i = Matrix::identity(5);
        assert!(naive_gemm(&a, &i).approx_eq(&a, 1e-12));
        assert!(naive_gemm(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn all_kernels_agree_on_rectangular_inputs() {
        let a = sample(7, 13, 1);
        let b = sample(13, 5, 2);
        let reference = naive_gemm(&a, &b);
        assert!(transposed_gemm(&a, &b).approx_eq(&reference, 1e-9));
        assert!(blocked_gemm(&a, &b, 4).approx_eq(&reference, 1e-9));
        assert!(blocked_gemm(&a, &b, 64).approx_eq(&reference, 1e-9));
        assert!(lapack_gemm(&a, &b).approx_eq(&reference, 1e-9));
    }

    #[test]
    fn gemm_flops_counts_mul_add() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let _ = naive_gemm(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_blocked_matches_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12,
                                      bs in 1usize..8, seed in 0usize..100) {
            let a = sample(m, k, seed);
            let b = sample(k, n, seed + 1);
            prop_assert!(blocked_gemm(&a, &b, bs).approx_eq(&naive_gemm(&a, &b), 1e-9));
        }

        #[test]
        fn prop_distributes_over_addition(n in 1usize..8, seed in 0usize..50) {
            // A·(B + C) == A·B + A·C
            let a = sample(n, n, seed);
            let b = sample(n, n, seed + 1);
            let c = sample(n, n, seed + 2);
            let lhs = lapack_gemm(&a, &b.add(&c));
            let rhs = lapack_gemm(&a, &b).add(&lapack_gemm(&a, &c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-8));
        }
    }
}

//! Tridiagonal system solvers.
//!
//! The Tridiagonal Solver benchmark (§6.2) chooses between a sequential
//! direct solve and cyclic reduction ("cyclic reduction is the best
//! algorithm for Desktop when using the GPU; if a machine does not use
//! OpenCL, it is better to run the sequential algorithm"). This module
//! provides the numerical kernels; the parallel/GPU orchestration lives in
//! `petal-apps`.

/// A tridiagonal system `A·x = d` with sub-diagonal `a` (first element
/// unused), diagonal `b`, and super-diagonal `c` (last element unused).
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalSystem {
    /// Sub-diagonal, `a[0]` ignored.
    pub a: Vec<f64>,
    /// Main diagonal.
    pub b: Vec<f64>,
    /// Super-diagonal, `c[n-1]` ignored.
    pub c: Vec<f64>,
    /// Right-hand side.
    pub d: Vec<f64>,
}

impl TridiagonalSystem {
    /// Validate and wrap the four bands.
    ///
    /// # Panics
    /// Panics when the bands have different lengths or are empty.
    #[must_use]
    pub fn new(a: Vec<f64>, b: Vec<f64>, c: Vec<f64>, d: Vec<f64>) -> Self {
        let n = b.len();
        assert!(n > 0, "empty system");
        assert!(a.len() == n && c.len() == n && d.len() == n, "all bands must have equal length");
        TridiagonalSystem { a, b, c, d }
    }

    /// Dimension of the system.
    #[must_use]
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// True when the system has no equations (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.b.is_empty()
    }

    /// `‖A·x − d‖∞`, for verifying solutions.
    #[must_use]
    pub fn residual(&self, x: &[f64]) -> f64 {
        let n = self.len();
        assert_eq!(x.len(), n, "solution length mismatch");
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut lhs = self.b[i] * x[i];
            if i > 0 {
                lhs += self.a[i] * x[i - 1];
            }
            if i + 1 < n {
                lhs += self.c[i] * x[i + 1];
            }
            worst = worst.max((lhs - self.d[i]).abs());
        }
        worst
    }
}

/// Sequential direct solve (Thomas algorithm), `O(n)` with a loop-carried
/// dependency — fast on one CPU core, unusable on a data-parallel device.
///
/// # Panics
/// Panics if forward elimination hits a zero pivot (the system must be
/// diagonally dominant or otherwise non-singular).
#[must_use]
pub fn thomas_solve(sys: &TridiagonalSystem) -> Vec<f64> {
    let n = sys.len();
    let mut c_star = vec![0.0; n];
    let mut d_star = vec![0.0; n];
    assert!(sys.b[0] != 0.0, "zero pivot at row 0");
    c_star[0] = sys.c[0] / sys.b[0];
    d_star[0] = sys.d[0] / sys.b[0];
    for i in 1..n {
        let m = sys.b[i] - sys.a[i] * c_star[i - 1];
        assert!(m != 0.0, "zero pivot at row {i}");
        c_star[i] = sys.c[i] / m;
        d_star[i] = (sys.d[i] - sys.a[i] * d_star[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d_star[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d_star[i] - c_star[i] * x[i + 1];
    }
    x
}

/// One forward-reduction step of cyclic reduction: eliminate odd-indexed
/// unknowns, producing the half-size system over even indices.
///
/// Exposed separately so `petal-apps` can express each step as one
/// data-parallel kernel launch (this is what runs on the GPU).
#[must_use]
pub fn cyclic_reduction_step(sys: &TridiagonalSystem) -> TridiagonalSystem {
    let n = sys.len();
    let m = n.div_ceil(2);
    let mut na = vec![0.0; m];
    let mut nb = vec![0.0; m];
    let mut nc = vec![0.0; m];
    let mut nd = vec![0.0; m];
    for (j, i) in (0..n).step_by(2).enumerate() {
        // alpha eliminates x[i-1] via row i-1, beta eliminates x[i+1] via row i+1.
        let alpha = if i > 0 { -sys.a[i] / sys.b[i - 1] } else { 0.0 };
        let beta = if i + 1 < n { -sys.c[i] / sys.b[i + 1] } else { 0.0 };
        nb[j] = sys.b[i]
            + alpha * sys.c[i - usize::from(i > 0)] * f64::from(u8::from(i > 0))
            + beta * sys.a[(i + 1).min(n - 1)] * f64::from(u8::from(i + 1 < n));
        na[j] = if i > 0 { alpha * sys.a[i - 1] } else { 0.0 };
        nc[j] = if i + 1 < n { beta * sys.c[i + 1] } else { 0.0 };
        nd[j] = sys.d[i]
            + if i > 0 { alpha * sys.d[i - 1] } else { 0.0 }
            + if i + 1 < n { beta * sys.d[i + 1] } else { 0.0 };
    }
    TridiagonalSystem { a: na, b: nb, c: nc, d: nd }
}

/// Back-substitute one level: given the solution of the even-index system,
/// recover the full solution.
#[must_use]
pub fn cyclic_reduction_backsub(sys: &TridiagonalSystem, even: &[f64]) -> Vec<f64> {
    let n = sys.len();
    let mut x = vec![0.0; n];
    for (j, i) in (0..n).step_by(2).enumerate() {
        x[i] = even[j];
    }
    for i in (1..n).step_by(2) {
        let left = sys.a[i] * x[i - 1];
        let right = if i + 1 < n { sys.c[i] * x[i + 1] } else { 0.0 };
        x[i] = (sys.d[i] - left - right) / sys.b[i];
    }
    x
}

/// Full cyclic reduction solve: recursively halve until one unknown
/// remains, then back-substitute. `O(n)` work over `O(log n)` parallel
/// steps — asymptotically more work than Thomas, but every step is data
/// parallel.
#[must_use]
pub fn cyclic_reduction_solve(sys: &TridiagonalSystem) -> Vec<f64> {
    if sys.len() == 1 {
        return vec![sys.d[0] / sys.b[0]];
    }
    let reduced = cyclic_reduction_step(sys);
    let even = cyclic_reduction_solve(&reduced);
    cyclic_reduction_backsub(sys, &even)
}

/// A diagonally dominant test system with deterministic pseudo-random
/// bands — used by tests, benchmarks and workload generators.
#[must_use]
pub fn diagonally_dominant_system(n: usize, seed: u64) -> TridiagonalSystem {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0 - 0.5
    };
    let a: Vec<f64> = (0..n).map(|_| next()).collect();
    let c: Vec<f64> = (0..n).map(|_| next()).collect();
    let b: Vec<f64> = (0..n).map(|i| 2.5 + a[i].abs() + c[i].abs() + next().abs()).collect();
    let d: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    TridiagonalSystem::new(a, b, c, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn thomas_solves_small_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3]
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, 1.0, 0.0],
            vec![4.0, 8.0, 8.0],
        );
        let x = thomas_solve(&sys);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
        assert!(sys.residual(&x) < 1e-12);
    }

    #[test]
    fn cyclic_reduction_matches_thomas() {
        for n in [1, 2, 3, 7, 64, 100, 255] {
            let sys = diagonally_dominant_system(n, 42);
            let xt = thomas_solve(&sys);
            let xc = cyclic_reduction_solve(&sys);
            for (t, c) in xt.iter().zip(&xc) {
                assert!((t - c).abs() < 1e-8, "n={n}: {t} vs {c}");
            }
            assert!(sys.residual(&xc) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn reduction_step_halves_and_preserves_solution() {
        let sys = diagonally_dominant_system(16, 7);
        let full = thomas_solve(&sys);
        let reduced = cyclic_reduction_step(&sys);
        assert_eq!(reduced.len(), 8);
        let even = thomas_solve(&reduced);
        for (j, i) in (0..16).step_by(2).enumerate() {
            assert!((even[j] - full[i]).abs() < 1e-9, "even unknown {i}");
        }
        let rebuilt = cyclic_reduction_backsub(&sys, &even);
        assert!(sys.residual(&rebuilt) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_bands_panic() {
        let _ = TridiagonalSystem::new(vec![0.0], vec![1.0, 1.0], vec![0.0], vec![1.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_both_solvers_satisfy_system(n in 1usize..200, seed in 0u64..500) {
            let sys = diagonally_dominant_system(n, seed);
            prop_assert!(sys.residual(&thomas_solve(&sys)) < 1e-7);
            prop_assert!(sys.residual(&cyclic_reduction_solve(&sys)) < 1e-7);
        }
    }
}

//! # petal-blas — dense linear algebra and tridiagonal substrate
//!
//! The paper's Strassen and SVD benchmarks bottom out in calls to LAPACK
//! ("call LAPACK when < 682×682", Fig. 6); its Tridiagonal Solver benchmark
//! needs direct solvers to compare against cyclic reduction. This crate is
//! the from-scratch substitute for those external libraries:
//!
//! * [`matrix`] — the dense row-major [`Matrix`] type shared by the whole
//!   workspace (the PetaBricks *matrix* of §4.3).
//! * [`gemm`] — naive, transposed and cache-blocked matrix multiplication;
//!   [`gemm::lapack_gemm`] is the tuned leaf kernel that plays the role of
//!   the LAPACK call in the choice space.
//! * [`tridiag`] — the Thomas algorithm and sequential cyclic reduction for
//!   tridiagonal systems.
//! * [`eigen`] — cyclic Jacobi symmetric eigendecomposition and the
//!   truncated SVD built on it (the variable-accuracy SVD benchmark's math).
//!
//! Everything here is *pure math on host data* — scheduling, devices and
//! costs live in the other crates.

pub mod eigen;
pub mod gemm;
pub mod matrix;
pub mod tridiag;

pub use matrix::Matrix;

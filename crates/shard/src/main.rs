//! The `petal-shard` worker binary: serve one shard session on
//! stdin/stdout, report fatal errors on stderr (the parent inherits it).

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = petal_shard::serve(stdin.lock(), stdout.lock()) {
        eprintln!("petal-shard: {e}");
        std::process::exit(1);
    }
}

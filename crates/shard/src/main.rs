//! The `petal-shard` worker binary.
//!
//! With no arguments it serves one pipe session on stdin/stdout (the
//! `FarmSettings::shards` mode). With `--connect <endpoint>` it becomes a
//! remote farm worker: it registers with the `petal-farmd` dispatcher at
//! the endpoint and serves jobs over the socket until the farm goes away.
//! Fatal errors go to stderr in both modes.

use petal_shard::RemoteOptions;
use std::time::Duration;

const USAGE: &str = "usage: petal-shard [--connect <endpoint> \
                     [--name <name>] [--slots <n>] [--heartbeat-ms <ms>] \
                     [--patience-ms <ms>] [--fail-after <n>]]";

fn fail(msg: &str) -> ! {
    eprintln!("petal-shard: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_remote(mut args: std::env::Args) -> RemoteOptions {
    let Some(endpoint) = args.next() else { fail("--connect needs an endpoint") };
    let mut opts = RemoteOptions::new(endpoint);
    while let Some(flag) = args.next() {
        let mut value =
            |what: &str| args.next().unwrap_or_else(|| fail(&format!("{what} needs a value")));
        match flag.as_str() {
            "--name" => opts.name = value("--name"),
            "--slots" => match value("--slots").parse() {
                Ok(n) => opts.slots = n,
                Err(_) => fail("--slots needs an integer"),
            },
            "--heartbeat-ms" => match value("--heartbeat-ms").parse() {
                Ok(ms) => opts.heartbeat = Duration::from_millis(ms),
                Err(_) => fail("--heartbeat-ms needs an integer"),
            },
            "--patience-ms" => match value("--patience-ms").parse() {
                Ok(ms) => opts.patience = Duration::from_millis(ms),
                Err(_) => fail("--patience-ms needs an integer"),
            },
            "--fail-after" => match value("--fail-after").parse() {
                Ok(n) => opts.fail_after = Some(n),
                Err(_) => fail("--fail-after needs an integer"),
            },
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    opts
}

fn main() {
    let mut args = std::env::args();
    let _exe = args.next();
    match args.next().as_deref() {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = petal_shard::serve(stdin.lock(), stdout.lock()) {
                eprintln!("petal-shard: {e}");
                std::process::exit(1);
            }
        }
        Some("--connect") => {
            let opts = parse_remote(args);
            if let Err(e) = petal_shard::serve_remote(&opts) {
                eprintln!("petal-shard[{}]: {e}", opts.name);
                std::process::exit(1);
            }
        }
        Some(other) => fail(&format!("unknown argument `{other}`")),
    }
}

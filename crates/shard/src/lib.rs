//! # petal-shard — the evaluation-farm worker process
//!
//! The worker half of the farm's process-sharding front-end
//! ([`petal_farm::shard`]): a tiny loop that reads
//! [`petal_farm::wire`] messages from stdin, evaluates jobs with
//! [`petal_farm::evaluate_job`] — the *same* function the in-process farm
//! runs on its threads — and writes raw outcomes to stdout.
//!
//! The worker is deliberately stateless with respect to the tuning run:
//! it never sees the warm-kernel or IR-cache pricing sets (those fold over
//! the parent's submission-order merge), so any job assignment produces
//! bit-identical tuning results. One worker serves one
//! `(benchmark, machine)` session, established by the `INIT` handshake;
//! the parent respawns workers when the session changes.

#![warn(missing_docs)]

pub mod remote;

pub use remote::{serve_remote, RemoteOptions};

use petal_apps::{benchmark_from_spec, Benchmark};
use petal_farm::wire::{
    version_supported, Message, Record, WireEncoder, MIN_WIRE_VERSION, WIRE_VERSION,
};
use petal_gpu::profile::MachineProfile;
use std::fmt;
use std::io::{BufRead, Write};

/// A fatal worker error: protocol violation, unknown benchmark spec, or a
/// broken pipe to the parent.
#[derive(Debug)]
pub struct ServeError {
    /// Human-readable cause, printed to stderr by the binary.
    pub message: String,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

pub(crate) fn err(message: impl Into<String>) -> ServeError {
    ServeError { message: message.into() }
}

/// Reusable per-session I/O buffers: one `RESULT` is encoded and one
/// `JOB` line read back per trial, so keeping the encoder and both line
/// buffers across the serve loop makes the steady state allocation-free.
#[derive(Default)]
struct SessionBufs {
    enc: WireEncoder,
    line_out: String,
    line_in: String,
}

impl SessionBufs {
    fn send(&mut self, output: &mut impl Write, msg: &Message) -> Result<(), ServeError> {
        self.enc.encode_into(msg, &mut self.line_out);
        self.line_out.push('\n');
        output
            .write_all(self.line_out.as_bytes())
            .and_then(|()| output.flush())
            .map_err(|e| err(format!("writing to parent: {e}")))
    }

    /// Read one line into the reused buffer; `Ok(false)` on clean EOF.
    fn recv_line(&mut self, input: &mut impl BufRead) -> Result<bool, ServeError> {
        self.line_in.clear();
        let n = input
            .read_line(&mut self.line_in)
            .map_err(|e| err(format!("reading from parent: {e}")))?;
        if n == 0 {
            return Ok(false);
        }
        while self.line_in.ends_with('\n') || self.line_in.ends_with('\r') {
            self.line_in.pop();
        }
        Ok(true)
    }
}

/// Serve one shard session over a message stream: `INIT` → `READY`, then
/// `JOB` → `RESULT` until `DONE` or EOF.
///
/// This is the whole worker; `main` merely binds it to stdin/stdout. It
/// is generic over the streams so tests can drive a session through
/// in-memory buffers.
///
/// # Errors
/// On any protocol violation (bad handshake, malformed record, unknown
/// benchmark spec) or I/O failure. The parent treats a dead worker as a
/// fatal dispatch error, so erring out loudly is correct.
pub fn serve(mut input: impl BufRead, mut output: impl Write) -> Result<(), ServeError> {
    let mut bufs = SessionBufs::default();
    if !bufs.recv_line(&mut input)? {
        return Err(err("EOF before INIT"));
    }
    let first = bufs.line_in.clone();
    // Check the advertised version *before* decoding the full INIT: a
    // future wire version may change the INIT layout itself, and the
    // version-skew diagnostic must fire in exactly that case (a layout
    // decode error would otherwise mask it).
    let record = Record::parse(&first).map_err(|e| err(e.to_string()))?;
    if record.tag == "INIT" {
        match record.fields.first().map(|v| v.parse::<u64>()) {
            Some(Ok(version)) if !version_supported(version) => {
                return Err(err(format!(
                    "parent speaks wire version {version}, worker speaks \
                     {MIN_WIRE_VERSION}..={WIRE_VERSION}"
                )));
            }
            Some(Ok(_)) => {}
            _ => return Err(err("INIT carries no parseable wire version")),
        }
    }
    let (version, bench, machine): (u64, Box<dyn Benchmark>, MachineProfile) =
        match Message::decode(&first).map_err(|e| err(e.to_string()))? {
            Message::Init { version, bench_spec, machine } => {
                let bench = benchmark_from_spec(&bench_spec)
                    .map_err(|e| err(format!("bad benchmark spec `{bench_spec}`: {e}")))?;
                (version, bench, *machine)
            }
            other => return Err(err(format!("expected INIT, got {other:?}"))),
        };
    // Echo the parent's version: an older parent checks for its own
    // version in READY, and every version this build accepts is one it
    // can serve (newer versions are pure supersets on the pipe records).
    bufs.send(&mut output, &Message::Ready { version })?;

    while bufs.recv_line(&mut input)? {
        match Message::decode(&bufs.line_in).map_err(|e| err(e.to_string()))? {
            Message::Job { index, job } => {
                let outcome = petal_farm::evaluate_job(&*bench, &machine, &job);
                bufs.send(&mut output, &Message::Result { index, outcome })?;
            }
            Message::Done => return Ok(()),
            other => return Err(err(format!("expected JOB or DONE, got {other:?}"))),
        }
    }
    Ok(()) // EOF without DONE: parent died or closed early; exit quietly.
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_apps::blackscholes::BlackScholes;
    use petal_farm::{job_seed, EvalJob};

    /// Drive a whole session through in-memory buffers and check the
    /// worker's answers equal direct `evaluate_job` calls.
    #[test]
    fn serve_answers_jobs_like_the_in_process_farm() {
        let bench = BlackScholes::new(2_000);
        let machine = MachineProfile::laptop();
        let config = bench.program(&machine).default_config(&machine);
        let jobs: Vec<EvalJob> = (0..3)
            .map(|i| EvalJob {
                config: config.clone(),
                size: bench.input_size(),
                engine_seed: job_seed(5, 0, i),
            })
            .collect();

        let mut session = String::new();
        session.push_str(
            &Message::Init {
                version: WIRE_VERSION,
                bench_spec: bench.spec(),
                machine: Box::new(machine.clone()),
            }
            .encode(),
        );
        session.push('\n');
        for (i, job) in jobs.iter().enumerate() {
            session.push_str(&Message::Job { index: i as u64, job: job.clone() }.encode());
            session.push('\n');
        }
        session.push_str(&Message::Done.encode());
        session.push('\n');

        let mut out = Vec::new();
        serve(session.as_bytes(), &mut out).expect("session succeeds");

        let replies: Vec<Message> = String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(|l| Message::decode(l).expect("decodes"))
            .collect();
        assert_eq!(replies[0], Message::Ready { version: WIRE_VERSION });
        assert_eq!(replies.len(), 1 + jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let expected = petal_farm::evaluate_job(&bench, &machine, job);
            assert_eq!(
                replies[1 + i],
                Message::Result { index: i as u64, outcome: expected },
                "job {i}"
            );
        }
    }

    #[test]
    fn bad_handshakes_are_fatal() {
        let mut out = Vec::new();
        let e = serve("DONE\n".as_bytes(), &mut out).expect_err("DONE before INIT");
        assert!(e.message.contains("expected INIT"), "{e}");

        let wrong_version = Message::Init {
            version: WIRE_VERSION + 1,
            bench_spec: "sort n=64".to_owned(),
            machine: Box::new(MachineProfile::desktop()),
        };
        let e = serve(format!("{}\n", wrong_version.encode()).as_bytes(), &mut Vec::new())
            .expect_err("version skew");
        assert!(e.message.contains("wire version"), "{e}");

        // A future INIT layout this worker cannot decode must still
        // produce the version-skew diagnostic, not a framing error:
        // version is field 0 and is checked before full decode.
        let future = WIRE_VERSION + 1;
        let e = serve(format!("INIT 1:{future} 7:future!\n").as_bytes(), &mut Vec::new())
            .expect_err("skew with unknown layout");
        assert!(e.message.contains(&format!("wire version {future}")), "{e}");

        let bad_spec = Message::Init {
            version: WIRE_VERSION,
            bench_spec: "warp10 n=64".to_owned(),
            machine: Box::new(MachineProfile::desktop()),
        };
        let e = serve(format!("{}\n", bad_spec.encode()).as_bytes(), &mut Vec::new())
            .expect_err("unknown spec");
        assert!(e.message.contains("bad benchmark spec"), "{e}");
    }

    /// A v1 parent still gets served — v2 is a pure superset on the pipe
    /// records — and READY echoes the *parent's* version so the old
    /// parent's equality check passes.
    #[test]
    fn older_wire_versions_are_served_and_echoed() {
        let init = Message::Init {
            version: MIN_WIRE_VERSION,
            bench_spec: "sort n=64".to_owned(),
            machine: Box::new(MachineProfile::laptop()),
        };
        let session = format!("{}\n{}\n", init.encode(), Message::Done.encode());
        let mut out = Vec::new();
        serve(session.as_bytes(), &mut out).expect("v1 session succeeds");
        let first = String::from_utf8(out).expect("utf8");
        let reply = Message::decode(first.lines().next().expect("one reply")).expect("decodes");
        assert_eq!(reply, Message::Ready { version: MIN_WIRE_VERSION });
    }
}
